"""The §6 demo: feedback → staged edits → regeneration → approval → fixed.

Run:  python examples/continuous_improvement.py

Replays the paper's demonstration script:
  1. generate SQL for a question the knowledge set cannot yet answer
     (a colloquial metric name no catalog entry covers);
  2. give feedback through the Feedback Solver; inspect the recommended
     edits (operators #1-#4 of the edits-recommendation module);
  3. stage the edits, regenerate in the staging environment, and watch the
     query come back correct;
  4. submit — regression testing over golden queries — and approve;
  5. verify the fix is live and auditable in the Knowledge Set Library,
     then revert to the pre-merge checkpoint and back.
"""

from __future__ import annotations

from repro import (
    ApprovalQueue,
    FeedbackSolver,
    GenEditPipeline,
    GoldenQuery,
    KnowledgeLibrary,
    KnowledgeSetHistory,
)
from repro.bench.bird import build_knowledge_sets, build_workload
from repro.bench.schemas import build_profile

QUESTION = "What is the average outlay in 2023?"
FEEDBACK = (
    "This used the wrong measure. 'outlay' refers to the EXPENSES column "
    "in SPORTS_FINANCIALS."
)


def main():
    profile = build_profile("sports_holdings")
    workload = build_workload()
    knowledge = build_knowledge_sets(workload)["sports_holdings"]
    history = KnowledgeSetHistory(knowledge)
    queue = ApprovalQueue(knowledge, history)
    library = KnowledgeLibrary(knowledge, history)
    pipeline = GenEditPipeline(profile.database, knowledge)
    golden = [
        GoldenQuery(entry.question, entry.sql)
        for entry in workload.training_logs["sports_holdings"][:4]
    ]
    solver = FeedbackSolver(
        pipeline, golden_queries=golden, approval_queue=queue
    )

    gold_sql = (
        "SELECT AVG(EXPENSES) AS METRIC_VALUE FROM SPORTS_FINANCIALS "
        "WHERE TO_CHAR(FIN_MONTH, 'YYYY') = '2023'"
    )
    expected = pipeline.execute(gold_sql).rows[0][0]

    print("STEP 1 — initial generation")
    result = solver.ask(QUESTION)
    print("  Q:", QUESTION)
    print("  SQL:", result.sql)
    got = solver.run_sql().rows[0][0] if result.success else None
    print(f"  result: {got}  (expected {expected:.2f}) -> "
          f"{'CORRECT' if got == expected else 'WRONG'}")

    print("\nSTEP 2 — feedback and recommended edits")
    print("  feedback:", FEEDBACK)
    recommendations = solver.give_feedback(FEEDBACK)
    print("  edit plan:")
    for step in solver.last_plan:
        print("    -", step.description)
    for edit in recommendations:
        print("  recommended:", edit.describe())

    print("\nSTEP 3 — stage and regenerate (staging environment)")
    solver.stage()
    regenerated = solver.regenerate()
    print("  regenerated SQL:", regenerated.sql)
    got = solver.run_sql(regenerated.sql).rows[0][0]
    print(f"  result: {got:.2f} -> "
          f"{'CORRECT' if got == expected else 'WRONG'}")

    print("\nSTEP 4 — submit: regression testing + approval")
    submission = solver.submit()
    print("  regression:", submission.regression_report.summary())
    print("  status:", submission.status)
    queue.approve(submission, reviewer="sme-lead")
    print("  approved and merged ->", submission.status)

    print("\nSTEP 5 — the fix is live and auditable")
    live = pipeline.generate(QUESTION)
    got = pipeline.execute(live.sql).rows[0][0]
    print("  live SQL:", live.sql)
    print(f"  result: {got:.2f} -> "
          f"{'CORRECT' if got == expected else 'WRONG'}")
    print("  knowledge set library timeline:")
    for feedback_id, records in library.feedback_timeline():
        for record in records:
            print(
                f"    [{record.timestamp}] {record.action} "
                f"{record.component_kind} {record.component_id} "
                f"({feedback_id}): {record.summary}"
            )
    checkpoints = history.checkpoints()
    print("  checkpoints:", [
        (checkpoint.checkpoint_id, checkpoint.label)
        for checkpoint in checkpoints
    ])

    print("\nSTEP 6 — reversion works too")
    history.revert_to(checkpoints[0].checkpoint_id)
    reverted = pipeline.generate(QUESTION)
    got = pipeline.execute(reverted.sql).rows[0][0] if reverted.success else None
    print(f"  after revert the old behaviour is back "
          f"({'WRONG again, as expected' if got != expected else 'still fixed?!'})")
    history.revert_to(checkpoints[-1].checkpoint_id)
    final = pipeline.generate(QUESTION)
    got = pipeline.execute(final.sql).rows[0][0]
    print(f"  restored the merged checkpoint: {got:.2f} -> "
          f"{'CORRECT' if got == expected else 'WRONG'}")


if __name__ == "__main__":
    main()

"""Q_fin-perf: the paper's running example, end to end (Fig. 2, Appendix A).

Run:  python examples/fin_perf.py

Reproduces the paper's flagship enterprise query on the sports-holdings
database:

    "Identify our 5 sports organisations with the best and worst QoQFP
     in Canada for Q2 2023."

Prints the Fig. 2 artifact — the assembled generation prompt with the
retrieved decomposed examples, instructions (including the '-1 multiplier'
rule), linked schema, and the step-by-step CoT plan with pseudo-SQL — and
then the generated multi-CTE SQL (the Appendix A shape) with its result.
"""

from __future__ import annotations

from repro.bench.bird import build_knowledge_sets, build_workload
from repro.bench.schemas import build_profile
from repro.pipeline import GenEditPipeline
from repro.pipeline.prompt import assemble_prompt
from repro.sql import format_sql, parse

QUESTION = (
    "Identify our 5 sports organisations with the best and worst QoQFP "
    "in Canada for Q2 2023"
)


def main():
    profile = build_profile("sports_holdings")
    workload = build_workload()
    knowledge = build_knowledge_sets(workload)["sports_holdings"]
    pipeline = GenEditPipeline(profile.database, knowledge)

    print("Q_fin-perf:", QUESTION)
    result = pipeline.generate(QUESTION)
    context = result.context

    print("\n" + "=" * 72)
    print("FIG. 2 — THE GENERATION PROMPT")
    print("=" * 72)
    fitted = assemble_prompt(
        context.reformulated,
        context.instructions,
        context.examples,
        context.schema_elements[:12],
        plan_text=result.plan.render(),
        budget_tokens=pipeline.config.context_budget_tokens,
    )
    print(fitted.prompt.render())

    print("\n" + "=" * 72)
    print(f"THE CoT PLAN ({len(result.plan.steps)} steps)")
    print("=" * 72)
    print(result.plan.render())

    print("\n" + "=" * 72)
    print("GENERATED SQL (the Appendix A shape)")
    print("=" * 72)
    print(format_sql(parse(result.sql)))

    print("\n" + "=" * 72)
    print("EXECUTION")
    print("=" * 72)
    table = pipeline.execute(result.sql)
    print(" | ".join(table.columns))
    for row in table.rows:
        rendered = " | ".join(
            f"{value:.4f}" if isinstance(value, float) else str(value)
            for value in row
        )
        print(rendered)

    print(
        f"\nsimulated cost ${result.cost_usd:.5f} across "
        f"{len(context.meter.calls)} model calls "
        f"({context.meter.total_input_tokens} prompt tokens)"
    )


if __name__ == "__main__":
    main()

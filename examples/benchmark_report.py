"""Regenerate every paper table/figure in one run.

Run:  python examples/benchmark_report.py           (~90 seconds)
      python examples/benchmark_report.py table1    (one experiment)

Thin wrapper over ``python -m repro.bench.harness`` — prints Table 1,
Table 2, the §3.3.4 crossover, and the §4.2.3 feedback metrics, side by
side with the values the paper reports.
"""

from __future__ import annotations

import sys

from repro.bench.harness import main as harness_main

PAPER_NUMBERS = """
Paper values for comparison (CIDR 2025, evaluation of Aug. 2024):

Table 1 (All-bucket EX):  CHESS 64.62 | GenEdit 60.61 | MAC-SQL 59.39 |
                          TA-SQL 56.19 | DAIL-SQL 54.3 | C3-SQL 50.2
GenEdit by bucket:        Simple 69.89 | Moderate 39.29 | Challenging 36.36

Table 2 (delta vs full):  w/o Schema Linking -2.28 | w/o Instructions -10.61
                          w/o Examples -1.52 | w/o Pseudo-SQL -9.85
                          w/o Decomposition -2.28

Crossover (§3.3.4):       schema-maximal fine-tuned approach 67.21 on BIRD
                          (beats GenEdit) yet cannot handle enterprise
                          query complexity — GenEdit ships.
"""


def main():
    print(PAPER_NUMBERS)
    return harness_main(sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())

"""Quickstart: build a knowledge set from logs + documents, generate SQL.

Run:  python examples/quickstart.py

Walks the full GenEdit flow on a small HR database:
  1. pre-processing — mine the knowledge set from query logs and a domain
     handbook (decomposed examples, term instructions, profiled schema);
  2. inference — the compounding-operator pipeline, with the full operator
     trace printed so the Fig. 1 architecture is visible;
  3. execution — run the generated SQL on the in-memory engine.
"""

from __future__ import annotations

import datetime

from repro import (
    Column,
    Database,
    DomainDocument,
    GenEditPipeline,
    GlossaryEntry,
    GuidelineEntry,
    LoggedQuery,
    mine_knowledge_set,
)


def build_database():
    db = Database("hr", description="Small HR warehouse.")
    db.create_table(
        "DEPARTMENTS",
        [
            Column("DEPT_ID", "INTEGER", "Unique department id."),
            Column("DEPT_NAME", "TEXT", "Department name."),
            Column("REGION", "TEXT", "Operating region."),
        ],
        rows=[
            (1, "Engineering", "West"),
            (2, "Sales", "East"),
            (3, "Support", "West"),
        ],
        description="Each row is a department.",
    )
    db.create_table(
        "EMPLOYEES",
        [
            Column("EMP_ID", "INTEGER", "Unique employee id."),
            Column("EMP_NAME", "TEXT", "Employee name."),
            Column(
                "DEPT_ID", "INTEGER",
                "Department. Foreign key to DEPARTMENTS.DEPT_ID.",
            ),
            Column("SALARY", "FLOAT", "Annual salary. Also called: pay."),
            Column("HIRED", "DATE", "Hire date."),
            Column("LEVEL_CODE", "TEXT", "Seniority code (L1-L5)."),
        ],
        rows=[
            (1, "Ada", 1, 120.0, datetime.date(2020, 1, 15), "L5"),
            (2, "Grace", 1, 140.0, datetime.date(2019, 6, 1), "L5"),
            (3, "Alan", 2, 90.0, datetime.date(2021, 3, 10), "L3"),
            (4, "Edsger", 2, 95.0, datetime.date(2022, 7, 20), "L4"),
            (5, "Barbara", 3, 70.0, datetime.date(2023, 2, 5), "L2"),
            (6, "Donald", 3, 82.0, datetime.date(2018, 11, 30), "L3"),
        ],
        description="Each row is an employee.",
    )
    return db


def build_knowledge(db):
    query_log = [
        LoggedQuery(
            "q1",
            "Show me the total salary per region",
            "SELECT REGION, SUM(SALARY) AS METRIC_VALUE FROM EMPLOYEES "
            "JOIN DEPARTMENTS ON EMPLOYEES.DEPT_ID = DEPARTMENTS.DEPT_ID "
            "GROUP BY REGION",
            "compensation analytics",
        ),
        LoggedQuery(
            "q2",
            "Show me the 3 employees with the best and worst salary",
            "WITH GROUPED AS (SELECT EMP_NAME, SUM(SALARY) AS METRIC_VALUE "
            "FROM EMPLOYEES GROUP BY EMP_NAME), RANKED AS (SELECT EMP_NAME, "
            "METRIC_VALUE, ROW_NUMBER() OVER (ORDER BY METRIC_VALUE DESC) "
            "AS BEST_RANK, ROW_NUMBER() OVER (ORDER BY METRIC_VALUE ASC) "
            "AS WORST_RANK FROM GROUPED) SELECT EMP_NAME, METRIC_VALUE, "
            "BEST_RANK FROM RANKED WHERE BEST_RANK <= 3 OR WORST_RANK <= 3 "
            "ORDER BY BEST_RANK",
            "compensation analytics",
        ),
    ]
    handbook = DomainDocument(
        doc_id="hr-handbook",
        title="HR analytics handbook",
        glossary=[
            GlossaryEntry(
                term="payroll",
                definition="the total annual salary bill",
                sql_pattern="SUM(SALARY)",
                tables=("EMPLOYEES",),
                intent_name="compensation analytics",
            ),
        ],
        guidelines=[
            GuidelineEntry(
                text="'senior' employees means LEVEL_CODE IN L4, L5",
                sql_pattern="LEVEL_CODE IN ('L4', 'L5')",
                tables=("EMPLOYEES",),
                intent_name="compensation analytics",
            ),
        ],
    )
    return mine_knowledge_set(db, query_log, [handbook])


def main():
    db = build_database()
    knowledge = build_knowledge(db)
    print("Knowledge set:", knowledge.stats())
    pipeline = GenEditPipeline(db, knowledge)

    questions = [
        "How many senior employees are there?",
        "What is the payroll of the employees in West?",
        "Show me the 2 employees with the best and worst total salary",
    ]
    for question in questions:
        print("\n" + "=" * 72)
        print("Q:", question)
        result = pipeline.generate(question)
        print("\n-- operator trace (Fig. 1) --")
        for line in result.context.render_trace().splitlines():
            print("  ", line)
        print("\n-- generated SQL --")
        print(result.sql)
        if result.success:
            table = pipeline.execute(result.sql)
            print("\n-- result --")
            print(table.columns)
            for row in table.rows:
                print(" ", row)
        print(
            f"\n(cost ${result.cost_usd:.5f}, "
            f"latency {result.latency_ms:.0f} ms simulated)"
        )


if __name__ == "__main__":
    main()

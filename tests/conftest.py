"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime

import pytest

from repro.engine import Column, Database


@pytest.fixture()
def demo_db():
    """A small two-table database exercising every value type."""
    db = Database("demo")
    db.create_table(
        "DEPT",
        [
            Column("DEPT_ID", "INTEGER", "Unique department id."),
            Column("DEPT_NAME", "TEXT", "Department name."),
            Column("REGION", "TEXT", "Region."),
            Column("BUDGET", "FLOAT", "Annual budget."),
        ],
        rows=[
            (1, "Engineering", "West", 1200.0),
            (2, "Sales", "East", 800.0),
            (3, "Support", "West", 300.0),
        ],
        description="Each row is a department.",
    )
    db.create_table(
        "EMP",
        [
            Column("EMP_ID", "INTEGER", "Unique employee id."),
            Column("EMP_NAME", "TEXT", "Employee name."),
            Column("DEPT_ID", "INTEGER", "Department. Foreign key to DEPT.DEPT_ID."),
            Column("SALARY", "FLOAT", "Annual salary. Also called: pay, wages."),
            Column("HIRED", "DATE", "Hire date."),
            Column("ACTIVE", "BOOLEAN", "Still employed."),
        ],
        rows=[
            (1, "Ada", 1, 120.0, datetime.date(2020, 1, 15), True),
            (2, "Grace", 1, 140.0, datetime.date(2019, 6, 1), True),
            (3, "Alan", 2, 90.0, datetime.date(2021, 3, 10), False),
            (4, "Edsger", 2, 95.0, datetime.date(2022, 7, 20), True),
            (5, "Barbara", 3, 70.0, datetime.date(2023, 2, 5), True),
            (6, "Donald", 3, None, datetime.date(2018, 11, 30), True),
        ],
        description="Each row is an employee.",
    )
    return db


@pytest.fixture()
def executor(demo_db):
    from repro.engine import Executor

    return Executor(demo_db)


@pytest.fixture(scope="session")
def sports_profile():
    from repro.bench.schemas import build_profile

    return build_profile("sports_holdings")


@pytest.fixture(scope="session")
def experiment_context():
    """The shared dev workload + knowledge sets (built once per session)."""
    from repro.bench.harness import ExperimentContext

    context = ExperimentContext()
    # Touch the lazy pieces so later tests share the cached build.
    context.workload
    context.knowledge_sets
    return context


@pytest.fixture(scope="session")
def sports_pipeline(experiment_context):
    from repro.pipeline import GenEditPipeline

    profile = experiment_context.profiles["sports_holdings"]
    knowledge = experiment_context.knowledge_sets["sports_holdings"]
    return GenEditPipeline(profile.database, knowledge)

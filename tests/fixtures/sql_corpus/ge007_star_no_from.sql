-- expect: GE007
SELECT *

"""Analyzer tests: semantic validation against a catalog."""

import pytest

from repro.sql.analyzer import Analyzer
from repro.sql.errors import SqlAnalysisError
from repro.sql.parser import parse


@pytest.fixture()
def analyzer(demo_db):
    return Analyzer(demo_db)


def issues(analyzer, sql):
    return [issue.kind for issue in analyzer.analyze(parse(sql))]


class TestCleanQueries:
    @pytest.mark.parametrize("sql", [
        "SELECT EMP_NAME FROM EMP",
        "SELECT e.EMP_NAME, d.DEPT_NAME FROM EMP e JOIN DEPT d "
        "ON e.DEPT_ID = d.DEPT_ID",
        "SELECT DEPT_ID, COUNT(*) FROM EMP GROUP BY DEPT_ID "
        "HAVING COUNT(*) > 1",
        "WITH big AS (SELECT * FROM DEPT WHERE BUDGET > 500) "
        "SELECT DEPT_NAME FROM big",
        "SELECT EMP_NAME FROM EMP WHERE SALARY > "
        "(SELECT AVG(SALARY) FROM EMP)",
        "SELECT EMP_NAME FROM EMP ORDER BY 1",
        "SELECT SALARY AS s FROM EMP ORDER BY s",
        "SELECT DEPT_ID FROM EMP UNION SELECT DEPT_ID FROM DEPT",
    ])
    def test_no_issues(self, analyzer, sql):
        assert issues(analyzer, sql) == []


class TestDetection:
    def test_unknown_table(self, analyzer):
        assert "unknown-table" in issues(analyzer, "SELECT x FROM nope")

    def test_unknown_column(self, analyzer):
        assert "unknown-column" in issues(analyzer, "SELECT wages FROM EMP")

    def test_unknown_qualified_column(self, analyzer):
        assert "unknown-column" in issues(
            analyzer, "SELECT e.nope FROM EMP e"
        )

    def test_ambiguous_column_across_join(self, analyzer):
        found = issues(
            analyzer,
            "SELECT DEPT_ID FROM EMP JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID",
        )
        assert "ambiguous-column" in found

    def test_aggregate_in_where(self, analyzer):
        assert "aggregate-in-where" in issues(
            analyzer, "SELECT 1 FROM EMP WHERE SUM(SALARY) > 10"
        )

    def test_windowed_aggregate_in_where_not_flagged(self, analyzer):
        # not valid SQL either, but it is not the aggregate-in-where class
        found = issues(
            analyzer,
            "SELECT 1 FROM EMP WHERE SUM(SALARY) OVER () > 10",
        )
        assert "aggregate-in-where" not in found

    def test_set_operation_arity(self, analyzer):
        assert "set-arity" in issues(
            analyzer, "SELECT EMP_ID, EMP_NAME FROM EMP UNION "
            "SELECT DEPT_ID FROM DEPT"
        )

    def test_cte_arity_mismatch(self, analyzer):
        assert "cte-arity" in issues(
            analyzer,
            "WITH c(a, b) AS (SELECT EMP_ID FROM EMP) SELECT a FROM c",
        )

    def test_correlated_subquery_resolves_outer(self, analyzer):
        clean = issues(
            analyzer,
            "SELECT EMP_NAME FROM EMP e WHERE EXISTS "
            "(SELECT 1 FROM DEPT d WHERE d.DEPT_ID = e.DEPT_ID)",
        )
        assert clean == []

    def test_cte_visible_to_body(self, analyzer):
        assert issues(
            analyzer, "WITH c AS (SELECT EMP_ID AS i FROM EMP) "
            "SELECT i FROM c"
        ) == []

    def test_later_cte_sees_earlier(self, analyzer):
        assert issues(
            analyzer,
            "WITH a AS (SELECT EMP_ID AS i FROM EMP), "
            "b AS (SELECT i FROM a) SELECT i FROM b",
        ) == []

    def test_check_raises_on_first_issue(self, analyzer):
        with pytest.raises(SqlAnalysisError):
            analyzer.check(parse("SELECT x FROM nope"))

    def test_group_by_alias_allowed(self, analyzer):
        assert issues(
            analyzer,
            "SELECT DEPT_ID AS d, COUNT(*) FROM EMP GROUP BY d",
        ) == []

    def test_derived_table_columns_visible(self, analyzer):
        assert issues(
            analyzer,
            "SELECT s FROM (SELECT SUM(SALARY) AS s FROM EMP) AS sub",
        ) == []

"""Schema lexicon and grounding tests."""

import pytest

from repro.knowledge import Instruction, SchemaElement
from repro.llm.grounding import Grounder, GroundingInput
from repro.pipeline.lexicon import SchemaLexicon
from repro.pipeline.nlparse import parse_question
from repro.pipeline.spec import (
    SHAPE_RATIO_DELTA_RANK,
    SHAPE_SHARE_OF_TOTAL,
    SHAPE_STANDARD,
    SHAPE_TOPK_BOTH_ENDS,
)


def make_elements():
    """Schema elements mirroring the demo-db conventions."""
    return [
        SchemaElement("s1", "DEPT", description="Each row is a department."),
        SchemaElement("s2", "DEPT", "DEPT_ID", "INTEGER", "Unique id."),
        SchemaElement("s3", "DEPT", "DEPT_NAME", "TEXT", "Department name."),
        SchemaElement(
            "s4", "DEPT", "REGION", "TEXT", "Region.",
            top_values=("West", "East"),
        ),
        SchemaElement("s5", "DEPT", "BUDGET", "FLOAT", "Annual budget."),
        SchemaElement("s6", "EMP", description="Each row is an employee."),
        SchemaElement("s7", "EMP", "EMP_ID", "INTEGER", "Unique id."),
        SchemaElement("s8", "EMP", "EMP_NAME", "TEXT", "Employee name."),
        SchemaElement(
            "s9", "EMP", "DEPT_ID", "INTEGER",
            "Department. Foreign key to DEPT.DEPT_ID.",
        ),
        SchemaElement(
            "s10", "EMP", "SALARY", "FLOAT",
            "Annual salary. Also called: pay, wages.",
        ),
        SchemaElement("s11", "EMP", "HIRED", "DATE", "Hire date."),
    ]


@pytest.fixture()
def lexicon():
    return SchemaLexicon(make_elements())


class TestLexicon:
    def test_tables(self, lexicon):
        assert lexicon.tables() == ["DEPT", "EMP"]
        assert lexicon.has_table("emp")

    def test_match_column_by_name(self, lexicon):
        match = lexicon.match_column("budget")[0]
        assert (match.table, match.column) == ("DEPT", "BUDGET")

    def test_match_column_by_synonym(self, lexicon):
        match = lexicon.match_column("wages")[0]
        assert match.column == "SALARY"

    def test_preferred_table_bonus(self, lexicon):
        # DEPT_ID exists in both tables; preference decides
        match = lexicon.match_column("dept id", preferred_tables=["EMP"])[0]
        assert match.table == "EMP"

    def test_boosted_columns(self, lexicon):
        plain = lexicon.match_column("dept id")[0]
        boosted = lexicon.match_column(
            "dept id", boosted_columns=[("EMP", "DEPT_ID")]
        )[0]
        assert boosted.table == "EMP" or plain.table == boosted.table

    def test_no_match_empty(self, lexicon):
        assert lexicon.match_column("frobnicator") == []

    def test_match_entity(self, lexicon):
        assert lexicon.match_entity("employees")[0][0] == "EMP"
        assert lexicon.match_entity("department")[0][0] == "DEPT"

    def test_match_value_canonical_form(self, lexicon):
        hits = lexicon.match_value("west")
        assert hits == [("DEPT", "REGION", "West")]

    def test_fk_join_both_directions(self, lexicon):
        join = lexicon.join_between("EMP", "DEPT")
        assert join.table == "DEPT"
        assert join.left_column == "DEPT_ID"
        reverse = lexicon.join_between("DEPT", "EMP")
        assert reverse.table == "EMP"

    def test_no_fk_returns_none(self):
        lexicon = SchemaLexicon(make_elements()[:5])
        assert lexicon.join_between("DEPT", "EMP") is None

    def test_date_and_label_columns(self, lexicon):
        assert lexicon.date_column("EMP") == "HIRED"
        assert lexicon.label_column("EMP") == "EMP_NAME"
        assert lexicon.label_column("DEPT") == "DEPT_NAME"

    def test_has_column(self, lexicon):
        assert lexicon.has_column("emp", "salary")
        assert not lexicon.has_column("emp", "BUDGET")


def ground(question, instructions=(), patterns=(), elements=None):
    grounder = Grounder()
    parsed = parse_question(question)
    grounding_input = GroundingInput(
        database_name="demo",
        schema_elements=elements if elements is not None else make_elements(),
        instructions=list(instructions),
        patterns=set(patterns),
    )
    return grounder.ground(parsed, grounding_input)


class TestGroundingBasics:
    def test_count_entity(self):
        spec = ground("How many employees are there?")[0].spec
        assert spec.base_table == "EMP"
        assert spec.metrics[0].agg == "COUNT"

    def test_sum_metric_resolves_table(self):
        spec = ground("What is the total budget?")[0].spec
        assert spec.base_table == "DEPT"
        assert spec.metrics[0].column == "BUDGET"

    def test_value_filter_grounded_by_profile(self):
        spec = ground("How many departments are in West?")[0].spec
        assert spec.filters[0].column == "REGION"
        assert spec.filters[0].value == "West"

    def test_metric_synonym(self):
        spec = ground("What is the average pay?")[0].spec
        assert spec.metrics[0].render() == "AVG(SALARY)"

    def test_group_join_via_fk(self):
        spec = ground("Show me the average salary per region")[0].spec
        assert spec.base_table == "EMP"
        assert spec.joins and spec.joins[0].table == "DEPT"
        assert spec.group_by == ("REGION",)

    def test_unresolvable_metric_records_issue(self):
        candidate = ground("What is the total frobnication?")[0]
        assert any(
            issue.startswith("unresolved-") for issue in candidate.issues
        )

    def test_term_instruction_resolves_metric(self):
        instruction = Instruction(
            "i1", "payroll means total salary", kind="term_definition",
            term="payroll", sql_pattern="SUM(SALARY)", tables=("EMP",),
        )
        spec = ground("What is the payroll?", [instruction])[0].spec
        assert spec.metrics[0].agg == "EXPR"
        assert spec.metrics[0].expression == "SUM(SALARY)"
        assert spec.base_table == "EMP"

    def test_missing_term_falls_back(self):
        candidate = ground("What is the payroll?")[0]
        assert any("unresolved-term" in issue for issue in candidate.issues)

    def test_adjective_instruction_becomes_filter(self):
        instruction = Instruction(
            "i2", "'active' employees means ACTIVE = TRUE",
            sql_pattern="ACTIVE = TRUE",
        )
        elements = make_elements() + [
            SchemaElement("s12", "EMP", "ACTIVE", "BOOLEAN", "Employed."),
        ]
        spec = ground(
            "How many active employees are there?", [instruction],
            elements=elements,
        )[0].spec
        assert any(flt.raw == "ACTIVE = TRUE" for flt in spec.filters)

    def test_unknown_adjective_dropped_with_issue(self):
        candidate = ground("How many active employees are there?")
        assert "unresolved-adjective:active" in candidate[0].issues

    def test_column_alias_instruction(self):
        instruction = Instruction(
            "i3", "'compensation' refers to the SALARY column",
            kind="term_definition", term="compensation",
            sql_pattern="COLUMN EMP.SALARY",
        )
        spec = ground(
            "What is the total compensation?", [instruction]
        )[0].spec
        assert spec.metrics[0].column == "SALARY"

    def test_value_hint_instruction(self):
        instruction = Instruction(
            "i4", "'Northwest' is a value of DEPT.REGION",
            kind="term_definition", term="Northwest",
            sql_pattern="VALUE DEPT.REGION",
        )
        spec = ground(
            "How many departments are in Northwest?", [instruction]
        )[0].spec
        assert spec.filters[0].column == "REGION"

    def test_quarter_needs_date_column(self):
        candidate = ground("What is the total budget for Q2 2023?")
        assert "no-date-column-for-quarter" in candidate[0].issues

    def test_quarter_uses_date_column(self):
        spec = ground("What is the total salary for Q2 2023?")[0].spec
        assert spec.quarter_filters[0].date_column == "HIRED"


class TestGroundingShapes:
    def test_topk_is_standard_with_limit(self):
        spec = ground("Show me the top 3 regions by total salary")[0].spec
        assert spec.shape == SHAPE_STANDARD
        assert spec.order.limit == 3

    def test_both_ends_needs_pattern(self):
        without = ground(
            "Show me the 3 employees with the best and worst total salary"
        )[0]
        assert without.spec.shape == SHAPE_STANDARD
        assert "missing-pattern:topk_both_ends" in without.issues
        with_pattern = ground(
            "Show me the 3 employees with the best and worst total salary",
            patterns={"topk_both_ends"},
        )[0]
        assert with_pattern.spec.shape == SHAPE_TOPK_BOTH_ENDS

    def test_share_needs_pattern(self):
        spec = ground(
            "Show me the share of total salary per region",
            patterns={"share_of_total"},
        )[0].spec
        assert spec.shape == SHAPE_SHARE_OF_TOTAL

    def test_delta_needs_pivot_pattern(self):
        question = (
            "Show me the 3 regions with the largest increase in total "
            "salary versus the previous quarter for Q2 2023"
        )
        fallback = ground(question)[0]
        assert fallback.spec.shape == SHAPE_STANDARD
        grounded = ground(question, patterns={"quarter_pivot"})[0]
        assert grounded.spec.shape == SHAPE_RATIO_DELTA_RANK
        assert grounded.spec.ratio_delta.previous_label == "2023Q1"

    def test_ratio_term_dsl(self):
        instruction = Instruction(
            "i5", "PPE means pay per employee quarter over quarter",
            kind="term_definition", term="PPE",
            sql_pattern=(
                "RATIO_DELTA numerator=EMP.HIRED.SALARY entity=EMP_NAME "
                "negate=false"
            ),
            tables=("EMP",),
        )
        candidate = ground(
            "Show me the 3 employees with the best and worst PPE for Q2 2023",
            [instruction], patterns={"quarter_pivot"},
        )[0]
        assert candidate.spec.shape == SHAPE_RATIO_DELTA_RANK
        params = candidate.spec.ratio_delta
        assert params.numerator_value_column == "SALARY"
        assert params.both_ends

    def test_ratio_term_without_pattern_falls_back(self):
        instruction = Instruction(
            "i5", "PPE term", kind="term_definition", term="PPE",
            sql_pattern="RATIO_DELTA numerator=EMP.HIRED.SALARY entity=EMP_NAME",
            tables=("EMP",),
        )
        candidate = ground(
            "Show me the 3 employees with the best and worst PPE for Q2 2023",
            [instruction],
        )[0]
        assert candidate.spec.shape == SHAPE_STANDARD
        assert "missing-pattern:quarter_pivot" in candidate.issues

    def test_listing(self):
        spec = ground(
            "Show me the emp name and salary of the employees, ordered by "
            "salary from highest to lowest"
        )[0].spec
        assert spec.projection == ("EMP_NAME", "SALARY")
        assert spec.order.column == "SALARY"
        assert spec.order.descending

    def test_alternates_offered_for_near_ties(self):
        candidates = ground("How many employees are there?")
        assert len(candidates) >= 1  # primary always present

    def test_truncated_context_loses_tables(self):
        elements = make_elements()[:5]  # DEPT only
        candidate = ground("What is the total salary?", elements=elements)[0]
        # SALARY is unknowable; grounding degrades instead of crashing
        assert candidate.spec.base_table == "DEPT"

"""Tests for the schema-aware diagnostics engine and its pipeline wiring."""

from __future__ import annotations

import io
from types import SimpleNamespace

import pytest

from repro.pipeline.base import Plan, PlanStep, PipelineContext
from repro.pipeline.config import DEFAULT_CONFIG
from repro.pipeline.correction import SelfCorrectionOperator
from repro.pipeline.generation import GenerationOperator
from repro.sql.diagnostics import (
    RULES,
    DiagnosticsEngine,
    Severity,
    aggregate_functions,
    diagnose,
    error_count,
    severity_score,
    warning_count,
    window_functions,
)

# ---------------------------------------------------------------------------
# Golden pairs: for every rule code, SQL that fires it and SQL that doesn't.
# All run against the demo_db fixture (DEPT/EMP; see conftest.py).
# ---------------------------------------------------------------------------

GOLDEN = {
    "GE000": (
        "SELECT FROM WHERE",
        "SELECT EMP_ID FROM EMP",
    ),
    "GE001": (
        "SELECT 1 FROM NOPE",
        "SELECT 1 FROM EMP",
    ),
    "GE002": (
        "SELECT EMP_NAM FROM EMP",
        "SELECT EMP_NAME FROM EMP",
    ),
    "GE003": (
        "SELECT DEPT_ID FROM EMP JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID",
        "SELECT EMP.DEPT_ID FROM EMP JOIN DEPT ON EMP.DEPT_ID = DEPT.DEPT_ID",
    ),
    "GE004": (
        "SELECT EMP_NAME FROM EMP WHERE SUM(SALARY) > 10",
        "SELECT DEPT_ID FROM EMP GROUP BY DEPT_ID HAVING SUM(SALARY) > 10",
    ),
    "GE005": (
        "SELECT EMP_ID FROM EMP UNION SELECT DEPT_ID, DEPT_NAME FROM DEPT",
        "SELECT EMP_ID FROM EMP UNION SELECT DEPT_ID FROM DEPT",
    ),
    "GE006": (
        "WITH c(a, b) AS (SELECT EMP_ID FROM EMP) SELECT a FROM c",
        "WITH c(a) AS (SELECT EMP_ID FROM EMP) SELECT a FROM c",
    ),
    "GE007": (
        "SELECT *",
        "SELECT * FROM EMP",
    ),
    "GE008": (
        "SELECT EMP_NAME FROM EMP ORDER BY 5",
        "SELECT EMP_NAME FROM EMP ORDER BY 1",
    ),
    "GE009": (
        "SELECT 1 FROM EMP AS x, DEPT AS x WHERE 1 = 1",
        "SELECT 1 FROM EMP AS x, DEPT AS y WHERE 1 = 1",
    ),
    "GE010": (
        "SELECT HIRED + 1 FROM EMP",
        "SELECT SALARY + 1 FROM EMP",
    ),
    "GE011": (
        "SELECT EMP_NAME FROM EMP WHERE EMP_NAME > 5",
        "SELECT EMP_NAME FROM EMP WHERE SALARY > 5",
    ),
    "GE012": (
        "SELECT EMP_NAME, COUNT(*) FROM EMP GROUP BY DEPT_ID",
        "SELECT DEPT_ID, COUNT(*) FROM EMP GROUP BY DEPT_ID",
    ),
    "GE013": (
        "SELECT EMP_NAME FROM EMP HAVING SALARY > 100",
        "SELECT DEPT_ID FROM EMP GROUP BY DEPT_ID HAVING COUNT(*) > 1",
    ),
    "GE014": (
        "WITH c AS (SELECT EMP_ID AS i FROM EMP) SELECT EMP_ID FROM EMP",
        "WITH c AS (SELECT EMP_ID AS i FROM EMP) SELECT i FROM c",
    ),
    "GE015": (
        "SELECT EMP_NAME FROM EMP, DEPT",
        "SELECT EMP_NAME FROM EMP, DEPT WHERE EMP.DEPT_ID = DEPT.DEPT_ID",
    ),
    "GE016": (
        "SELECT EMP_NAME FROM EMP UNION SELECT DEPT_ID FROM DEPT",
        "SELECT EMP_NAME FROM EMP UNION SELECT DEPT_NAME FROM DEPT",
    ),
    "GE017": (
        "SELECT DEPT_NAME FROM DEPT WHERE REGION = 'west'",
        "SELECT DEPT_NAME FROM DEPT WHERE REGION = 'West'",
    ),
}


def codes(database, sql):
    return {diag.code for diag in diagnose(sql, database)}


class TestRuleRegistry:
    def test_at_least_twelve_rules(self):
        assert len(RULES) >= 12

    def test_codes_are_stable_and_unique(self):
        assert sorted(RULES) == [f"GE{i:03d}" for i in range(len(RULES))]
        for code, rule in RULES.items():
            assert rule.code == code
            assert isinstance(rule.severity, Severity)
            assert rule.summary
            assert rule.slug and rule.slug == rule.slug.lower()

    def test_every_rule_has_a_golden_pair(self):
        assert set(GOLDEN) == set(RULES)


class TestGoldenPairs:
    @pytest.mark.parametrize("code", sorted(GOLDEN))
    def test_rule_fires_on_bad_sql(self, demo_db, code):
        bad_sql, _clean_sql = GOLDEN[code]
        assert code in codes(demo_db, bad_sql)

    @pytest.mark.parametrize("code", sorted(GOLDEN))
    def test_rule_silent_on_clean_sql(self, demo_db, code):
        _bad_sql, clean_sql = GOLDEN[code]
        assert code not in codes(demo_db, clean_sql)

    def test_error_rules_match_engine_behaviour(self, demo_db, executor):
        """The severity contract: error-level SQL also fails execution."""
        from repro.engine.errors import ExecutionError
        from repro.sql.errors import SqlError

        for code, (bad_sql, _clean) in GOLDEN.items():
            if RULES[code].severity is not Severity.ERROR:
                continue
            with pytest.raises((SqlError, ExecutionError)):
                executor.execute(bad_sql)

    def test_warning_rules_execute_cleanly(self, demo_db, executor):
        for code, (bad_sql, _clean) in GOLDEN.items():
            if RULES[code].severity is not Severity.WARNING:
                continue
            executor.execute(bad_sql)  # tolerated by the engine


class TestDiagnosticRecords:
    def test_span_points_at_the_offending_token(self, demo_db):
        diagnostics = diagnose("SELECT EMP_NAM FROM EMP", demo_db)
        (diag,) = [d for d in diagnostics if d.code == "GE002"]
        assert diag.span is not None
        assert (diag.span.line, diag.span.column) == (1, 8)
        assert "1:8" in diag.render()

    def test_syntax_error_carries_span(self, demo_db):
        diagnostics = diagnose("SELECT 1 FROM", demo_db)
        (diag,) = diagnostics
        assert diag.code == "GE000" and diag.is_error
        assert diag.span is not None

    def test_unknown_column_suggestion(self, demo_db):
        (diag,) = [
            d for d in diagnose("SELECT EMP_NAM FROM EMP", demo_db)
            if d.code == "GE002"
        ]
        assert diag.suggestion == "EMP_NAME"
        assert "did you mean" in diag.render()

    def test_value_domain_suggests_profiled_value(self, demo_db):
        (diag,) = [
            d for d in diagnose(
                "SELECT DEPT_NAME FROM DEPT WHERE REGION = 'west'", demo_db
            )
            if d.code == "GE017"
        ]
        assert diag.suggestion == "West"
        assert diag.severity is Severity.WARNING

    def test_order_by_alias_suggestion(self, demo_db):
        diagnostics = diagnose(
            "SELECT SALARY AS pay FROM EMP ORDER BY pey", demo_db
        )
        (diag,) = [d for d in diagnostics if d.code == "GE008"]
        assert diag.suggestion == "PAY"

    def test_severity_score_weights(self, demo_db):
        clean = diagnose("SELECT EMP_ID FROM EMP", demo_db)
        warned = diagnose(
            "SELECT DEPT_NAME FROM DEPT WHERE REGION = 'west'", demo_db
        )
        errored = diagnose("SELECT EMP_NAM FROM EMP", demo_db)
        assert severity_score(clean) == 0
        assert 0 < severity_score(warned) < severity_score(errored)
        assert error_count(errored) == 1 and warning_count(warned) == 1

    def test_analyzer_shim_reports_errors_only(self, demo_db):
        from repro.sql import Analyzer, parse

        analyzer = Analyzer(demo_db)
        issues = analyzer.analyze(
            parse("SELECT DEPT_NAME FROM DEPT WHERE REGION = 'west'")
        )
        assert issues == []  # warnings are not legacy issues
        issues = analyzer.analyze(parse("SELECT EMP_NAM FROM EMP"))
        assert [issue.kind for issue in issues] == ["unknown-column"]


class TestEngineRegistryAgreement:
    """Satellite: lint function tables cannot drift from the engine's."""

    def test_aggregates_are_the_engine_registry(self):
        from repro.engine.aggregates import AGGREGATE_NAMES

        assert aggregate_functions() is AGGREGATE_NAMES

    def test_window_functions_are_the_engine_registry(self):
        from repro.engine.window import RANKING_FUNCTIONS

        assert window_functions() is RANKING_FUNCTIONS

    def test_legacy_private_alias(self):
        from repro.sql import analyzer

        assert analyzer._AGGREGATES == aggregate_functions()


class TestGoldSweep:
    def test_no_error_diagnostics_on_gold_sql(self, experiment_context):
        """Every gold query of the seed workload lints free of errors."""
        engines = {}
        failures = []
        for question in experiment_context.workload.questions:
            if question.database not in engines:
                database = experiment_context.profiles[
                    question.database
                ].database
                engines[question.database] = DiagnosticsEngine(database)
            diagnostics = engines[question.database].run_sql(
                question.gold_sql
            )
            errors = [diag for diag in diagnostics if diag.is_error]
            if errors:
                failures.append((question.question_id, errors))
        assert not failures, failures


class TestGenerationRanking:
    def test_picks_lowest_severity_score(self, demo_db, monkeypatch):
        """Candidate order: error < warning < clean — clean must win."""
        bad = "SELECT EMP_NAM FROM EMP"
        warned = "SELECT DEPT_NAME FROM DEPT WHERE REGION = 'west'"
        clean = "SELECT DEPT_NAME FROM DEPT"
        monkeypatch.setattr(
            "repro.pipeline.generation.build_sql", lambda spec: spec
        )
        monkeypatch.setattr(
            "repro.pipeline.generation.assemble_prompt",
            lambda *args, **kwargs: SimpleNamespace(prompt="p"),
        )
        context = PipelineContext(
            question="q", database=demo_db, knowledge=None,
            config=DEFAULT_CONFIG,
        )
        context.plan = Plan(steps=[PlanStep("step")])
        context.grounding_candidates = [
            SimpleNamespace(spec=sql) for sql in (bad, warned, clean)
        ]
        context = GenerationOperator().run(context)
        assert context.sql == clean
        assert set(context.candidate_diagnostics) == {bad, warned, clean}
        assert severity_score(context.candidate_diagnostics[bad]) >= 100
        assert any("lint score 0" in event.summary for event in context.trace)


class TestSelfCorrectionLintGate:
    def test_error_candidate_skips_execution(self, demo_db, monkeypatch):
        """An error-level candidate is never executed; lint feeds the retry."""
        from repro.engine.executor import Executor
        from repro.pipeline import correction

        executed = []

        class CountingExecutor:
            def __init__(self, database):
                self._inner = Executor(database)

            def execute(self, sql):
                executed.append(sql)
                return self._inner.execute(sql)

        monkeypatch.setattr(correction, "Executor", CountingExecutor)
        bad = "SELECT EMP_NAM FROM EMP"
        clean = "SELECT EMP_NAME FROM EMP"
        context = PipelineContext(
            question="q", database=demo_db, knowledge=None,
            config=DEFAULT_CONFIG,
        )
        context.candidates = [bad, clean]
        context.sql = bad
        context = SelfCorrectionOperator().run(context)

        assert context.sql == clean
        assert executed == [clean]  # the bad candidate never ran
        assert context.lint_caught == 1
        assert context.execution_caught == 0
        assert any(
            "lint-rejected" in event.summary and "GE002" in event.summary
            for event in context.trace
        )
        lint_calls = [
            call for call in context.meter.calls
            if call.operator == "self_correct"
        ]
        assert len(lint_calls) == 1  # one simulated regeneration call
        # The lint findings (code + message + suggestion) become the retry
        # context recorded on the attempt.
        assert context.attempts and context.attempts[0][0] == bad
        attempt_error = context.attempts[0][1]
        assert attempt_error.startswith("lint:")
        assert "GE002" in attempt_error
        assert "EMP_NAME" in attempt_error  # suggestion included

    def test_execution_failure_still_counted(self, demo_db):
        """A lint-clean candidate that fails at runtime is execution_caught."""
        # Aggregate of an aggregate parses and lints clean (no rule covers
        # it) but the engine rejects it — exactly the split the two
        # counters measure.
        bad_runtime = "SELECT SUM(COUNT(*)) FROM EMP"
        clean = "SELECT COUNT(*) FROM EMP"
        context = PipelineContext(
            question="q", database=demo_db, knowledge=None,
            config=DEFAULT_CONFIG,
        )
        context.candidates = [bad_runtime, clean]
        context.sql = bad_runtime
        context = SelfCorrectionOperator().run(context)
        assert context.sql == clean
        assert context.execution_caught == 1
        assert context.lint_caught == 0


class TestLintCli:
    def run_cli(self, argv):
        from repro.cli import build_arg_parser

        out = io.StringIO()
        args = build_arg_parser().parse_args(argv)
        code = args.func(args, out=out)
        return code, out.getvalue()

    def test_clean_sql_exits_zero(self):
        code, text = self.run_cli(
            ["lint", "SELECT ORG_NAME FROM SPORTS_ORGS",
             "--db", "sports_holdings"]
        )
        assert code == 0
        assert "clean" in text

    def test_error_sql_exits_nonzero(self):
        code, text = self.run_cli(
            ["lint", "SELECT ORG_NAM FROM SPORTS_ORGS",
             "--db", "sports_holdings"]
        )
        assert code == 1
        assert "GE002" in text and "1 error(s)" in text

    def test_warning_sql_exits_zero(self):
        code, text = self.run_cli(
            ["lint",
             "SELECT ORG_NAME FROM SPORTS_ORGS WHERE COUNTRY = 'canada'",
             "--db", "sports_holdings"]
        )
        assert code == 0
        assert "GE017" in text and "Canada" in text

    def test_no_database_structural_only(self):
        code, text = self.run_cli(["lint", "SELECT X FROM ANYWHERE"])
        assert code == 0  # catalog rules stay silent without --db
        code, text = self.run_cli(["lint", "SELECT *"])
        assert code == 1 and "GE007" in text

    def test_unknown_database_exits(self):
        with pytest.raises(SystemExit, match="Unknown database"):
            self.run_cli(["lint", "SELECT 1", "--db", "nope"])


class TestSpanStabilityAcrossRewriter:
    """Execution's optimize-for-execution pass memoizes on the shared
    parse-cache AST; diagnostics run after an execution must still anchor
    their spans in the ORIGINAL SQL text, not any rewritten form."""

    @staticmethod
    def _spans(diagnostics):
        return [
            (d.code, d.span.position, d.span.line, d.span.column)
            for d in diagnostics if d.span is not None
        ]

    @staticmethod
    def _assert_spans_index_original(sql, diagnostics):
        line_starts = [0]
        for offset, char in enumerate(sql):
            if char == "\n":
                line_starts.append(offset + 1)
        for diag in diagnostics:
            if diag.span is None:
                continue
            assert 0 <= diag.span.position < len(sql)
            assert diag.span.position == (
                line_starts[diag.span.line - 1] + diag.span.column - 1
            )

    def test_warning_spans_survive_execution(self, demo_db, executor):
        sql = "SELECT EMP_NAME FROM EMP\nWHERE SALARY > 'high'"
        engine = DiagnosticsEngine(demo_db)
        before = engine.run_sql(sql)
        assert self._spans(before)  # the fixture must carry a span
        executor.execute(sql)  # triggers the execution rewrite pass
        after = engine.run_sql(sql)
        assert self._spans(after) == self._spans(before)
        self._assert_spans_index_original(sql, after)

    def test_error_span_survives_execution_attempt(self, demo_db, executor):
        sql = "SELECT EMP_NAM FROM EMP"
        engine = DiagnosticsEngine(demo_db)
        before = engine.run_sql(sql)
        with pytest.raises(Exception):
            executor.execute(sql)
        after = engine.run_sql(sql)
        assert self._spans(after) == self._spans(before)
        (diag,) = [d for d in after if d.code == "GE002"]
        # The offset must still slice the offending token out of the
        # original text.
        start = diag.span.position
        assert sql[start:start + len("EMP_NAM")] == "EMP_NAM"

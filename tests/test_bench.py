"""Benchmark substrate tests: schemas, workloads, metrics, baselines."""

import pytest

from repro.bench import (
    BUCKET_SIZES,
    DATABASE_NAMES,
    build_all,
    build_enterprise_workload,
    execution_match,
)
from repro.bench.metrics import EvaluationReport, QuestionOutcome
from repro.engine import Executor
from repro.sql.parser import parse


class TestSchemas:
    def test_six_databases(self):
        assert len(DATABASE_NAMES) == 6
        assert "sports_holdings" in DATABASE_NAMES

    def test_deterministic_across_builds(self):
        first = build_all(seed=99)["retail_chain"].database
        build_all.cache_clear()
        second = build_all(seed=99)["retail_chain"].database
        assert first.table("ORDERS").rows == second.table("ORDERS").rows
        build_all.cache_clear()

    def test_every_table_has_rows(self):
        for profile in build_all().values():
            for table in profile.database.tables:
                assert len(table) > 0, table.name

    def test_glossary_patterns_reference_real_columns(self):
        for profile in build_all().values():
            for entry in profile.glossary:
                if entry.sql_pattern.startswith("RATIO_DELTA"):
                    continue
                for table_name in entry.tables:
                    table = profile.database.table(table_name)
                    # the pattern only uses columns of its table
                    sql = f"SELECT {entry.sql_pattern} FROM {table_name}"
                    Executor(profile.database).execute(sql)

    def test_guideline_predicates_execute(self):
        for profile in build_all().values():
            for entry in profile.guidelines:
                if not entry.sql_pattern or "=" not in entry.sql_pattern:
                    continue
                if entry.sql_pattern.startswith("-1"):
                    continue
                if "TO_CHAR" in entry.sql_pattern:
                    continue
                for table_name in entry.tables:
                    table = profile.database.table(table_name)
                    column = entry.sql_pattern.split(" ")[0]
                    if table.has_column(column):
                        Executor(profile.database).execute(
                            f"SELECT COUNT(*) FROM {table_name} "
                            f"WHERE {entry.sql_pattern}"
                        )

    def test_sports_viewership_is_catalog_tail(self):
        profile = build_all()["sports_holdings"]
        assert profile.database.tables[-1].name == "SPORTS_VIEWERSHIP"

    def test_date_columns_exist_and_are_dates(self):
        for profile in build_all().values():
            for table_name, column in profile.date_columns.items():
                assert profile.database.table(table_name).column(
                    column
                ).type == "DATE"


class TestWorkload:
    def test_bucket_sizes_match_paper(self, experiment_context):
        workload = experiment_context.workload
        for difficulty, size in BUCKET_SIZES.items():
            assert len(workload.by_difficulty(difficulty)) == size

    def test_gold_sql_parses_and_executes(self, experiment_context):
        for question in experiment_context.workload.questions:
            parse(question.gold_sql)
            database = experiment_context.profiles[
                question.database
            ].database
            Executor(database).execute(question.gold_sql)

    def test_question_ids_unique(self, experiment_context):
        ids = [q.question_id for q in experiment_context.workload.questions]
        assert len(ids) == len(set(ids))

    def test_every_database_contributes(self, experiment_context):
        databases = {
            question.database
            for question in experiment_context.workload.questions
        }
        assert databases == set(DATABASE_NAMES)

    def test_training_logs_execute(self, experiment_context):
        for name, log in experiment_context.workload.training_logs.items():
            database = experiment_context.profiles[name].database
            assert len(log) >= 8
            for entry in log:
                Executor(database).execute(entry.sql)

    def test_trap_questions_present(self, experiment_context):
        features = set()
        for question in experiment_context.workload.questions:
            features.update(question.features)
        assert "trap:vague" in features
        assert "trap:unknown-adjective" in features
        assert "trap:term-synonym" in features

    def test_workload_deterministic(self, experiment_context):
        from repro.bench import build_workload

        rebuilt = build_workload()
        assert [q.question for q in rebuilt.questions] == [
            q.question for q in experiment_context.workload.questions
        ]

    def test_enterprise_workload(self):
        workload = build_enterprise_workload()
        assert len(workload.questions) == 24
        assert all(
            question.database == "sports_holdings"
            for question in workload.questions
        )
        ratio_questions = [
            question for question in workload.questions
            if "kind:ratio-delta" in question.features
        ]
        assert len(ratio_questions) == 12


class TestMetrics:
    def test_execution_match_true(self, demo_db):
        assert execution_match(
            demo_db,
            "SELECT COUNT(*) FROM EMP",
            "SELECT COUNT(EMP_ID) FROM EMP",
        )

    def test_execution_match_order_insensitive(self, demo_db):
        assert execution_match(
            demo_db,
            "SELECT DEPT_ID FROM DEPT ORDER BY DEPT_ID DESC",
            "SELECT DEPT_ID FROM DEPT ORDER BY DEPT_ID",
        )

    def test_execution_match_false_on_wrong_result(self, demo_db):
        assert not execution_match(
            demo_db, "SELECT COUNT(*) FROM EMP", "SELECT COUNT(*) FROM DEPT"
        )

    def test_broken_prediction_is_wrong_not_crash(self, demo_db):
        assert not execution_match(
            demo_db, "SELECT nope FROM EMP", "SELECT COUNT(*) FROM EMP"
        )
        assert not execution_match(
            demo_db, "", "SELECT COUNT(*) FROM EMP"
        )

    def test_broken_gold_raises(self, demo_db):
        with pytest.raises(AssertionError):
            execution_match(demo_db, "SELECT 1", "SELECT nope FROM EMP")

    def test_report_buckets(self):
        report = EvaluationReport("sys")
        report.add(QuestionOutcome("q1", "simple", "db", True, "", ""))
        report.add(QuestionOutcome("q2", "simple", "db", False, "", ""))
        report.add(QuestionOutcome("q3", "moderate", "db", True, "", ""))
        assert report.accuracy("simple") == 50.0
        assert report.accuracy() == pytest.approx(200 / 3)
        assert report.counts("simple") == (1, 2)
        assert len(report.failures()) == 1
        simple, moderate, challenging, total = report.row()
        assert challenging == 0.0


class TestBaselineConfigs:
    def test_baseline_registry(self):
        from repro.bench.baselines import BASELINES

        names = [spec.name for spec in BASELINES]
        assert names == ["CHESS", "MAC-SQL", "TA-SQL", "DAIL-SQL", "C3-SQL"]

    def test_no_knowledge_baselines_lack_instructions(self):
        from repro.bench.baselines import C3_CONFIG, MAC_CONFIG, TA_CONFIG

        for config in (C3_CONFIG, MAC_CONFIG, TA_CONFIG):
            assert not config.use_instructions

    def test_schema_maximal_flattens_ratio(self, experiment_context):
        from repro.bench.baselines import build_schema_maximal

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        pipeline = build_schema_maximal(profile.database, knowledge)
        result = pipeline.generate(
            "Identify our 5 sports organisations with the best and worst "
            "QoQFP in Canada for Q2 2023"
        )
        assert "complexity-ceiling:flattened-ratio-delta" in result.plan.issues
        assert "NULLIF" not in result.sql  # the ratio is gone

    def test_schema_maximal_handles_single_pivot(self, experiment_context):
        from repro.bench.baselines import build_schema_maximal

        profile = experiment_context.profiles["energy_grid"]
        knowledge = experiment_context.knowledge_sets["energy_grid"]
        pipeline = build_schema_maximal(profile.database, knowledge)
        result = pipeline.generate(
            "Show me the 3 zones with the largest increase in total "
            "output versus the previous quarter for Q2 2023"
        )
        assert result.success
        assert "CASE WHEN" in result.sql

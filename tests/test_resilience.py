"""The resilience layer: retry policy, breaker, fault injection, and
graceful pipeline degradation (DESIGN.md §6c)."""

import pytest

from repro.llm.simulated import SimulatedLLM
from repro.obs.metrics import get_metrics
from repro.resilience import (
    FAULT_ERROR,
    FAULT_GARBLE,
    CircuitBreaker,
    CircuitOpenError,
    FatalLLMError,
    FaultConfig,
    FaultInjector,
    FaultyExecutor,
    FaultyLLM,
    InjectedExecutionError,
    LLMTimeoutError,
    ResilientLLM,
    RetriesExhaustedError,
    RetryPolicy,
    TransientLLMError,
    classify_error,
    stable_unit,
    unwrap_llm,
)
from repro.resilience.policy import FATAL, RETRYABLE


class TestClassification:
    def test_transient_is_retryable(self):
        assert classify_error(TransientLLMError("x")) == RETRYABLE
        assert classify_error(LLMTimeoutError("x")) == RETRYABLE
        assert classify_error(TimeoutError("x")) == RETRYABLE
        assert classify_error(ConnectionResetError("x")) == RETRYABLE

    def test_fatal_and_unknown(self):
        assert classify_error(FatalLLMError("x")) == FATAL
        assert classify_error(CircuitOpenError("x")) == FATAL
        assert classify_error(ValueError("x")) == FATAL

    def test_extra_retryable(self):
        assert classify_error(
            ValueError("x"), extra_retryable=(ValueError,)
        ) == RETRYABLE


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base_ms=10, backoff_multiplier=2,
                             backoff_max_ms=35, jitter_ratio=0.0)
        assert policy.backoff_ms(1) == 10
        assert policy.backoff_ms(2) == 20
        assert policy.backoff_ms(3) == 35  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_ms=100, jitter_ratio=0.25, seed=3)
        first = policy.backoff_ms(1, "site")
        assert first == policy.backoff_ms(1, "site")  # seeded, stable
        assert 100 <= first <= 125
        # Different seeds / sites / attempts decorrelate.
        other = RetryPolicy(backoff_base_ms=100, jitter_ratio=0.25, seed=4)
        assert first != other.backoff_ms(1, "site")

    def test_stable_unit_range(self):
        values = [stable_unit(7, "a", n) for n in range(200)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert values == [stable_unit(7, "a", n) for n in range(200)]


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        breaker = CircuitBreaker(threshold=2, cooldown=3)
        assert breaker.allow("s")
        breaker.record_failure("s")
        assert breaker.allow("s")
        breaker.record_failure("s")          # second consecutive -> open
        assert breaker.is_open("s")
        rejected = sum(0 if breaker.allow("s") else 1 for _ in range(3))
        assert rejected == 3                 # cooldown counted in calls
        assert breaker.allow("s")            # half-open trial
        breaker.record_success("s")
        assert breaker.allow("s")            # closed again

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure("s")
        assert not breaker.allow("s") and not breaker.allow("s")
        assert breaker.allow("s")            # trial
        breaker.record_failure("s")          # trial failed -> reopen
        assert breaker.is_open("s")


class _FlakyLLM:
    """Fails ``failures`` times per site, then succeeds."""

    model = "gpt-4o"

    def __init__(self, failures, error=TransientLLMError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def reformulate(self, question, meter=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"flaky call {self.calls}")
        return f"Show me {question}"


class TestResilientLLM:
    def test_transparent_on_success(self):
        llm = ResilientLLM(SimulatedLLM())
        assert llm.reformulate("How many teams are there?") == \
            SimulatedLLM().reformulate("How many teams are there?")
        assert llm.model.name == "gpt-4o"      # attribute passthrough
        assert unwrap_llm(llm) is llm.inner

    def test_retries_then_recovers(self):
        metrics = get_metrics()
        before = metrics.counter_value(
            "resilience.recoveries", operator="reformulate"
        )
        inner = _FlakyLLM(failures=2)
        llm = ResilientLLM(inner, RetryPolicy(max_attempts=3))
        assert llm.reformulate("q") == "Show me q"
        assert inner.calls == 3
        after = metrics.counter_value(
            "resilience.recoveries", operator="reformulate"
        )
        assert after == before + 1

    def test_exhausts_into_retries_exhausted(self):
        inner = _FlakyLLM(failures=99)
        llm = ResilientLLM(inner, RetryPolicy(max_attempts=3))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            llm.reformulate("q")
        assert inner.calls == 3
        assert excinfo.value.site == "reformulate"
        assert isinstance(excinfo.value.last_error, TransientLLMError)

    def test_fatal_error_not_retried(self):
        inner = _FlakyLLM(failures=99, error=FatalLLMError)
        llm = ResilientLLM(inner, RetryPolicy(max_attempts=3))
        with pytest.raises(FatalLLMError):
            llm.reformulate("q")
        assert inner.calls == 1

    def test_soft_timeout_is_retried(self):
        import time

        class SlowLLM:
            def reformulate(self, question, meter=None):
                time.sleep(0.002)
                return question

        llm = ResilientLLM(
            SlowLLM(), RetryPolicy(max_attempts=2, timeout_ms=0.1)
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            llm.reformulate("q")
        assert isinstance(excinfo.value.last_error, LLMTimeoutError)

    def test_breaker_opens_and_blocks(self):
        inner = _FlakyLLM(failures=99)
        policy = RetryPolicy(max_attempts=2, breaker_threshold=2,
                             breaker_cooldown=5)
        llm = ResilientLLM(inner, policy)
        with pytest.raises(RetriesExhaustedError):
            llm.reformulate("q")               # 2 failures -> breaker opens
        calls_before = inner.calls
        with pytest.raises(CircuitOpenError):
            llm.reformulate("q")               # rejected without a call
        assert inner.calls == calls_before


class TestFaultInjector:
    def test_rate_zero_never_faults(self):
        injector = FaultInjector(FaultConfig(rate=0.0, seed=1), scope="db")
        assert all(injector.decide("site") is None for _ in range(50))

    def test_rate_one_always_faults(self):
        injector = FaultInjector(FaultConfig(rate=1.0, seed=1), scope="db")
        assert all(injector.decide("site") is not None for _ in range(50))

    def test_decisions_are_deterministic(self):
        config = FaultConfig(rate=0.3, seed=7)
        first = [
            FaultInjector(config, scope="db").decide("s") for _ in range(1)
        ]
        one = FaultInjector(config, scope="db")
        two = FaultInjector(config, scope="db")
        assert [one.decide("s") for _ in range(100)] == \
            [two.decide("s") for _ in range(100)]
        other_scope = FaultInjector(config, scope="other")
        assert [one.decide("s") for _ in range(100)] != \
            [other_scope.decide("s") for _ in range(100)]
        del first

    def test_parse_flag_forms(self):
        assert FaultConfig.parse("0.2:7") == FaultConfig(rate=0.2, seed=7)
        assert FaultConfig.parse("0.3").rate == 0.3
        assert FaultConfig.parse("0.3").seed == 0
        with pytest.raises(ValueError):
            FaultConfig.parse("lots")
        with pytest.raises(ValueError):
            FaultConfig(rate=1.5)

    def test_kind_partition_covers_band(self):
        config = FaultConfig(rate=1.0, seed=0)
        kinds = {
            config.kind_for(unit / 100.0) for unit in range(100)
        }
        assert kinds == {"error", "timeout", "garble", "latency"}

    def test_garble_shapes(self):
        injector = FaultInjector(FaultConfig(rate=1.0), scope="db")
        garbled = injector.garble("Show me all the teams in the league")
        assert garbled.endswith("##TRUNCATED##")
        assert len(injector.garble([1, 2, 3, 4])) == 2
        parsed, candidates = injector.garble(("p", [1, 2, 3]))
        assert parsed == "p" and candidates == [1]
        assert injector.garble(42) == 42

    def test_faulty_llm_injects_transient(self):
        config = FaultConfig(rate=1.0, seed=1, error_share=1.0,
                             timeout_share=0.0, garble_share=0.0,
                             latency_share=0.0)
        faulty = FaultyLLM(SimulatedLLM(), FaultInjector(config, scope="db"))
        with pytest.raises(TransientLLMError):
            faulty.reformulate("q")

    def test_faulty_executor_raises_execution_error(self, demo_db):
        from repro.engine.errors import ExecutionError
        from repro.engine.executor import Executor

        config = FaultConfig(rate=1.0, seed=1, error_share=1.0,
                             timeout_share=0.0, garble_share=0.0,
                             latency_share=0.0)
        executor = FaultyExecutor(
            Executor(demo_db), FaultInjector(config, scope="db")
        )
        with pytest.raises(InjectedExecutionError):
            executor.execute("SELECT * FROM DEPT")
        assert issubclass(InjectedExecutionError, ExecutionError)

    def test_faulty_executor_passthrough_without_faults(self, demo_db):
        from repro.engine.executor import Executor

        executor = FaultyExecutor(
            Executor(demo_db),
            FaultInjector(FaultConfig(rate=0.0), scope="db"),
        )
        assert len(executor.execute("SELECT * FROM DEPT").rows) == 3


class _RaisingLLM(SimulatedLLM):
    """A simulated LLM whose chosen sites always fail fatally."""

    def __init__(self, broken_sites):
        super().__init__()
        self.broken_sites = set(broken_sites)

    def _maybe_raise(self, site):
        if site in self.broken_sites:
            raise FatalLLMError(f"backend down for {site}")

    def reformulate(self, *args, **kwargs):
        self._maybe_raise("reformulate")
        return super().reformulate(*args, **kwargs)

    def classify_intents(self, *args, **kwargs):
        self._maybe_raise("classify_intents")
        return super().classify_intents(*args, **kwargs)

    def link_schema(self, *args, **kwargs):
        self._maybe_raise("link_schema")
        return super().link_schema(*args, **kwargs)

    def understand(self, *args, **kwargs):
        self._maybe_raise("understand")
        return super().understand(*args, **kwargs)


class TestPipelineDegradation:
    def _pipeline(self, experiment_context, llm):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        return GenEditPipeline(profile.database, knowledge, llm=llm)

    def test_optional_operator_fails_soft(self, experiment_context):
        pipeline = self._pipeline(
            experiment_context, _RaisingLLM({"reformulate"})
        )
        result = pipeline.generate("How many teams are there?")
        assert result.degraded_operators == ("reformulate",)
        assert result.failed_operator == ""
        # Raw question flowed through; the rest of the pipeline still ran.
        assert result.context.reformulated == "How many teams are there?"
        assert result.sql
        assert result.success

    def test_degradation_recorded_on_span_and_metrics(
        self, experiment_context
    ):
        metrics = get_metrics()
        before = metrics.counter_value(
            "pipeline.operator_degraded", operator="classify_intents"
        )
        pipeline = self._pipeline(
            experiment_context, _RaisingLLM({"classify_intents"})
        )
        result = pipeline.generate("How many teams are there?")
        assert result.context.intent_ids == []
        spans = [
            record for record in result.trace_records()
            if record["name"] == "classify_intents"
        ]
        assert spans and spans[0]["attributes"]["degraded"] is True
        assert "FatalLLMError" in spans[0]["attributes"]["degraded_reason"]
        assert metrics.counter_value(
            "pipeline.operator_degraded", operator="classify_intents"
        ) == before + 1
        root = [
            record for record in result.trace_records()
            if record["parent_id"] is None
        ][0]
        assert root["attributes"]["degraded"] == "classify_intents"

    def test_required_operator_fails_run_without_exception(
        self, experiment_context
    ):
        metrics = get_metrics()
        before = metrics.counter_value(
            "pipeline.failed_runs", operator="plan"
        )
        pipeline = self._pipeline(
            experiment_context, _RaisingLLM({"understand"})
        )
        result = pipeline.generate("How many teams are there?")
        assert not result.success
        assert result.failed_operator == "plan"
        assert "FatalLLMError" in result.error
        assert metrics.counter_value(
            "pipeline.failed_runs", operator="plan"
        ) == before + 1
        spans = {
            record["name"]: record for record in result.trace_records()
        }
        assert spans["plan"]["status"] == "error"
        # The pipeline stopped: generation never ran.
        assert "generate_sql" not in spans

    def test_retries_exhausted_degrades_optional(self, experiment_context):
        class _Transient(_RaisingLLM):
            def _maybe_raise(self, site):
                if site in self.broken_sites:
                    raise TransientLLMError(f"flaky {site}")

        from repro.pipeline import GenEditPipeline
        from repro.resilience import RetryPolicy as _Policy

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        pipeline = GenEditPipeline(
            profile.database, knowledge,
            llm=_Transient({"classify_intents"}),
            retry_policy=_Policy(max_attempts=2),
        )
        result = pipeline.generate("How many teams are there?")
        assert result.degraded_operators == ("classify_intents",)
        reason = dict(result.context.degraded_operators)["classify_intents"]
        assert "RetriesExhaustedError" in reason
        assert result.success

    def test_enable_faults_keeps_generate_exception_free(
        self, experiment_context
    ):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        pipeline = GenEditPipeline(profile.database, knowledge)
        injector = pipeline.enable_faults(FaultConfig(rate=0.6, seed=11))
        questions = [
            entry.question
            for entry in experiment_context.workload.questions
            if entry.database == "sports_holdings"
        ][:8]
        for question in questions:
            result = pipeline.generate(question)   # must never raise
            assert result.question == question
        assert sum(injector.injected.values()) > 0


class TestChaosEvaluation:
    """The acceptance-criteria pair: equivalence at rate 0, completion
    under faults."""

    def _subset(self, experiment_context, per_db=4):
        questions = []
        seen = {}
        for question in experiment_context.workload.questions:
            if seen.get(question.database, 0) < per_db:
                seen[question.database] = seen.get(question.database, 0) + 1
                questions.append(question)
        return questions

    def _run(self, experiment_context, fault_config):
        from repro.bench.harness import evaluate_system
        from repro.pipeline import GenEditPipeline

        return evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks),
            experiment_context.workload,
            experiment_context.profiles,
            experiment_context.knowledge_sets,
            "chaos",
            questions=self._subset(experiment_context),
            cache=experiment_context.cache,
            fault_config=fault_config,
        )

    def test_rate_zero_is_equivalent_to_no_faults(self, experiment_context):
        clean = self._run(experiment_context, None)
        zero = self._run(experiment_context, FaultConfig(rate=0.0, seed=7))
        assert [o.correct for o in zero.outcomes] == \
            [o.correct for o in clean.outcomes]
        assert [o.predicted_sql for o in zero.outcomes] == \
            [o.predicted_sql for o in clean.outcomes]

    def test_chaos_run_completes_with_populated_errors(
        self, experiment_context
    ):
        metrics = get_metrics()
        retries_before = sum(
            value
            for key, value in metrics.snapshot()["counters"].items()
            if key.startswith("resilience.retries")
        )
        questions = self._subset(experiment_context)
        report = self._run(
            experiment_context, FaultConfig(rate=0.5, seed=7)
        )
        assert len(report.outcomes) == len(questions)
        assert [o.question_id for o in report.outcomes] == \
            [q.question_id for q in questions]          # workload order
        for outcome in report.outcomes:
            assert outcome.correct or outcome.error     # never silent
        snapshot = metrics.snapshot()["counters"]
        retries_after = sum(
            value for key, value in snapshot.items()
            if key.startswith("resilience.retries")
        )
        assert retries_after > retries_before
        assert any(
            key.startswith("faults.injected") for key in snapshot
        )

    def test_chaos_is_deterministic(self, experiment_context):
        config = FaultConfig(rate=0.4, seed=13)
        first = self._run(experiment_context, config)
        second = self._run(experiment_context, config)
        assert [o.correct for o in first.outcomes] == \
            [o.correct for o in second.outcomes]
        assert [o.predicted_sql for o in first.outcomes] == \
            [o.predicted_sql for o in second.outcomes]
        assert [o.error for o in first.outcomes] == \
            [o.error for o in second.outcomes]


class TestSelfCorrectionSatellites:
    def test_queue_dedupes_duplicate_candidates(self, demo_db, monkeypatch):
        """Duplicate candidates must not burn retry budget."""
        from repro.engine.executor import Executor
        from repro.pipeline import correction
        from repro.pipeline.base import PipelineContext
        from repro.pipeline.config import DEFAULT_CONFIG
        from repro.pipeline.correction import SelfCorrectionOperator

        executed = []

        class CountingExecutor:
            def __init__(self, database):
                self._inner = Executor(database)

            def execute(self, sql):
                executed.append(sql)
                return self._inner.execute(sql)

        monkeypatch.setattr(correction, "Executor", CountingExecutor)
        failing = "SELECT SUM(COUNT(*)) FROM EMP"   # lints clean, fails
        clean = "SELECT COUNT(*) FROM EMP"
        context = PipelineContext(
            question="q", database=demo_db, knowledge=None,
            config=DEFAULT_CONFIG,
        )
        # The duplicates: chosen SQL repeated in candidates, twice.
        context.candidates = [failing, failing, failing, clean]
        context.sql = failing
        context = SelfCorrectionOperator().run(context)
        assert context.sql == clean
        assert executed == [failing, clean]         # each distinct SQL once
        assert context.execution_caught == 1

    def test_regeneration_records_configured_model(self, demo_db):
        from repro.llm.interface import GPT_4O_MINI
        from repro.pipeline.base import PipelineContext
        from repro.pipeline.config import DEFAULT_CONFIG
        from repro.pipeline.correction import SelfCorrectionOperator

        llm = SimulatedLLM(model=GPT_4O_MINI)
        context = PipelineContext(
            question="q", database=demo_db, knowledge=None,
            config=DEFAULT_CONFIG,
        )
        context.candidates = ["SELECT SUM(COUNT(*)) FROM EMP",
                              "SELECT COUNT(*) FROM EMP"]
        context.sql = context.candidates[0]
        SelfCorrectionOperator(llm).run(context)
        regen = [
            call for call in context.meter.calls
            if call.operator == "self_correct"
        ]
        assert regen and all(
            call.model == "gpt-4o-mini" for call in regen
        )

    def test_pipeline_threads_model_through_correction(
        self, experiment_context
    ):
        from repro.llm.interface import GPT_4O_MINI
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        pipeline = GenEditPipeline(
            profile.database, knowledge,
            llm=SimulatedLLM(model=GPT_4O_MINI),
        )
        result = pipeline.generate("How many teams are there?")
        models = {
            call.model for call in result.context.meter.calls
            if call.operator in ("self_correct", "generate_sql")
        }
        assert models <= {"gpt-4o-mini"}

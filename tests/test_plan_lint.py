"""Plan lint (``GP0xx``): per-rule golden tests plus pipeline wiring."""

import types

from repro.pipeline.base import Plan, PlanStep
from repro.pipeline.plan_lint import (
    PLAN_RULES,
    lint_plan,
    plan_error_codes,
    plan_error_score,
)


def codes(findings):
    return {finding.code for finding in findings}


def make_plan(*steps, spec=None):
    return Plan(
        steps=[
            PlanStep(description=description, pseudo_sql=pseudo)
            for description, pseudo in steps
        ],
        spec=spec,
    )


def subset(*tables):
    return [types.SimpleNamespace(table=table) for table in tables]


CLEAN_PLAN = (
    ("Keep only departments in the West region.",
     "WHERE DEPT.REGION = 'West'"),
    ("Aggregate the rows kept in step 1 per region.",
     "SELECT DEPT.REGION, SUM(DEPT.BUDGET) AS TOTAL_BUDGET FROM DEPT"),
)


class TestRegistry:
    def test_eight_rules_registered(self):
        assert sorted(PLAN_RULES) == [f"GP{n:03d}" for n in range(1, 9)]

    def test_finding_render_names_step(self):
        finding = PLAN_RULES["GP002"].at("references table 'X'", step=3)
        assert "GP002" in finding.render()
        assert "step 3" in finding.render()


class TestCleanPlan:
    def test_clean_plan_has_no_findings(self, demo_db):
        findings = lint_plan(
            make_plan(*CLEAN_PLAN), demo_db, subset("DEPT")
        )
        assert findings == []

    def test_standalone_lint_without_database(self):
        # Catalog checks are skipped; structural checks still run.
        findings = lint_plan(make_plan(*CLEAN_PLAN))
        assert findings == []


class TestRules:
    def test_gp001_empty_plan(self, demo_db):
        findings = lint_plan(make_plan(), demo_db)
        assert codes(findings) == {"GP001"}
        assert findings[0].is_error

    def test_gp002_unknown_table(self, demo_db):
        findings = lint_plan(make_plan(
            ("Scan the warehouse.", "SELECT * FROM WAREHOUSE_OLD"),
        ), demo_db)
        assert codes(findings) == {"GP002"}
        assert findings[0].step == 1

    def test_gp002_clean_on_known_table(self, demo_db):
        findings = lint_plan(make_plan(
            ("Scan departments.", "SELECT * FROM DEPT"),
        ), demo_db)
        assert findings == []

    def test_gp003_table_outside_linked_subset(self, demo_db):
        findings = lint_plan(make_plan(
            ("Join employees.", "SELECT * FROM EMP"),
        ), demo_db, subset("DEPT"))
        assert codes(findings) == {"GP003"}
        assert not findings[0].is_error

    def test_gp003_not_raised_without_subset(self, demo_db):
        findings = lint_plan(make_plan(
            ("Join employees.", "SELECT * FROM EMP"),
        ), demo_db)
        assert findings == []

    def test_gp004_unknown_qualified_column(self, demo_db):
        findings = lint_plan(make_plan(
            ("Project head count.", "SELECT DEPT.HEADCOUNT FROM DEPT"),
        ), demo_db, subset("DEPT"))
        assert codes(findings) == {"GP004"}

    def test_gp004_placeholder_columns_allowed(self, demo_db):
        findings = lint_plan(make_plan(
            ("Rank by the metric.",
             "SELECT DEPT.METRIC_VALUE FROM DEPT"),
        ), demo_db, subset("DEPT"))
        assert findings == []

    def test_gp004_inline_alias_allowed(self, demo_db):
        findings = lint_plan(make_plan(
            ("Compute the total.",
             "SELECT SUM(DEPT.BUDGET) AS GRAND_TOTAL FROM DEPT"),
            ("Reuse the total.", "WHERE DEPT.GRAND_TOTAL > 100"),
        ), demo_db, subset("DEPT"))
        assert findings == []

    def test_gp005_unparseable_pseudo_sql(self, demo_db):
        findings = lint_plan(make_plan(
            ("Rotted step.", "SELECT )) ORDER (("),
        ), demo_db)
        assert codes(findings) == {"GP005"}

    def test_gp005_fragment_heads_parse(self, demo_db):
        for pseudo in (
            "WHERE REGION = 'West'",
            "FROM DEPT",
            "GROUP BY REGION",
            "ORDER BY BUDGET DESC",
            "SUM(BUDGET) AS TOTAL",
        ):
            findings = lint_plan(
                make_plan(("A fragment step.", pseudo)), demo_db
            )
            assert "GP005" not in codes(findings), pseudo

    def test_gp006_dangling_metric_reference(self, demo_db):
        spec = types.SimpleNamespace(
            metrics=[types.SimpleNamespace(alias="TOTAL")],
            order=types.SimpleNamespace(metric_index=3),
            having=[types.SimpleNamespace(metric_index=5)],
        )
        findings = lint_plan(
            make_plan(("Order by the metric.", ""), spec=spec), demo_db
        )
        assert [f.code for f in findings] == ["GP006", "GP006"]

    def test_gp006_in_range_metric_is_clean(self, demo_db):
        spec = types.SimpleNamespace(
            metrics=[types.SimpleNamespace(alias="TOTAL")],
            order=types.SimpleNamespace(metric_index=0),
            having=[types.SimpleNamespace(metric_index=0)],
        )
        findings = lint_plan(
            make_plan(("Order by the metric.", ""), spec=spec), demo_db
        )
        assert findings == []

    def test_gp007_dangling_step_reference(self, demo_db):
        findings = lint_plan(make_plan(
            ("Join the totals computed in step 5.", ""),
        ), demo_db)
        assert codes(findings) == {"GP007"}

    def test_gp007_valid_step_reference_is_clean(self, demo_db):
        findings = lint_plan(make_plan(*CLEAN_PLAN), demo_db)
        assert findings == []

    def test_gp008_template_slot(self, demo_db):
        findings = lint_plan(make_plan(
            ("Filter by the requested region.",
             "WHERE REGION = {region}"),
        ), demo_db)
        assert "GP008" in codes(findings)

    def test_gp008_empty_literal_slot(self, demo_db):
        findings = lint_plan(make_plan(
            ("Filter on an unresolved literal.",
             "WHERE DEPT.REGION = ''"),
        ), demo_db, subset("DEPT"))
        assert codes(findings) == {"GP008"}


class TestScores:
    def test_plan_error_score_counts_errors_only(self, demo_db):
        findings = lint_plan(make_plan(
            ("Scan the warehouse.", "SELECT * FROM WAREHOUSE_OLD"),
            ("Filter on an unresolved literal.", "WHERE REGION = ''"),
        ), demo_db)
        assert codes(findings) == {"GP002", "GP008"}
        assert plan_error_score(findings) == 100
        assert plan_error_codes(findings) == ("GP002",)


class TestPipelineWiring:
    def test_operator_runs_between_plan_and_generate(self, sports_pipeline):
        names = [
            operator.name for operator in sports_pipeline.operators
        ]
        assert names.index("plan") < names.index("lint_plan")
        assert names.index("lint_plan") < names.index("generate_sql")

    def test_benchmark_plans_lint_clean(self, sports_pipeline):
        result = sports_pipeline.generate("How many teams are there?")
        assert result.context.plan_findings == []

    def test_outcome_carries_plan_codes(self, experiment_context):
        from repro.bench.harness import evaluate_system
        from repro.pipeline import GenEditPipeline

        report = evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks),
            experiment_context.workload,
            experiment_context.profiles,
            experiment_context.knowledge_sets,
            "subset",
            questions=experiment_context.workload.questions[:2],
        )
        for outcome in report.outcomes:
            assert outcome.plan_codes == ()

"""Differential suite: columnar executor vs the frozen row-at-a-time oracle.

Every statement in ``tests/fixtures/sql_corpus/``, every workload gold
query, every training-log query, and a set of handwritten stress queries
runs through both :class:`repro.engine.Executor` (columnar, rewritten
plans, hash joins) and :class:`repro.engine.reference.ReferenceExecutor`
(the pre-columnar engine, preserved verbatim). The two must agree exactly:
same ``Result.comparable()`` and columns on success, same exception type
and message on failure. This is the evidence that the columnar fast paths
are safe to trust for the EX metric.
"""

from __future__ import annotations

import datetime
import pathlib

import pytest

from repro.engine import ExecutionError, Executor, Result
from repro.engine.executor import _stable_key
from repro.engine.reference import ReferenceExecutor
from repro.engine.values import comparable_cell
from repro.sql.errors import SqlError

CORPUS_DIR = pathlib.Path(__file__).parent / "fixtures" / "sql_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.sql"))

#: Handwritten queries stressing exactly the surfaces the columnar engine
#: rewrote: hash joins (equi and non-equi fallback), outer joins with
#: NULL padding, hash grouping, correlated subqueries (row fallback),
#: window functions, set operations, DISTINCT + ORDER BY, ordinals.
STRESS_QUERIES = [
    "SELECT * FROM EMP",
    "SELECT EMP_NAME, SALARY FROM EMP WHERE SALARY > 90 ORDER BY SALARY DESC",
    "SELECT EMP_NAME FROM EMP WHERE SALARY IS NULL",
    "SELECT EMP_NAME FROM EMP WHERE NOT (ACTIVE AND SALARY > 100)",
    # Equi-joins take the hash path; the ON residual must still apply.
    "SELECT E.EMP_NAME, D.DEPT_NAME FROM EMP E JOIN DEPT D"
    " ON E.DEPT_ID = D.DEPT_ID ORDER BY E.EMP_ID",
    "SELECT E.EMP_NAME, D.DEPT_NAME FROM EMP E JOIN DEPT D"
    " ON E.DEPT_ID = D.DEPT_ID AND D.BUDGET > 500",
    # Non-equi join predicate: must fall back to the loop join.
    "SELECT E.EMP_NAME, D.DEPT_NAME FROM EMP E JOIN DEPT D"
    " ON E.SALARY > D.BUDGET",
    "SELECT E.EMP_NAME, D.DEPT_NAME FROM EMP E LEFT JOIN DEPT D"
    " ON E.DEPT_ID = D.DEPT_ID AND D.REGION = 'West'",
    "SELECT D.DEPT_NAME, E.EMP_NAME FROM DEPT D LEFT JOIN EMP E"
    " ON D.DEPT_ID = E.DEPT_ID AND E.SALARY > 100 ORDER BY D.DEPT_ID",
    # NULL join keys never match but LEFT rows must survive padded.
    "SELECT E1.EMP_NAME, E2.EMP_NAME FROM EMP E1 LEFT JOIN EMP E2"
    " ON E1.SALARY = E2.SALARY AND E1.EMP_ID <> E2.EMP_ID",
    "SELECT DEPT_ID, COUNT(*), SUM(SALARY), AVG(SALARY), MIN(HIRED),"
    " MAX(EMP_NAME) FROM EMP GROUP BY DEPT_ID ORDER BY DEPT_ID",
    "SELECT ACTIVE, COUNT(DISTINCT DEPT_ID) FROM EMP GROUP BY ACTIVE",
    # Grouping on an expression and on a nullable column.
    "SELECT SALARY, COUNT(*) FROM EMP GROUP BY SALARY ORDER BY COUNT(*)",
    "SELECT DEPT_ID, ACTIVE, COUNT(*) FROM EMP GROUP BY DEPT_ID, ACTIVE"
    " HAVING COUNT(*) > 1",
    "SELECT COUNT(*) FROM EMP WHERE SALARY > 1000",
    "SELECT DISTINCT REGION FROM DEPT ORDER BY REGION",
    "SELECT DISTINCT DEPT_ID, ACTIVE FROM EMP ORDER BY 1 DESC, 2",
    # Correlated subqueries force the executor's row fallback.
    "SELECT EMP_NAME FROM EMP E WHERE SALARY > (SELECT AVG(SALARY)"
    " FROM EMP WHERE DEPT_ID = E.DEPT_ID)",
    "SELECT EMP_NAME FROM EMP E WHERE EXISTS (SELECT 1 FROM DEPT D"
    " WHERE D.DEPT_ID = E.DEPT_ID AND D.REGION = 'West')",
    "SELECT EMP_NAME FROM EMP WHERE DEPT_ID IN (SELECT DEPT_ID FROM DEPT"
    " WHERE BUDGET > 500)",
    "SELECT EMP_NAME FROM EMP WHERE DEPT_ID NOT IN (SELECT DEPT_ID"
    " FROM DEPT WHERE REGION = 'East')",
    # Window functions always run on the row path.
    "SELECT EMP_NAME, RANK() OVER (PARTITION BY DEPT_ID ORDER BY SALARY"
    " DESC) FROM EMP",
    "SELECT EMP_NAME, SUM(SALARY) OVER (ORDER BY EMP_ID) FROM EMP",
    "SELECT EMP_ID FROM EMP WHERE ACTIVE UNION SELECT DEPT_ID FROM DEPT",
    "SELECT DEPT_ID FROM EMP INTERSECT SELECT DEPT_ID FROM DEPT",
    "SELECT DEPT_ID FROM DEPT EXCEPT SELECT DEPT_ID FROM EMP WHERE ACTIVE",
    "SELECT EMP_ID FROM EMP UNION ALL SELECT EMP_ID FROM EMP"
    " ORDER BY EMP_ID LIMIT 4 OFFSET 2",
    "WITH west AS (SELECT DEPT_ID FROM DEPT WHERE REGION = 'West'),"
    " staff AS (SELECT * FROM EMP WHERE DEPT_ID IN (SELECT DEPT_ID"
    " FROM west)) SELECT COUNT(*) FROM staff",
    "SELECT T.DEPT_ID, T.TOTAL FROM (SELECT DEPT_ID, SUM(SALARY) AS TOTAL"
    " FROM EMP GROUP BY DEPT_ID) T WHERE T.TOTAL > 150",
    # Constant folding and pushdown targets: the rewrite must not change
    # results even when predicates are partially constant.
    "SELECT EMP_NAME FROM EMP WHERE 1 = 1 AND SALARY > 40 + 50",
    "SELECT EMP_NAME FROM EMP WHERE 1 = 0 OR DEPT_ID = 1",
    "SELECT UPPER(EMP_NAME), LENGTH(EMP_NAME) FROM EMP"
    " WHERE LOWER(EMP_NAME) LIKE 'a%'",
    "SELECT EMP_NAME, CASE WHEN SALARY IS NULL THEN 'unknown'"
    " WHEN SALARY > 100 THEN 'high' ELSE 'low' END FROM EMP",
    "SELECT EMP_NAME, HIRED FROM EMP WHERE HIRED >= '2020-01-01'"
    " ORDER BY HIRED",
]


def _read_corpus_sql(path):
    lines = path.read_text().splitlines()
    return "\n".join(
        line for line in lines if not line.lstrip().startswith("--")
    ).strip()


def _outcome(make_engine, database, sql):
    """Run ``sql`` and normalise to a comparable outcome tuple."""
    try:
        result = make_engine(database).execute(sql)
    except (SqlError, ExecutionError) as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", list(result.columns), result.comparable())


def assert_equivalent(database, sql):
    columnar = _outcome(Executor, database, sql)
    reference = _outcome(ReferenceExecutor, database, sql)
    assert columnar == reference, (
        f"engines disagree on {sql!r}:\n"
        f"  columnar:  {columnar!r}\n  reference: {reference!r}"
    )
    return columnar


class TestCorpusEquivalence:
    """Every corpus statement — valid or not — behaves identically."""

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
    )
    def test_corpus_statement(self, demo_db, path):
        sql = _read_corpus_sql(path)
        assert sql, f"{path.name} has no SQL after stripping comments"
        assert_equivalent(demo_db, sql)

    def test_corpus_is_nonempty(self):
        assert len(CORPUS_FILES) >= 19


class TestStressEquivalence:
    """Handwritten queries aimed at each columnar fast path."""

    @pytest.mark.parametrize("sql", STRESS_QUERIES)
    def test_stress_query(self, demo_db, sql):
        outcome = assert_equivalent(demo_db, sql)
        # Stress queries are all valid SQL; a silent parse/exec error on
        # both sides would make the equivalence vacuous.
        assert outcome[0] == "ok", f"stress query failed: {outcome!r}"


class TestWorkloadEquivalence:
    """Every gold and training-log query from the table1 workload."""

    def test_gold_queries_agree(self, experiment_context):
        workload = experiment_context.workload
        databases = {
            name: profile.database
            for name, profile in experiment_context.profiles.items()
        }
        checked = 0
        for question in workload.questions:
            outcome = assert_equivalent(
                databases[question.database], question.gold_sql
            )
            assert outcome[0] == "ok", (
                f"gold SQL for {question.question_id} failed: {outcome!r}"
            )
            checked += 1
        assert checked >= 100

    def test_training_log_queries_agree(self, experiment_context):
        workload = experiment_context.workload
        databases = {
            name: profile.database
            for name, profile in experiment_context.profiles.items()
        }
        checked = 0
        for db_name, logged_queries in workload.training_logs.items():
            for logged in logged_queries:
                assert_equivalent(databases[db_name], logged.sql)
                checked += 1
        assert checked >= 20


class TestComparableContract:
    """``Result.comparable()`` output is unchanged by the DSU rewrite."""

    def test_matches_naive_key_sort(self):
        rows = [
            (2, "b", None),
            (1, "a", 3.14159265),
            (None, "a", 1.0),
            (1, None, True),
            (2, "a", datetime.date(2020, 1, 1)),
        ]
        result = Result(["X", "Y", "Z"], rows)
        normalised = [
            tuple(comparable_cell(value) for value in row) for row in rows
        ]
        naive = sorted(
            normalised, key=lambda row: tuple(map(_stable_key, row))
        )
        assert result.comparable() == naive

    def test_duplicates_and_float_rounding_survive(self):
        rows = [(1.0000001, "x"), (1.0000002, "x"), (None, "y")]
        result = Result(["A", "B"], rows)
        comparable = result.comparable()
        # comparable_cell rounds floats to 6 places: both rows collapse to
        # the same normalised tuple and the multiset keeps both copies.
        assert comparable.count((1.0, "x")) == 2
        assert len(comparable) == 3

"""Budget-parametrized pipeline tier tests."""

import pytest

from repro.pipeline.config import DEFAULT_CONFIG
from repro.pipeline.tuning import (
    BALANCED,
    ECONOMY,
    QUALITY,
    TIERS,
    configure_for_budget,
    estimate_cost,
    estimate_latency,
)


class TestEstimates:
    def test_cost_positive_and_ordered(self):
        costs = [tier.predicted_cost_usd for tier in TIERS]
        assert all(cost > 0 for cost in costs)
        assert costs == sorted(costs, reverse=True)

    def test_latency_ordered(self):
        latencies = [tier.predicted_latency_ms for tier in TIERS]
        assert latencies == sorted(latencies, reverse=True)

    def test_disabling_operators_reduces_cost(self):
        from dataclasses import replace

        slim = replace(
            DEFAULT_CONFIG,
            use_reformulation=False,
            use_intent_classification=False,
            use_schema_linking=False,
            max_retries=0,
        )
        assert estimate_cost(slim) < estimate_cost(DEFAULT_CONFIG)
        assert estimate_latency(slim) < estimate_latency(DEFAULT_CONFIG)

    def test_context_budget_scales_generation_cost(self):
        from dataclasses import replace

        big = replace(DEFAULT_CONFIG, context_budget_tokens=4000)
        assert estimate_cost(big) > estimate_cost(DEFAULT_CONFIG)


class TestBudgetSelection:
    def test_no_budget_picks_quality(self):
        assert configure_for_budget() is QUALITY

    def test_cost_budget_picks_cheaper_tier(self):
        threshold = (
            QUALITY.predicted_cost_usd + BALANCED.predicted_cost_usd
        ) / 2
        assert configure_for_budget(max_cost_usd=threshold) is BALANCED

    def test_latency_budget(self):
        threshold = (
            BALANCED.predicted_latency_ms + ECONOMY.predicted_latency_ms
        ) / 2
        assert configure_for_budget(max_latency_ms=threshold) is ECONOMY

    def test_unsatisfiable_budget_returns_economy(self):
        tier = configure_for_budget(max_cost_usd=1e-9)
        assert tier is ECONOMY

    def test_both_constraints(self):
        tier = configure_for_budget(
            max_cost_usd=QUALITY.predicted_cost_usd + 1,
            max_latency_ms=QUALITY.predicted_latency_ms + 1,
        )
        assert tier is QUALITY


class TestTierConfigs:
    def test_economy_is_single_shot(self):
        assert ECONOMY.config.candidate_count == 1
        assert ECONOMY.config.max_retries == 0

    def test_tiers_generate(self, experiment_context):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        for tier in TIERS:
            pipeline = GenEditPipeline(
                profile.database, knowledge, config=tier.config
            )
            result = pipeline.generate("What is the total revenue?")
            assert result.sql

    def test_economy_measured_cheaper(self, experiment_context):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        question = "What is the total revenue in Canada?"
        costs = {}
        for tier in (QUALITY, ECONOMY):
            pipeline = GenEditPipeline(
                profile.database, knowledge, config=tier.config
            )
            costs[tier.name] = pipeline.generate(question).cost_usd
        assert costs["economy"] < costs["quality"]

"""Tests for the live introspection plane (DESIGN.md §6i): W3C trace
context propagation, the /metrics and /debug endpoints, the failure
flight recorder, header validation, trace tailing, and the loadgen
slowest-request report."""

from __future__ import annotations

import http.client
import importlib.util
import json
import logging
import os
import threading

import pytest

from repro.obs import write_trace
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.render import follow_trace
from repro.obs.tracing import (
    Tracer,
    current_trace_id,
    format_traceparent,
    mint_trace_id,
    parse_traceparent,
    use_trace_context,
    w3c_span_id,
)
from repro.serve import ServeApp, ServerThread
from repro.serve.loadgen import summarize
from repro.serve.middleware import (
    RequestLog,
    TraceStore,
    request_id_from_headers,
    trace_context_from_headers,
)

_CHECKER_PATH = os.path.join(
    os.path.dirname(__file__), "..", "scripts", "check_promtext.py"
)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_promtext", _CHECKER_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


VALID_TRACEPARENT = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
VALID_TRACE_ID = "ab" * 16


# -- W3C trace context --------------------------------------------------------


class TestTraceparent:
    def test_valid_header_parses(self):
        assert parse_traceparent(VALID_TRACEPARENT) == (
            VALID_TRACE_ID, "cd" * 8
        )

    def test_surrounding_whitespace_tolerated(self):
        assert parse_traceparent(f"  {VALID_TRACEPARENT} ") is not None

    @pytest.mark.parametrize("header", [
        "",
        "garbage",
        "01-" + "ab" * 16 + "-" + "cd" * 8 + "-01",   # unknown version
        "00-" + "AB" * 16 + "-" + "cd" * 8 + "-01",   # uppercase hex
        "00-" + "ab" * 15 + "-" + "cd" * 8 + "-01",   # short trace id
        "00-" + "ab" * 16 + "-" + "cd" * 7 + "-01",   # short span id
        "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",   # all-zero trace id
        "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",   # all-zero span id
        "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01-x",  # trailing junk
        None,
        42,
    ])
    def test_malformed_headers_rejected(self, header):
        assert parse_traceparent(header) is None

    def test_format_round_trips(self):
        trace_id = mint_trace_id()
        span_id = w3c_span_id()
        header = format_traceparent(trace_id, span_id)
        assert parse_traceparent(header) == (trace_id, span_id)

    def test_mint_trace_id_shape_and_uniqueness(self):
        ids = {mint_trace_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 32 and parse_traceparent(
            format_traceparent(i, w3c_span_id())
        ) for i in ids)

    def test_w3c_span_id_deterministic_from_seed(self):
        assert w3c_span_id("req-1") == w3c_span_id("req-1")
        assert w3c_span_id("req-1") != w3c_span_id("req-2")
        assert len(w3c_span_id("req-1")) == 16


class TestTraceContext:
    def test_ambient_context_nests_and_restores(self):
        assert current_trace_id() == ""
        with use_trace_context("aa" * 16):
            assert current_trace_id() == "aa" * 16
            with use_trace_context("bb" * 16):
                assert current_trace_id() == "bb" * 16
            assert current_trace_id() == "aa" * 16
        assert current_trace_id() == ""

    def test_context_is_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_trace_id()

        with use_trace_context("aa" * 16):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] == ""

    def test_spans_inherit_ambient_trace_id(self):
        tracer = Tracer()
        with use_trace_context(VALID_TRACE_ID):
            with tracer.span("inside"):
                pass
        with tracer.span("outside"):
            pass
        records = {r["name"]: r for r in tracer.to_records()}
        assert records["inside"]["trace_id"] == VALID_TRACE_ID
        # Batch-path spans carry no trace_id key at all — exported
        # records stay byte-identical to the pre-introspection schema.
        assert "trace_id" not in records["outside"]

    def test_tracer_max_finished_bounds_retention(self):
        tracer = Tracer(max_finished=5)
        for index in range(20):
            with tracer.span(f"s{index}"):
                pass
        spans = tracer.finished_spans()
        assert len(spans) == 5
        assert spans[-1].name == "s19"

    def test_overlapping_spans_do_not_pop_each_other(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer_span = outer.__enter__()
        inner_span = inner.__enter__()
        # Exit out of order (interleaved async dispatches on one
        # thread): each exit must remove its own span only.
        outer.__exit__(None, None, None)
        from repro.obs.tracing import current_span

        assert current_span() is inner_span
        inner.__exit__(None, None, None)
        assert current_span() is None
        assert outer_span.parent_id is None
        assert inner_span.parent_id == outer_span.span_id


# -- inbound header validation ------------------------------------------------


class TestHeaderValidation:
    def test_valid_request_id_honoured(self):
        assert request_id_from_headers(
            {"x-request-id": "req-abc_1:2/3@x#y+z."}
        ) == "req-abc_1:2/3@x#y+z."

    @pytest.mark.parametrize("bad", [
        "has space",
        "tab\there",
        "new\nline",
        "quote\"inject",
        "x" * 129,
        "emoji-☃",
        "",
        "   ",
    ])
    def test_malformed_request_id_replaced(self, bad):
        minted = request_id_from_headers({"x-request-id": bad})
        assert minted != bad.strip()
        assert minted.startswith("req-")

    def test_valid_traceparent_honoured(self):
        trace_id, parent, echo = trace_context_from_headers(
            {"traceparent": VALID_TRACEPARENT}, "req-1"
        )
        assert trace_id == VALID_TRACE_ID
        assert parent == "cd" * 8
        assert echo == format_traceparent(
            VALID_TRACE_ID, w3c_span_id("req-1")
        )

    def test_malformed_traceparent_minted_not_echoed(self):
        bad = "00-XYZ-123-01"
        trace_id, parent, echo = trace_context_from_headers(
            {"traceparent": bad}, "req-1"
        )
        assert parent == ""
        assert len(trace_id) == 32
        assert bad not in echo
        assert parse_traceparent(echo) is not None

    def test_absent_traceparent_minted(self):
        trace_id, _, echo = trace_context_from_headers({}, "req-1")
        assert parse_traceparent(echo)[0] == trace_id


# -- the flight recorder ------------------------------------------------------


class TestFlightRecorder:
    def test_classification_priority(self):
        flight = FlightRecorder(slow_ms=100.0, sample_every=0)
        assert flight.classify(500, False, 1.0) == "failed"
        assert flight.classify(200, True, 1.0) == "failed"
        # failed wins over slow even when both apply
        assert flight.classify(503, False, 500.0) == "failed"
        assert flight.classify(200, False, 500.0) == "slow"
        assert flight.classify(200, False, 1.0) is None

    def test_sampling_cadence(self):
        flight = FlightRecorder(slow_ms=1e9, sample_every=3)
        classes = [
            flight.classify(200, False, 1.0) for _ in range(7)
        ]
        assert classes == [
            "sampled", None, None, "sampled", None, None, "sampled",
        ]

    def test_sample_every_one_keeps_everything(self):
        flight = FlightRecorder(slow_ms=1e9, sample_every=1)
        assert all(
            flight.classify(200, False, 1.0) == "sampled"
            for _ in range(5)
        )

    def test_retention_policy_failed_beats_slow_beats_sampled(self):
        flight = FlightRecorder(capacity=4, slow_ms=100.0,
                                sample_every=1)
        for index in range(4):
            flight.record("sampled", {"id": f"sampled-{index}"})
        flight.record("slow", {"id": "slow-0"})
        flight.record("failed", {"id": "failed-0"})
        # Two sampled entries evicted (oldest first), slow and failed
        # retained alongside the two newest sampled.
        kept = {entry["id"] for entry in flight.entries()}
        assert kept == {"sampled-2", "sampled-3", "slow-0", "failed-0"}
        # More failures evict sampled, then slow — never older failures
        # while lower classes remain.
        for index in range(1, 4):
            flight.record("failed", {"id": f"failed-{index}"})
        kept = {entry["id"] for entry in flight.entries()}
        assert kept == {"failed-0", "failed-1", "failed-2", "failed-3"}
        # Only when everything retained is failed does the oldest
        # failure go.
        flight.record("failed", {"id": "failed-4"})
        kept = {entry["id"] for entry in flight.entries()}
        assert kept == {"failed-1", "failed-2", "failed-3", "failed-4"}

    def test_entries_newest_first_and_class_filter(self):
        flight = FlightRecorder(capacity=8)
        flight.record("sampled", {"id": "a"})
        flight.record("failed", {"id": "b"})
        flight.record("sampled", {"id": "c"})
        ids = [entry["id"] for entry in flight.entries()]
        assert ids == ["c", "b", "a"]
        assert [e["id"] for e in flight.entries(klass="failed")] == ["b"]
        assert [e["id"] for e in flight.entries(limit=1)] == ["c"]

    def test_observe_lazy_entry_and_stats(self):
        built = []

        def entry():
            built.append(1)
            return {"id": "x"}

        flight = FlightRecorder(capacity=2, slow_ms=1e9, sample_every=0)
        assert flight.observe(200, False, 1.0, entry) is None
        assert not built          # boring request: entry never built
        assert flight.observe(500, False, 1.0, entry) == "failed"
        assert built == [1]
        stats = flight.stats()
        assert stats["seen"] == 2
        assert stats["retained"]["failed"] == 1
        assert stats["recorded"]["failed"] == 1
        assert stats["evicted"] == 0


# -- bounded rings ------------------------------------------------------------


class TestRequestLogAndTraceStore:
    def test_request_log_bounded_newest_first(self):
        log = RequestLog(capacity=3)
        for index in range(5):
            log.add({"request_id": f"r{index}"})
        assert len(log) == 3
        assert [e["request_id"] for e in log.entries()] == [
            "r4", "r3", "r2",
        ]
        assert [e["request_id"] for e in log.entries(limit=1)] == ["r4"]

    def test_trace_store_bounds_traces_and_spans(self):
        store = TraceStore(capacity=2, max_spans=3)
        for index in range(4):
            store.add(f"t{index}", [{"span_id": f"s{index}"}])
        assert len(store) == 2
        assert store.get("t0") is None
        assert store.get("t3") == [{"span_id": "s3"}]
        store.add("t9", [{"span_id": f"s{i}"} for i in range(10)])
        assert [s["span_id"] for s in store.get("t9")] == [
            "s7", "s8", "s9",
        ]

    def test_trace_store_ignores_empty(self):
        store = TraceStore()
        store.add("", [{"span_id": "s1"}])
        store.add("t1", [])
        assert len(store) == 0


# -- follow mode --------------------------------------------------------------


class TestFollowTrace:
    def test_follow_prints_new_spans_once(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        with use_trace_context(VALID_TRACE_ID):
            with tracer.span("first"):
                pass
        write_trace(path, tracer.to_records())
        lines = []

        slept = []

        def sleep(_seconds):
            # Between the first two polls the exporter rewrites the file
            # with one more span — follow must print only the new one,
            # and the unchanged file on later polls must print nothing.
            if not slept:
                with tracer.span("second"):
                    pass
                write_trace(path, tracer.to_records())
            slept.append(1)

        printed = follow_trace(
            path, out=lines.append, max_polls=3, sleep=sleep
        )
        assert printed == 2
        assert lines[0].startswith("following ")
        assert sum("first " in line for line in lines) == 1
        assert sum("second " in line for line in lines) == 1
        assert any(f"trace_id={VALID_TRACE_ID}" in line for line in lines)

    def test_follow_survives_missing_file(self, tmp_path):
        path = str(tmp_path / "missing.jsonl")
        lines = []
        assert follow_trace(
            path, out=lines.append, max_polls=2, sleep=lambda _s: None
        ) == 0
        assert lines == []


# -- loadgen slowest-request report -------------------------------------------


class TestLoadgenSlowest:
    def test_slowest_names_request_and_trace_ids(self):
        echo = format_traceparent(VALID_TRACE_ID, "cd" * 8)
        samples = [
            (200, 5.0, {"correct": True},
             {"X-Request-Id": "req-fast", "Traceparent": echo}),
            (200, 50.0, {"correct": True},
             {"X-Request-Id": "req-slow", "Traceparent": echo}),
        ]
        report = summarize(samples, 1.0)
        assert report["slowest"]["request_id"] == "req-slow"
        assert report["slowest"]["trace_id"] == VALID_TRACE_ID
        assert report["slowest"]["latency_ms"] == 50.0

    def test_three_tuple_samples_still_summarize(self):
        report = summarize([(200, 5.0, {"correct": True})], 1.0)
        assert report["requests"] == 1
        assert report["slowest"]["request_id"] == ""
        assert report["slowest"]["trace_id"] == ""


# -- end-to-end: the debug surface over HTTP ----------------------------------


def _make_app(experiment_context, **kwargs):
    defaults = dict(
        databases=["sports_holdings"],
        workers=2,
        queue_depth=4,
        profiles=experiment_context.profiles,
        workload=experiment_context.workload,
        knowledge_sets=experiment_context.knowledge_sets,
        registry=MetricsRegistry(),
        sample_every=1,
    )
    defaults.update(kwargs)
    return ServeApp(**defaults)


@pytest.fixture(scope="module")
def debug_server(experiment_context):
    app = _make_app(experiment_context)
    server = ServerThread(app).start()
    yield server
    server.stop()


def _request(server, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                      timeout=60)
    try:
        body = None
        merged = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload)
            merged["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=merged)
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        parsed = json.loads(raw) if "json" in content_type else \
            raw.decode("utf-8")
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


class TestDebugEndpoints:
    def test_traceparent_round_trip_to_span_tree(self, debug_server):
        trace_id = mint_trace_id()
        sent = format_traceparent(trace_id, w3c_span_id())
        status, headers, body = _request(
            debug_server, "POST", "/ask",
            {"question": "How many teams are there?",
             "tenant": "sports_holdings"},
            headers={"traceparent": sent, "X-Request-Id": "e2e-trace-1"},
        )
        assert status == 200
        echoed = parse_traceparent(headers["traceparent"])
        assert echoed is not None and echoed[0] == trace_id
        status, _, trace = _request(
            debug_server, "GET", f"/debug/traces/{trace_id}"
        )
        assert status == 200
        names = {span["name"] for span in trace["spans"]}
        # The serve root (event loop) and the pipeline spans (worker
        # thread) share one trace id — the propagation the tentpole is
        # about.
        assert "serve.request" in names
        assert "generate" in names
        assert all(
            span.get("trace_id") == trace_id for span in trace["spans"]
        )
        assert "serve.request" in trace["tree"]

    def test_malformed_traceparent_gets_minted_trace(self, debug_server):
        status, headers, _ = _request(
            debug_server, "GET", "/healthz",
            headers={"traceparent": "00-bogus-bogus-01"},
        )
        assert status == 200
        parsed = parse_traceparent(headers["traceparent"])
        assert parsed is not None
        assert parsed[0] != "bogus"

    def test_unknown_trace_is_404(self, debug_server):
        status, _, body = _request(
            debug_server, "GET", f"/debug/traces/{'ee' * 16}"
        )
        assert status == 404

    def test_metrics_scrape_passes_promtext_linter(self, debug_server):
        _request(debug_server, "GET", "/healthz")
        status, headers, text = _request(debug_server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert isinstance(text, str)
        assert "serve_requests" in text
        checker = _load_checker()
        assert checker.lint_promtext(text, "metrics") == []

    def test_debug_requests_ring(self, debug_server):
        _request(debug_server, "GET", "/healthz",
                 headers={"X-Request-Id": "ring-probe-1"})
        status, _, body = _request(
            debug_server, "GET", "/debug/requests"
        )
        assert status == 200
        entries = body["requests"]
        assert entries, "request ring empty"
        probe = next(
            e for e in entries if e["request_id"] == "ring-probe-1"
        )
        assert probe["route"] == "healthz"
        assert probe["status"] == 200
        assert len(probe["trace_id"]) == 32
        assert probe["latency_ms"] >= 0.0

    def test_failed_ask_reconstructable_from_debug_errors(
            self, debug_server):
        app = debug_server.server.app
        pipeline = app._tenants["sports_holdings"].pipeline
        operator = next(
            op for op in pipeline.operators
            if op.name == "generate_sql"
        )

        def boom(context):
            raise RuntimeError("introspection test failure")

        operator.run = boom
        try:
            status, _, body = _request(
                debug_server, "POST", "/ask",
                {"question": "How many teams are there?",
                 "tenant": "sports_holdings"},
                headers={"X-Request-Id": "e2e-fail-1"},
            )
        finally:
            del operator.run
        assert status == 200 and body["success"] is False
        status, _, errors = _request(
            debug_server, "GET", "/debug/errors"
        )
        assert status == 200
        entry = next(
            e for e in errors["errors"]
            if e["request_id"] == "e2e-fail-1"
        )
        assert entry["class"] == "failed"
        assert entry["tenant"] == "sports_holdings"
        detail = entry["detail"]
        # Postmortem without re-running: operator trail, attribution,
        # diagnostics, the error text.
        assert detail["failed_operator"] == "generate_sql"
        assert "introspection test failure" in detail["error"]
        trail = [d["operator"] for d in detail["operator_digests"]]
        assert "link_schema" in trail       # operators before the crash
        assert all(d["digest"] for d in detail["operator_digests"])
        assert detail["events"]
        assert errors["stats"]["retained"]["failed"] >= 1

    def test_healthz_per_tenant_detail(self, debug_server):
        status, _, body = _request(debug_server, "GET", "/healthz")
        assert status == 200
        detail = body["tenant_detail"]["sports_holdings"]
        assert detail["requests"] >= 1
        assert detail["failures"] >= 1      # the forced failure above
        assert body["flight"]["capacity"] == 64

    def test_access_log_is_json(self, debug_server, caplog):
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            _request(debug_server, "GET", "/healthz",
                     headers={"X-Request-Id": "log-probe-1"})
        records = [
            json.loads(record.getMessage())
            for record in caplog.records
            if record.name == "repro.serve"
        ]
        probe = next(
            r for r in records if r["request_id"] == "log-probe-1"
        )
        assert probe["event"] == "request"
        assert probe["route"] == "healthz"
        assert probe["status"] == 200
        assert len(probe["trace_id"]) == 32
        assert "ts" in probe and "latency_ms" in probe


class TestLedgerTraceRoundTrip:
    def test_trace_ids_recorded_in_run_meta_not_record(
            self, experiment_context, tmp_path):
        from repro.obs.ledger import RunLedger

        app = _make_app(
            experiment_context, ledger_dir=str(tmp_path)
        )
        server = ServerThread(app).start()
        trace_id = mint_trace_id()
        try:
            question = experiment_context.workload.for_database(
                "sports_holdings"
            )[0]
            status, _, _ = _request(
                server, "POST", "/ask",
                {"question": question.question,
                 "tenant": "sports_holdings",
                 "question_id": question.question_id,
                 "gold_sql": question.gold_sql,
                 "difficulty": question.difficulty},
                headers={
                    "traceparent": format_traceparent(
                        trace_id, w3c_span_id()
                    ),
                    "X-Request-Id": "ledger-trace-1",
                },
            )
            assert status == 200
        finally:
            server.stop()
        ledger = RunLedger(str(tmp_path))
        run_id = app.last_run_id
        assert run_id
        meta = ledger.read_meta(run_id)
        key = f"sports_holdings/{question.question_id}"
        assert meta["requests"][key] == {
            "request_id": "ledger-trace-1",
            "trace_id": trace_id,
        }
        # The content-addressed record body must stay id-free: ids live
        # in volatile meta only, preserving sweep byte-equivalence.
        record = ledger.read_record(run_id)
        assert trace_id not in json.dumps(record)
        assert "ledger-trace-1" not in json.dumps(record)

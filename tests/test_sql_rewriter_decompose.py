"""CTE rewriter and decomposer tests (§3.2.1 behaviour)."""

import pytest

from repro.sql import ast_nodes as ast
from repro.sql.decompose import (
    KIND_FROM,
    KIND_GROUP_BY,
    KIND_ORDER_BY,
    KIND_PROJECTION,
    KIND_QUERY,
    KIND_SELECT_ITEM,
    KIND_SUBQUERY,
    KIND_WHERE,
    KIND_WINDOW,
    decompose,
)
from repro.sql.parser import parse
from repro.sql.printer import to_sql
from repro.sql.rewriter import to_cte_form


class TestRewriter:
    def test_derived_table_hoisted(self):
        query = to_cte_form(
            parse("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        )
        assert [cte.name for cte in query.ctes] == ["SUB"]
        assert isinstance(query.body.from_clause, ast.TableRef)
        assert query.body.from_clause.name == "SUB"

    def test_alias_preserved_after_hoist(self):
        query = to_cte_form(
            parse("SELECT sub.x FROM (SELECT a AS x FROM t) AS sub")
        )
        assert query.body.from_clause.alias == "sub"

    def test_existing_ctes_kept(self):
        query = to_cte_form(parse("WITH c AS (SELECT 1) SELECT * FROM c"))
        assert [cte.name for cte in query.ctes] == ["C"]

    def test_nested_with_flattened(self):
        query = to_cte_form(
            parse(
                "WITH outer_cte AS (WITH inner_cte AS (SELECT 1 AS x) "
                "SELECT x FROM inner_cte) SELECT * FROM outer_cte"
            )
        )
        names = [cte.name for cte in query.ctes]
        assert names == ["INNER_CTE", "OUTER_CTE"]
        # outer references the hoisted inner
        assert not query.ctes[1].query.ctes

    def test_name_collision_renamed(self):
        query = to_cte_form(
            parse(
                "WITH sub AS (SELECT 1 AS x) "
                "SELECT * FROM (SELECT 2 AS y) AS sub"
            )
        )
        names = [cte.name for cte in query.ctes]
        assert len(set(names)) == 2
        assert "SUB" in names and "SUB_2" in names

    def test_join_of_two_derived_tables(self):
        query = to_cte_form(
            parse(
                "SELECT a.x, b.y FROM (SELECT 1 AS x) AS a "
                "JOIN (SELECT 2 AS y) AS b ON a.x = b.y"
            )
        )
        assert len(query.ctes) == 2

    def test_rewrite_does_not_mutate_input(self):
        original = parse("SELECT x FROM (SELECT 1 AS x) AS s")
        before = to_sql(original)
        to_cte_form(original)
        assert to_sql(original) == before

    def test_rewritten_query_executes_identically(self, demo_db):
        from repro.engine import Executor

        sql = (
            "SELECT d.DEPT_NAME, t.total FROM DEPT d JOIN "
            "(SELECT DEPT_ID, SUM(SALARY) AS total FROM EMP "
            "GROUP BY DEPT_ID) t ON d.DEPT_ID = t.DEPT_ID "
            "ORDER BY t.total DESC"
        )
        executor = Executor(demo_db)
        original = executor.execute(sql)
        rewritten = executor.execute(to_sql(to_cte_form(parse(sql))))
        assert rewritten.comparable() == original.comparable()


class TestDecompose:
    SQL = (
        "WITH agg AS (SELECT DEPT_ID, SUM(SALARY) AS total FROM EMP "
        "WHERE ACTIVE = TRUE GROUP BY DEPT_ID) "
        "SELECT DEPT_ID, total FROM agg ORDER BY total DESC LIMIT 3"
    )

    def test_unit_kinds_present(self):
        kinds = {unit.kind for unit in decompose(parse(self.SQL))}
        assert {
            KIND_QUERY, KIND_SUBQUERY, KIND_PROJECTION, KIND_FROM,
            KIND_WHERE, KIND_GROUP_BY, KIND_ORDER_BY,
        } <= kinds

    def test_query_unit_first(self):
        units = decompose(parse(self.SQL))
        assert units[0].kind == KIND_QUERY

    def test_cte_units_tagged_with_name(self):
        units = decompose(parse(self.SQL))
        cte_units = [unit for unit in units if unit.cte_name == "AGG"]
        assert cte_units

    def test_final_select_units_have_no_cte_name(self):
        units = decompose(parse(self.SQL))
        final = [
            unit for unit in units
            if unit.cte_name is None and unit.kind == KIND_ORDER_BY
        ]
        assert final and "LIMIT 3" in final[0].sql

    def test_pseudo_sql_wrapped_in_dots(self):
        unit = decompose(parse(self.SQL))[2]
        assert unit.pseudo_sql.startswith("... ")
        assert unit.pseudo_sql.endswith(" ...")

    def test_tables_and_columns_collected(self):
        units = decompose(parse(self.SQL))
        from_unit = next(
            unit for unit in units
            if unit.kind == KIND_FROM and unit.cte_name == "AGG"
        )
        assert from_unit.tables == ["EMP"]

    def test_select_item_unit_for_aggregate(self):
        units = decompose(parse(self.SQL))
        items = [unit for unit in units if unit.kind == KIND_SELECT_ITEM]
        assert any("SUM(SALARY)" in unit.sql for unit in items)

    def test_window_unit(self):
        sql = (
            "SELECT a, ROW_NUMBER() OVER (ORDER BY b) AS r FROM t"
        )
        units = decompose(parse(sql))
        assert any(unit.kind == KIND_WINDOW for unit in units)

    def test_derived_table_decomposed_via_cte_form(self):
        sql = "SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) AS s"
        units = decompose(parse(sql))
        assert any(
            unit.kind == KIND_WHERE and unit.cte_name == "S"
            for unit in units
        )

    def test_fragments_are_nonempty(self):
        for unit in decompose(parse(self.SQL)):
            assert unit.sql.strip()


class TestPatternDetection:
    @pytest.mark.parametrize("sql,pattern", [
        ("SUM(CASE WHEN TO_CHAR(M, 'YYYY\"Q\"Q') = '2023Q1' THEN V "
         "ELSE 0 END)", "quarter_pivot"),
        ("SUM(CASE WHEN STATUS = 'returned' THEN 1 ELSE 0 END)",
         "conditional_aggregation"),
        ("CAST(A AS FLOAT) / NULLIF(B, 0)", "safe_ratio"),
        ("ROW_NUMBER() OVER (ORDER BY X DESC)", "topk"),
        ("ROW_NUMBER() OVER (ORDER BY X DESC) AS B, "
         "ROW_NUMBER() OVER (ORDER BY X ASC) AS W", "topk_both_ends"),
        ("ORDER BY total DESC LIMIT 5", "topk"),
        ("CAST(V AS FLOAT) / NULLIF(SUM(V) OVER (), 0)", "share_of_total"),
        ("SELECT a FROM t", ""),
    ])
    def test_detect_pattern(self, sql, pattern):
        from repro.knowledge.decomposition import detect_pattern

        assert detect_pattern(sql) == pattern

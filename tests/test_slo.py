"""SLO engine tests: spec parsing, burn rates, both evaluators, the CLI.

Covers DESIGN.md §6g's error-budget half — the dependency-free YAML
subset loader, :class:`SloSpec` validation, multi-window burn-rate
semantics (breach only when fast AND slow windows burn), ledger and
live-registry evaluation, and ``repro slo``/``repro watch`` exit codes.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.bench.metrics import EvaluationReport, QuestionOutcome
from repro.cli import build_arg_parser
from repro.obs.ledger import RunLedger, build_run_record
from repro.obs.slo import (
    SloSpec,
    SloSpecError,
    any_breach,
    burn_rate,
    evaluate_ledger,
    evaluate_registry,
    evaluate_slo,
    load_slo_specs,
    parse_simple_yaml,
    parse_slo_text,
    render_slo_results,
)

_EXAMPLE_SPEC = os.path.join(
    os.path.dirname(__file__), "..", "examples", "slo.yaml"
)

_YAML_SPEC = """\
# comment at the top
slos:
  - name: ex-rate          # trailing comment
    metric: ex
    objective: 60.0
    windows: [2, 4]
    max_burn_rate: 1.0
  - name: p99-latency
    metric: latency_p99_ms
    objective: 2000
    bound: upper
"""


def make_outcome(question_id="q-1", correct=True, error="", cost=0.01,
                 latency=50.0):
    return QuestionOutcome(
        question_id=question_id,
        difficulty="simple",
        database="demo",
        correct=correct,
        predicted_sql="SELECT 1",
        gold_sql="SELECT 1",
        cost_usd=cost,
        latency_ms=latency,
        error=error,
        degraded=(),
        question_text="How many teams?",
        lint_codes=(),
        operator_digests=(),
        llm_calls=(("generate_sql", "gpt-4o", 100, 10, cost),),
    )


def make_record(outcomes, system="GenEdit", **kwargs):
    report = EvaluationReport(system=system)
    for outcome in outcomes:
        report.add(outcome)
    kwargs.setdefault("kind", "bench")
    kwargs.setdefault("target", "test")
    kwargs.setdefault("seed", 7)
    return build_run_record([report], **kwargs)


def ex_points(values):
    return [(f"run-{index}", value) for index, value in enumerate(values)]


class TestYamlSubset:
    def test_parses_the_spec_shape(self):
        payload = parse_simple_yaml(_YAML_SPEC)
        assert len(payload["slos"]) == 2
        first = payload["slos"][0]
        assert first["name"] == "ex-rate"
        assert first["objective"] == 60.0
        assert first["windows"] == [2, 4]

    def test_scalar_coercion(self):
        payload = parse_simple_yaml(
            "a: 3\nb: 1.5\nc: yes\nd: null\ne: 'quoted'\nf: plain\n"
        )
        assert payload == {
            "a": 3, "b": 1.5, "c": True, "d": None,
            "e": "quoted", "f": "plain",
        }

    def test_rejects_orphan_list_items(self):
        with pytest.raises(SloSpecError, match="outside a list"):
            parse_simple_yaml("  - name: x\n")

    def test_rejects_nesting_it_cannot_represent(self):
        with pytest.raises(SloSpecError, match="outside a '- ' item"):
            parse_simple_yaml("slos:\n    nested: oops\n")


class TestSpecLoading:
    def test_parse_slo_text_accepts_json_and_yaml(self):
        from_yaml = parse_slo_text(_YAML_SPEC)
        from_json = parse_slo_text(json.dumps({"slos": [
            {"name": "ex-rate", "metric": "ex", "objective": 60.0,
             "windows": [2, 4], "max_burn_rate": 1.0},
            {"name": "p99-latency", "metric": "latency_p99_ms",
             "objective": 2000, "bound": "upper"},
        ]}))
        assert [spec.name for spec in from_yaml] \
            == [spec.name for spec in from_json]
        assert from_yaml[0].windows == (2, 4)

    def test_unknown_keys_rejected(self):
        with pytest.raises(SloSpecError, match="unknown key"):
            parse_slo_text(json.dumps({"slos": [
                {"name": "x", "metric": "ex", "objective": 60,
                 "burn": 2},
            ]}))

    def test_missing_required_field_rejected(self):
        with pytest.raises(SloSpecError):
            parse_slo_text(json.dumps({"slos": [{"name": "x"}]}))

    def test_empty_spec_rejected(self):
        with pytest.raises(SloSpecError, match="no SLOs"):
            parse_slo_text(json.dumps({"slos": []}))
        with pytest.raises(SloSpecError, match="no top-level 'slos'"):
            parse_slo_text(json.dumps({"objectives": []}))

    def test_example_spec_loads(self):
        specs = load_slo_specs(_EXAMPLE_SPEC)
        assert [spec.name for spec in specs] == [
            "ex-rate", "p99-latency", "cost-per-question", "error-rate",
        ]
        assert specs[0].lower_bound
        assert not specs[1].lower_bound


class TestSpecValidation:
    def test_bad_bound_raises(self):
        with pytest.raises(SloSpecError, match="bound"):
            SloSpec(name="x", metric="ex", objective=60, bound="sideways")

    def test_bad_windows_raise(self):
        with pytest.raises(SloSpecError, match="windows"):
            SloSpec(name="x", metric="ex", objective=60, windows=(20, 5))
        with pytest.raises(SloSpecError, match="windows"):
            SloSpec(name="x", metric="ex", objective=60, windows=(5,))

    def test_bound_defaults_by_metric(self):
        assert SloSpec(name="x", metric="ex", objective=60).lower_bound
        assert not SloSpec(
            name="x", metric="cost_usd_per_question", objective=0.02
        ).lower_bound

    def test_budget(self):
        assert SloSpec(name="x", metric="ex", objective=60).budget == 0.4
        assert SloSpec(
            name="x", metric="error_rate", objective=0.25
        ).budget == 0.25
        assert SloSpec(
            name="x", metric="latency_p99_ms", objective=2000
        ).budget is None


class TestBurnRate:
    def test_perfect_window_burns_nothing(self):
        spec = SloSpec(name="x", metric="ex", objective=60)
        assert burn_rate(spec, [100.0, 100.0]) == 0.0

    def test_on_budget_burns_exactly_one(self):
        spec = SloSpec(name="x", metric="ex", objective=60)
        assert burn_rate(spec, [60.0, 60.0]) == pytest.approx(1.0)

    def test_zero_budget_burns_infinitely(self):
        spec = SloSpec(name="x", metric="ex", objective=100)
        assert burn_rate(spec, [100.0]) == 0.0
        assert burn_rate(spec, [99.0]) == float("inf")

    def test_non_ratio_metric_has_no_burn(self):
        spec = SloSpec(name="x", metric="latency_p99_ms", objective=2000)
        assert burn_rate(spec, [100.0]) is None


class TestEvaluateSlo:
    def test_no_points_is_no_data_and_ok(self):
        spec = SloSpec(name="x", metric="ex", objective=60)
        result = evaluate_slo(spec, [])
        assert result["status"] == "no data"
        assert result["ok"] is True

    def test_breach_needs_both_windows_burning(self):
        spec = SloSpec(name="x", metric="ex", objective=60,
                       windows=(2, 4), max_burn_rate=1.0)
        # Fast window [40, 40] burns 1.5; slow window mean burn 0.75.
        result = evaluate_slo(spec, ex_points([100, 100, 40, 40]))
        assert result["burn_fast"] == 1.5
        assert result["burn_slow"] == 0.75
        assert result["burning"] is False
        assert result["ok"] is True
        # The point-in-time threshold still records the fast-window miss.
        assert result["threshold_ok"] is False

    def test_sustained_burn_breaches(self):
        spec = SloSpec(name="x", metric="ex", objective=60,
                       windows=(2, 4), max_burn_rate=1.0)
        result = evaluate_slo(spec, ex_points([40, 40, 40, 40]))
        assert result["burning"] is True
        assert result["status"] == "breach"
        assert result["ok"] is False

    def test_non_ratio_metric_breaches_on_threshold(self):
        spec = SloSpec(name="x", metric="latency_p99_ms", objective=2000,
                       windows=(2, 4))
        ok = evaluate_slo(spec, ex_points([1000, 1500]))
        assert ok["status"] == "ok"
        breach = evaluate_slo(spec, ex_points([1000, 2500, 2500]))
        assert breach["status"] == "breach"

    def test_upper_bound_error_rate(self):
        spec = SloSpec(name="x", metric="error_rate", objective=0.40,
                       windows=(2, 4), max_burn_rate=1.0)
        result = evaluate_slo(spec, ex_points([0.5, 0.5, 0.5, 0.5]))
        assert result["status"] == "breach"


class TestEvaluateLedger:
    def _seed(self, tmp_path, fail_last=False):
        ledger = RunLedger(tmp_path / "runs")
        for index in range(3):
            fail = fail_last and index == 2
            ledger.record_run(make_record([
                make_outcome(),
                make_outcome(
                    question_id="q-2", correct=not fail,
                    error="boom" if fail else "",
                ),
            ]))
        return ledger

    def test_healthy_ledger_meets_the_example_slos(self, tmp_path):
        specs = load_slo_specs(_EXAMPLE_SPEC)
        results = evaluate_ledger(specs, self._seed(tmp_path))
        assert not any_breach(results)
        assert all(result["source"] == "ledger" for result in results)
        text = render_slo_results(results)
        assert "all 4 SLO(s) met" in text

    def test_error_rate_is_synthesized_from_ex(self, tmp_path):
        specs = parse_slo_text(json.dumps({"slos": [
            {"name": "errors", "metric": "error_rate", "objective": 0.25,
             "windows": [1, 1], "max_burn_rate": 1.0},
        ]}))
        results = evaluate_ledger(specs, self._seed(tmp_path,
                                                    fail_last=True))
        (result,) = results
        # Last run: 1 of 2 questions failed -> error_rate 0.5 > 0.25.
        assert result["latest"] == 0.5
        assert result["status"] == "breach"
        assert any_breach(results)
        assert "1 breach(es) of 1 SLO(s)" in render_slo_results(results)


class TestEvaluateRegistry:
    SNAPSHOT = {
        "counters": {
            "pipeline.runs": 10,
            "pipeline.failed_runs{category=llm_error}": 1,
            "pipeline.failed_runs{category=timeout}": 1,
        },
        "histograms": {
            "pipeline.generate_ms": {"count": 10, "sum": 900.0,
                                     "p99": 250.0},
            "pipeline.cost_usd": {"count": 10, "sum": 0.1, "p99": 0.02},
        },
    }

    def _specs(self):
        return parse_slo_text(json.dumps({"slos": [
            {"name": "ex", "metric": "ex", "objective": 60},
            {"name": "err", "metric": "error_rate", "objective": 0.40},
            {"name": "p99", "metric": "latency_p99_ms",
             "objective": 2000},
            {"name": "cost", "metric": "cost_usd_per_question",
             "objective": 0.02},
        ]}))

    def test_registry_values_and_no_data(self):
        results = evaluate_registry(self._specs(), self.SNAPSHOT)
        by_name = {result["name"]: result for result in results}
        assert by_name["ex"]["status"] == "no data"
        assert by_name["ex"]["ok"] is True
        assert by_name["err"]["value"] == 0.2
        assert by_name["err"]["status"] == "ok"
        assert by_name["p99"]["value"] == 250.0
        assert by_name["cost"]["value"] == 0.01
        assert not any_breach(results)

    def test_registry_breach(self):
        specs = parse_slo_text(json.dumps({"slos": [
            {"name": "err", "metric": "error_rate", "objective": 0.1},
        ]}))
        results = evaluate_registry(specs, self.SNAPSHOT)
        assert results[0]["status"] == "breach"
        assert any_breach(results)

    def test_empty_snapshot_is_all_no_data(self):
        results = evaluate_registry(self._specs(), {})
        assert all(result["status"] == "no data" for result in results)


def run_cli(argv):
    """Dispatch one CLI invocation, capturing its output buffer."""
    args = build_arg_parser().parse_args(argv)
    buffer = io.StringIO()
    code = args.func(args, out=buffer)
    return code, buffer.getvalue()


class TestSloCli:
    def _seed_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for _ in range(2):
            ledger.record_run(make_record([make_outcome()]))
        return tmp_path / "runs"

    def test_met_slos_exit_zero(self, tmp_path):
        ledger_dir = self._seed_ledger(tmp_path)
        code, out = run_cli(["slo", _EXAMPLE_SPEC, "--ledger-dir",
                             str(ledger_dir)])
        assert code == 0
        assert "all 4 SLO(s) met" in out

    def test_breach_exits_one(self, tmp_path):
        ledger_dir = self._seed_ledger(tmp_path)
        spec = tmp_path / "strict.json"
        spec.write_text(json.dumps({"slos": [
            {"name": "impossible-cost", "metric": "cost_usd_per_question",
             "objective": 0.0000001, "bound": "upper"},
        ]}))
        code, out = run_cli(["slo", str(spec), "--ledger-dir",
                             str(ledger_dir)])
        assert code == 1
        assert "BREACH" in out

    def test_bad_spec_exits_two(self, tmp_path):
        ledger_dir = self._seed_ledger(tmp_path)
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"slos": []}))
        code, out = run_cli(["slo", str(spec), "--ledger-dir",
                             str(ledger_dir)])
        assert code == 2
        assert "error:" in out

    def test_json_output(self, tmp_path):
        ledger_dir = self._seed_ledger(tmp_path)
        code, out = run_cli(["slo", _EXAMPLE_SPEC, "--json",
                             "--ledger-dir", str(ledger_dir)])
        assert code == 0
        assert len(json.loads(out)) == 4

    def test_watch_exit_codes(self, tmp_path):
        ledger_dir = tmp_path / "runs"
        code, _out = run_cli(["watch", "--ledger-dir", str(ledger_dir)])
        assert code == 2
        ledger = RunLedger(ledger_dir)
        for _ in range(2):
            ledger.record_run(make_record([make_outcome()]))
        code, _out = run_cli(["watch", "--ledger-dir", str(ledger_dir)])
        assert code == 0
        ledger.record_run(make_record([
            make_outcome(correct=False, error="boom"),
        ]))
        code, out = run_cli(["watch", "--ledger-dir", str(ledger_dir)])
        assert code == 1
        assert "ALERT [regression] ex drop" in out

    def test_dash_writes_html(self, tmp_path):
        ledger_dir = self._seed_ledger(tmp_path)
        out_path = tmp_path / "dash.html"
        code, out = run_cli(["dash", "--ledger-dir", str(ledger_dir),
                             "--out", str(out_path)])
        assert code == 0
        assert "metric card(s)" in out
        page = out_path.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "ex" in page

"""Scalar function, aggregate, and window implementations."""

import datetime

import pytest

from repro.engine.aggregates import compute_aggregate, is_aggregate_function
from repro.engine.errors import TypeMismatchError, UnknownFunctionError
from repro.engine.functions import call_scalar, is_scalar_function
from repro.engine.window import evaluate_window, is_window_capable


class TestScalarRegistry:
    def test_known_functions(self):
        assert is_scalar_function("NULLIF")
        assert is_scalar_function("to_char")
        assert not is_scalar_function("FROBNICATE")

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            call_scalar("FROBNICATE", [1])

    def test_arity_checked(self):
        with pytest.raises(TypeMismatchError):
            call_scalar("ABS", [1, 2])

    def test_null_short_circuit(self):
        assert call_scalar("ABS", [None]) is None
        assert call_scalar("UPPER", [None]) is None


class TestNullHandling:
    def test_nullif(self):
        assert call_scalar("NULLIF", [5, 5]) is None
        assert call_scalar("NULLIF", [5, 0]) == 5
        assert call_scalar("NULLIF", [None, 0]) is None

    def test_coalesce(self):
        assert call_scalar("COALESCE", [None, None, 3]) == 3
        assert call_scalar("COALESCE", [None, None]) is None

    def test_ifnull(self):
        assert call_scalar("IFNULL", [None, "d"]) == "d"
        assert call_scalar("IFNULL", ["v", "d"]) == "v"

    def test_iif(self):
        assert call_scalar("IIF", [True, 1, 2]) == 1
        assert call_scalar("IIF", [False, 1, 2]) == 2
        assert call_scalar("IIF", [None, 1, 2]) == 2


class TestNumericFunctions:
    def test_abs(self):
        assert call_scalar("ABS", [-4]) == 4

    def test_round(self):
        assert call_scalar("ROUND", [2.567, 2]) == 2.57
        assert call_scalar("ROUND", [2.5]) == 2

    def test_floor_ceil(self):
        assert call_scalar("FLOOR", [2.9]) == 2
        assert call_scalar("CEIL", [2.1]) == 3
        assert call_scalar("CEILING", [2.1]) == 3

    def test_sqrt_negative_is_null(self):
        assert call_scalar("SQRT", [-1]) is None
        assert call_scalar("SQRT", [9]) == 3.0

    def test_power(self):
        assert call_scalar("POWER", [2, 10]) == 1024.0

    def test_non_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            call_scalar("ABS", ["x"])


class TestStringFunctions:
    def test_upper_lower_length_trim(self):
        assert call_scalar("UPPER", ["ab"]) == "AB"
        assert call_scalar("LOWER", ["AB"]) == "ab"
        assert call_scalar("LENGTH", ["abc"]) == 3
        assert call_scalar("TRIM", ["  x "]) == "x"

    def test_substr(self):
        assert call_scalar("SUBSTR", ["hello", 2, 3]) == "ell"
        assert call_scalar("SUBSTR", ["hello", 2]) == "ello"
        assert call_scalar("SUBSTR", ["hello", -3]) == "llo"

    def test_replace_concat_instr(self):
        assert call_scalar("REPLACE", ["aXa", "X", "-"]) == "a-a"
        assert call_scalar("CONCAT", ["a", None, "b"]) == "ab"
        assert call_scalar("INSTR", ["hello", "ll"]) == 3
        assert call_scalar("INSTR", ["hello", "zz"]) == 0


class TestDateFunctions:
    DATE = datetime.date(2023, 5, 17)

    def test_parts(self):
        assert call_scalar("YEAR", [self.DATE]) == 2023
        assert call_scalar("MONTH", [self.DATE]) == 5
        assert call_scalar("DAY", [self.DATE]) == 17
        assert call_scalar("QUARTER", [self.DATE]) == 2

    def test_date_from_text(self):
        assert call_scalar("DATE", ["2023-05-17"]) == self.DATE

    def test_to_char_quarter_mask(self):
        assert call_scalar("TO_CHAR", [self.DATE, 'YYYY"Q"Q']) == "2023Q2"

    def test_to_char_other_masks(self):
        assert call_scalar("TO_CHAR", [self.DATE, "YYYY-MM-DD"]) == "2023-05-17"
        assert call_scalar("TO_CHAR", [self.DATE, "YYYY"]) == "2023"
        assert call_scalar("TO_CHAR", [self.DATE, "MON"]) == "MAY"

    def test_to_char_unterminated_quote_raises(self):
        with pytest.raises(TypeMismatchError):
            call_scalar("TO_CHAR", [self.DATE, 'YYYY"Q'])

    def test_strftime_sqlite_argument_order(self):
        assert call_scalar("STRFTIME", ["%Y", self.DATE]) == "2023"

    def test_date_trunc(self):
        assert call_scalar("DATE_TRUNC", ["quarter", self.DATE]) == (
            datetime.date(2023, 4, 1)
        )
        assert call_scalar("DATE_TRUNC", ["year", self.DATE]) == (
            datetime.date(2023, 1, 1)
        )
        with pytest.raises(TypeMismatchError):
            call_scalar("DATE_TRUNC", ["week", self.DATE])


class TestAggregates:
    def test_registry(self):
        assert is_aggregate_function("sum")
        assert not is_aggregate_function("NULLIF")

    def test_count_star_counts_rows(self):
        assert compute_aggregate("COUNT", [1, None, 3], count_star=True) == 3

    def test_count_skips_nulls(self):
        assert compute_aggregate("COUNT", [1, None, 3]) == 2

    def test_count_distinct(self):
        assert compute_aggregate("COUNT", [1, 1, 2, None], distinct=True) == 2

    def test_sum_avg(self):
        assert compute_aggregate("SUM", [1, 2, None]) == 3
        assert compute_aggregate("AVG", [1, 2, None]) == 1.5

    def test_sum_empty_is_null_total_is_zero(self):
        assert compute_aggregate("SUM", []) is None
        assert compute_aggregate("TOTAL", []) == 0.0

    def test_min_max(self):
        assert compute_aggregate("MIN", [3, 1, None]) == 1
        assert compute_aggregate("MAX", ["a", "c", "b"]) == "c"

    def test_group_concat(self):
        assert compute_aggregate("GROUP_CONCAT", ["a", "b"]) == "a,b"

    def test_sum_non_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            compute_aggregate("SUM", ["x"])

    def test_unknown_aggregate_raises(self):
        with pytest.raises(UnknownFunctionError):
            compute_aggregate("MEDIAN", [1])


class TestWindow:
    def _eval(self, name, order_values, partition=None, args=None, **kw):
        from repro.engine.values import sort_key

        n = len(order_values)
        partitions = partition or [()] * n
        order_keys = [
            (sort_key(value, True, None),) for value in order_values
        ]
        arg_values = args or [[order_values[i]] for i in range(n)]
        return evaluate_window(
            name, list(range(n)), partitions, order_keys, arg_values, **kw
        )

    def test_capability(self):
        assert is_window_capable("ROW_NUMBER")
        assert is_window_capable("SUM")
        assert not is_window_capable("NULLIF")

    def test_row_number(self):
        assert self._eval("ROW_NUMBER", [30, 10, 20]) == [3, 1, 2]

    def test_rank_with_ties(self):
        assert self._eval("RANK", [10, 10, 20]) == [1, 1, 3]

    def test_dense_rank_with_ties(self):
        assert self._eval("DENSE_RANK", [10, 10, 20]) == [1, 1, 2]

    def test_partitioned_row_number(self):
        result = self._eval(
            "ROW_NUMBER", [1, 2, 1, 2], partition=[("a",), ("a",), ("b",), ("b",)]
        )
        assert result == [1, 2, 1, 2]

    def test_window_sum_over_partition(self):
        result = self._eval("SUM", [1, 2, 3])
        assert result == [6, 6, 6]

    def test_ntile(self):
        result = self._eval("NTILE", [1, 2, 3, 4], args=[[2]] * 4)
        assert sorted(result) == [1, 1, 2, 2]

    def test_lag_lead(self):
        lag = self._eval("LAG", [1, 2, 3])
        assert lag == [None, 1, 2]
        lead = self._eval("LEAD", [1, 2, 3])
        assert lead == [2, 3, None]

    def test_lag_with_default(self):
        result = self._eval("LAG", [1, 2], args=[[1, 1, 0], [2, 1, 0]])
        assert result == [0, 1]

    def test_non_window_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            self._eval("NULLIF", [1, 2])

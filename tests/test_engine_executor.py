"""Executor tests: full SQL execution semantics over the demo database."""

import datetime

import pytest

from repro.engine.errors import (
    AmbiguousColumnError,
    ExecutionError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.engine.executor import Executor, execute_sql


def rows(executor, sql):
    return executor.execute(sql).rows


class TestProjection:
    def test_select_columns(self, executor):
        result = executor.execute("SELECT EMP_NAME, SALARY FROM EMP")
        assert result.columns == ["EMP_NAME", "SALARY"]
        assert len(result.rows) == 6

    def test_select_star(self, executor):
        result = executor.execute("SELECT * FROM DEPT")
        assert result.columns == ["DEPT_ID", "DEPT_NAME", "REGION", "BUDGET"]

    def test_qualified_star(self, executor):
        result = executor.execute(
            "SELECT d.* FROM DEPT d JOIN EMP e ON d.DEPT_ID = e.DEPT_ID"
        )
        assert result.columns == ["DEPT_ID", "DEPT_NAME", "REGION", "BUDGET"]

    def test_expression_projection(self, executor):
        result = executor.execute("SELECT SALARY * 2 AS double_pay FROM EMP")
        assert result.columns == ["double_pay"]

    def test_literal_select_without_from(self, executor):
        assert rows(executor, "SELECT 1 + 1") == [(2,)]

    def test_alias_used_as_output_name(self, executor):
        result = executor.execute("SELECT COUNT(*) AS n FROM EMP")
        assert result.columns == ["n"]

    def test_case_insensitive_resolution(self, executor):
        assert len(rows(executor, "select emp_name from emp")) == 6


class TestWhere:
    def test_comparison_filter(self, executor):
        assert len(rows(executor, "SELECT 1 FROM EMP WHERE SALARY > 100")) == 2

    def test_null_comparison_rejects_row(self, executor):
        # Donald has NULL salary: not matched by either side
        low = rows(executor, "SELECT 1 FROM EMP WHERE SALARY < 1000")
        high = rows(executor, "SELECT 1 FROM EMP WHERE SALARY >= 1000")
        assert len(low) + len(high) == 5

    def test_is_null(self, executor):
        result = rows(
            executor, "SELECT EMP_NAME FROM EMP WHERE SALARY IS NULL"
        )
        assert result == [("Donald",)]

    def test_boolean_column_filter(self, executor):
        assert len(rows(executor, "SELECT 1 FROM EMP WHERE ACTIVE")) == 5

    def test_in_list(self, executor):
        result = rows(
            executor,
            "SELECT EMP_NAME FROM EMP WHERE EMP_NAME IN ('Ada', 'Alan')",
        )
        assert {r[0] for r in result} == {"Ada", "Alan"}

    def test_between(self, executor):
        assert len(
            rows(executor, "SELECT 1 FROM EMP WHERE SALARY BETWEEN 90 AND 120")
        ) == 3

    def test_like_case_insensitive(self, executor):
        result = rows(executor, "SELECT EMP_NAME FROM EMP WHERE EMP_NAME LIKE 'a%'")
        assert {r[0] for r in result} == {"Ada", "Alan"}

    def test_date_comparison_with_iso_text(self, executor):
        result = rows(
            executor, "SELECT EMP_NAME FROM EMP WHERE HIRED >= '2022-01-01'"
        )
        assert {r[0] for r in result} == {"Edsger", "Barbara"}


class TestJoins:
    def test_inner_join(self, executor):
        result = rows(
            executor,
            "SELECT e.EMP_NAME, d.DEPT_NAME FROM EMP e JOIN DEPT d "
            "ON e.DEPT_ID = d.DEPT_ID",
        )
        assert len(result) == 6

    def test_left_join_pads_nulls(self, demo_db):
        demo_db.create_table(
            "BONUS",
            [
                __import__("repro.engine", fromlist=["Column"]).Column(
                    "EMP_ID", "INTEGER"
                ),
                __import__("repro.engine", fromlist=["Column"]).Column(
                    "AMOUNT", "FLOAT"
                ),
            ],
            rows=[(1, 10.0)],
        )
        executor = Executor(demo_db)
        result = rows(
            executor,
            "SELECT e.EMP_NAME, b.AMOUNT FROM EMP e LEFT JOIN BONUS b "
            "ON e.EMP_ID = b.EMP_ID ORDER BY e.EMP_ID",
        )
        assert result[0] == ("Ada", 10.0)
        assert all(r[1] is None for r in result[1:])

    def test_right_join(self, executor):
        result = rows(
            executor,
            "SELECT d.DEPT_NAME, e.EMP_NAME FROM EMP e RIGHT JOIN DEPT d "
            "ON e.DEPT_ID = d.DEPT_ID",
        )
        assert len(result) == 6  # every dept has employees

    def test_full_join_unmatched_both_sides(self, demo_db):
        from repro.engine import Column

        demo_db.create_table(
            "OTHER", [Column("X", "INTEGER")], rows=[(99,)]
        )
        executor = Executor(demo_db)
        result = rows(
            executor,
            "SELECT d.DEPT_ID, o.X FROM DEPT d FULL JOIN OTHER o "
            "ON d.DEPT_ID = o.X",
        )
        assert len(result) == 4  # 3 unmatched depts + 1 unmatched other

    def test_cross_join_cardinality(self, executor):
        assert len(rows(executor, "SELECT 1 FROM DEPT CROSS JOIN DEPT d2")) == 9

    def test_duplicate_binding_rejected(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute("SELECT 1 FROM DEPT JOIN DEPT ON 1 = 1")

    def test_ambiguous_column_over_join(self, executor):
        with pytest.raises(AmbiguousColumnError):
            executor.execute(
                "SELECT DEPT_ID FROM EMP JOIN DEPT "
                "ON EMP.DEPT_ID = DEPT.DEPT_ID"
            )


class TestAggregation:
    def test_global_aggregates(self, executor):
        result = rows(
            executor,
            "SELECT COUNT(*), COUNT(SALARY), SUM(SALARY), AVG(SALARY), "
            "MIN(SALARY), MAX(SALARY) FROM EMP",
        )
        count_all, count_salary, total, avg, low, high = result[0]
        assert count_all == 6 and count_salary == 5
        assert total == 515.0 and avg == 103.0
        assert low == 70.0 and high == 140.0

    def test_group_by(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID, COUNT(*) FROM EMP GROUP BY DEPT_ID ORDER BY 1",
        )
        assert result == [(1, 2), (2, 2), (3, 2)]

    def test_group_by_expression(self, executor):
        result = rows(
            executor,
            "SELECT YEAR(HIRED) AS y, COUNT(*) FROM EMP GROUP BY y ORDER BY y",
        )
        assert result[0] == (2018, 1)

    def test_having(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID, SUM(SALARY) AS s FROM EMP GROUP BY DEPT_ID "
            "HAVING SUM(SALARY) > 100 ORDER BY s DESC",
        )
        assert [r[0] for r in result] == [1, 2]

    def test_count_distinct(self, executor):
        assert rows(
            executor, "SELECT COUNT(DISTINCT DEPT_ID) FROM EMP"
        ) == [(3,)]

    def test_global_aggregate_on_empty_input(self, executor):
        assert rows(
            executor, "SELECT COUNT(*), SUM(SALARY) FROM EMP WHERE SALARY > 999"
        ) == [(0, None)]

    def test_group_by_empty_input_no_groups(self, executor):
        assert rows(
            executor,
            "SELECT DEPT_ID, COUNT(*) FROM EMP WHERE SALARY > 999 "
            "GROUP BY DEPT_ID",
        ) == []

    def test_conditional_aggregation(self, executor):
        result = rows(
            executor,
            "SELECT SUM(CASE WHEN ACTIVE THEN 1 ELSE 0 END) FROM EMP",
        )
        assert result == [(5,)]

    def test_aggregate_of_expression(self, executor):
        result = rows(executor, "SELECT SUM(SALARY * 2) FROM EMP")
        assert result == [(1030.0,)]


class TestWindows:
    def test_row_number_over_order(self, executor):
        result = rows(
            executor,
            "SELECT EMP_NAME, ROW_NUMBER() OVER (ORDER BY SALARY DESC) AS r "
            "FROM EMP WHERE SALARY IS NOT NULL ORDER BY r",
        )
        assert result[0] == ("Grace", 1)

    def test_partitioned_rank(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID, EMP_NAME, ROW_NUMBER() OVER "
            "(PARTITION BY DEPT_ID ORDER BY SALARY DESC) AS r FROM EMP "
            "WHERE SALARY IS NOT NULL ORDER BY DEPT_ID, r",
        )
        top_per_dept = [row for row in result if row[2] == 1]
        assert [row[1] for row in top_per_dept] == ["Grace", "Edsger", "Barbara"]

    def test_window_sum_share(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID, CAST(SUM(SALARY) AS FLOAT) / "
            "NULLIF(SUM(SUM(SALARY)) OVER (), 0) AS share FROM EMP "
            "WHERE SALARY IS NOT NULL GROUP BY DEPT_ID ORDER BY DEPT_ID",
        )
        assert sum(row[1] for row in result) == pytest.approx(1.0)

    def test_window_after_group_by(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID, ROW_NUMBER() OVER (ORDER BY SUM(SALARY) DESC) "
            "AS r FROM EMP WHERE SALARY IS NOT NULL GROUP BY DEPT_ID "
            "ORDER BY r",
        )
        assert result[0][0] == 1  # Engineering has highest total

    def test_window_in_order_by(self, executor):
        result = rows(
            executor,
            "SELECT EMP_NAME FROM EMP WHERE SALARY IS NOT NULL "
            "ORDER BY ROW_NUMBER() OVER (ORDER BY SALARY ASC)",
        )
        assert result[0] == ("Barbara",)


class TestSubqueries:
    def test_scalar_subquery(self, executor):
        result = rows(
            executor,
            "SELECT EMP_NAME FROM EMP WHERE SALARY > "
            "(SELECT AVG(SALARY) FROM EMP)",
        )
        assert {r[0] for r in result} == {"Ada", "Grace"}

    def test_scalar_subquery_empty_is_null(self, executor):
        assert rows(
            executor,
            "SELECT (SELECT SALARY FROM EMP WHERE EMP_ID = 99)",
        ) == [(None,)]

    def test_scalar_subquery_multiple_rows_raises(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute("SELECT (SELECT SALARY FROM EMP)")

    def test_correlated_exists(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_NAME FROM DEPT d WHERE EXISTS "
            "(SELECT 1 FROM EMP e WHERE e.DEPT_ID = d.DEPT_ID "
            "AND e.SALARY > 100)",
        )
        assert {r[0] for r in result} == {"Engineering"}

    def test_in_subquery(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_NAME FROM DEPT WHERE DEPT_ID IN "
            "(SELECT DEPT_ID FROM EMP WHERE ACTIVE = FALSE)",
        )
        assert result == [("Sales",)]

    def test_correlated_scalar_subquery(self, executor):
        result = rows(
            executor,
            "SELECT d.DEPT_NAME, (SELECT MAX(SALARY) FROM EMP e "
            "WHERE e.DEPT_ID = d.DEPT_ID) AS top FROM DEPT d ORDER BY 1",
        )
        assert result[0] == ("Engineering", 140.0)

    def test_derived_table(self, executor):
        result = rows(
            executor,
            "SELECT AVG(s) FROM (SELECT SUM(SALARY) AS s FROM EMP "
            "GROUP BY DEPT_ID) AS per_dept",
        )
        assert result[0][0] == pytest.approx(515.0 / 3)


class TestCtes:
    def test_cte_referenced_twice_in_body(self, executor):
        result = rows(
            executor,
            "WITH s AS (SELECT DEPT_ID, SUM(SALARY) AS total FROM EMP "
            "GROUP BY DEPT_ID) SELECT a.DEPT_ID FROM s a JOIN s b "
            "ON a.total >= b.total GROUP BY a.DEPT_ID "
            "HAVING COUNT(*) = 3",
        )
        assert result == [(1,)]  # Engineering dominates all

    def test_cte_chain(self, executor):
        result = rows(
            executor,
            "WITH a AS (SELECT SALARY FROM EMP WHERE SALARY IS NOT NULL), "
            "b AS (SELECT SALARY FROM a WHERE SALARY > 90) "
            "SELECT COUNT(*) FROM b",
        )
        assert result == [(3,)]  # salaries 120, 140, 95 exceed 90

    def test_cte_column_aliases(self, executor):
        result = rows(
            executor,
            "WITH c(name, pay) AS (SELECT EMP_NAME, SALARY FROM EMP) "
            "SELECT name FROM c WHERE pay > 120",
        )
        assert result == [("Grace",)]

    def test_cte_shadows_nothing_outside(self, executor):
        executor.execute("WITH tmp AS (SELECT 1 AS x) SELECT x FROM tmp")
        with pytest.raises(UnknownTableError):
            executor.execute("SELECT x FROM tmp")


class TestSetOperations:
    def test_union_dedupes(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID FROM EMP UNION SELECT DEPT_ID FROM DEPT",
        )
        assert len(result) == 3

    def test_union_all_keeps_duplicates(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID FROM EMP UNION ALL SELECT DEPT_ID FROM DEPT",
        )
        assert len(result) == 9

    def test_intersect(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID FROM EMP WHERE SALARY > 100 INTERSECT "
            "SELECT DEPT_ID FROM DEPT",
        )
        assert result == [(1,)]

    def test_except(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID FROM DEPT EXCEPT "
            "SELECT DEPT_ID FROM EMP WHERE SALARY < 100",
        )
        assert {r[0] for r in result} == {1}

    def test_set_arity_mismatch_raises(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute(
                "SELECT DEPT_ID, 1 FROM DEPT UNION SELECT DEPT_ID FROM DEPT"
            )

    def test_union_order_by_output_column(self, executor):
        result = rows(
            executor,
            "SELECT DEPT_ID FROM EMP UNION SELECT DEPT_ID FROM DEPT "
            "ORDER BY DEPT_ID DESC LIMIT 1",
        )
        assert result == [(3,)]


class TestOrderingAndLimits:
    def test_order_by_column(self, executor):
        result = rows(
            executor,
            "SELECT EMP_NAME FROM EMP WHERE SALARY IS NOT NULL "
            "ORDER BY SALARY DESC",
        )
        assert result[0] == ("Grace",)

    def test_order_by_alias(self, executor):
        result = rows(
            executor,
            "SELECT SALARY * 2 AS d FROM EMP WHERE SALARY IS NOT NULL "
            "ORDER BY d LIMIT 1",
        )
        assert result == [(140.0,)]

    def test_order_by_ordinal(self, executor):
        result = rows(
            executor,
            "SELECT EMP_NAME, SALARY FROM EMP WHERE SALARY IS NOT NULL "
            "ORDER BY 2 DESC LIMIT 2",
        )
        assert [r[0] for r in result] == ["Grace", "Ada"]

    def test_nulls_last_ascending_default(self, executor):
        result = rows(executor, "SELECT SALARY FROM EMP ORDER BY SALARY")
        assert result[-1] == (None,)

    def test_limit_offset(self, executor):
        result = rows(
            executor,
            "SELECT EMP_ID FROM EMP ORDER BY EMP_ID LIMIT 2 OFFSET 3",
        )
        assert result == [(4,), (5,)]

    def test_distinct(self, executor):
        assert len(rows(executor, "SELECT DISTINCT DEPT_ID FROM EMP")) == 3

    def test_distinct_with_order(self, executor):
        result = rows(
            executor, "SELECT DISTINCT REGION FROM DEPT ORDER BY REGION"
        )
        assert result == [("East",), ("West",)]


class TestErrors:
    def test_unknown_table(self, executor):
        with pytest.raises(UnknownTableError):
            executor.execute("SELECT 1 FROM nope")

    def test_unknown_column(self, executor):
        with pytest.raises(UnknownColumnError):
            executor.execute("SELECT nope FROM EMP")

    def test_aggregate_without_group_context(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute("SELECT 1 FROM EMP WHERE SUM(SALARY) > 1")

    def test_having_without_group(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute("SELECT EMP_NAME FROM EMP HAVING EMP_ID > 1")


class TestResultHelpers:
    def test_comparable_is_order_insensitive(self, executor):
        first = executor.execute("SELECT DEPT_ID FROM EMP ORDER BY EMP_ID")
        second = executor.execute(
            "SELECT DEPT_ID FROM EMP ORDER BY EMP_ID DESC"
        )
        assert first.comparable() == second.comparable()

    def test_execute_sql_helper(self, demo_db):
        assert execute_sql(demo_db, "SELECT COUNT(*) FROM EMP").rows == [(6,)]

"""Sampling profiler tests: stack capture, attribution, output, safety.

Covers DESIGN.md §6g's profiler — wall-clock sampling via
``sys._current_frames`` with ``thread:``/``span:`` root attribution,
the collapsed-stack output format, and the export-lock guarantee that
``write_trace`` stays atomic while the sampler (or a second exporter)
is running concurrently.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profiler import (
    DEFAULT_HZ,
    PROFILE_SAMPLE_SCHEMA_VERSION,
    SamplingProfiler,
    collapse_frame,
)
from repro.obs.render import load_trace, write_trace
from repro.obs.tracing import Tracer


def _busy_loop(stop_event):
    total = 0
    while not stop_event.is_set():
        total += sum(range(200))
    return total


def _run_profiled(target, hz=400.0, duration=0.25, name="busy-worker"):
    """Profile ``target(stop_event)`` on a named thread for ``duration``."""
    stop_event = threading.Event()
    worker = threading.Thread(target=target, args=(stop_event,), name=name)
    profiler = SamplingProfiler(hz=hz)
    worker.start()
    try:
        with profiler:
            time.sleep(duration)
    finally:
        stop_event.set()
        worker.join()
    return profiler


class TestLifecycle:
    def test_non_positive_hz_rejected(self):
        with pytest.raises(ValueError, match="sampling rate"):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError, match="sampling rate"):
            SamplingProfiler(hz=-5)

    def test_double_start_raises(self):
        profiler = SamplingProfiler(hz=50).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_a_noop(self):
        profiler = SamplingProfiler(hz=50)
        assert profiler.stop() is profiler

    def test_default_rate_is_prime(self):
        assert DEFAULT_HZ == 97.0

    def test_interval_is_inverse_rate(self):
        assert SamplingProfiler(hz=200).interval == 0.005


class TestSampling:
    def test_busy_thread_is_captured_with_thread_root(self):
        profiler = _run_profiled(_busy_loop)
        assert profiler.sample_count > 0
        assert profiler.stack_count >= profiler.sample_count
        busy_stacks = [
            stack for stack in profiler.samples()
            if stack[0] == "thread:busy-worker"
        ]
        assert busy_stacks
        assert any(
            "test_profiler._busy_loop" in stack for stack in busy_stacks
        )

    def test_own_sampler_thread_is_excluded(self):
        profiler = _run_profiled(_busy_loop)
        assert not any(
            stack[0] == "thread:sampling-profiler"
            for stack in profiler.samples()
        )

    def test_span_attribution_from_ambient_stack(self):
        tracer = Tracer()

        def traced_busy(stop_event):
            with tracer.span("generate"):
                _busy_loop(stop_event)

        profiler = _run_profiled(traced_busy, name="pipeline-worker")
        attributed = [
            stack for stack in profiler.samples()
            if stack[0] == "thread:pipeline-worker"
            and len(stack) > 1 and stack[1] == "span:generate"
        ]
        assert attributed
        assert profiler.hot_spans().get("generate", 0) > 0

    def test_wall_clock_is_recorded(self):
        profiler = _run_profiled(_busy_loop, duration=0.1)
        assert profiler.wall_s >= 0.1

    def test_collapse_frame_is_root_first(self):
        import sys

        frame = sys._getframe()
        labels = collapse_frame(frame)
        assert labels[-1] == "test_profiler.test_collapse_frame_is_root_first"
        assert len(labels) >= 2


class TestOutput:
    def _canned(self):
        profiler = SamplingProfiler(hz=100)
        profiler._samples = {
            ("thread:a", "mod.outer", "mod.inner"): 2,
            ("thread:b", "mod.other"): 5,
        }
        profiler.sample_count = 5
        profiler.stack_count = 7
        return profiler

    def test_collapsed_format_and_ordering(self):
        text = self._canned().collapsed()
        assert text == (
            "thread:b;mod.other 5\n"
            "thread:a;mod.outer;mod.inner 2\n"
        )

    def test_collapsed_empty_profile_is_empty(self):
        assert SamplingProfiler(hz=100).collapsed() == ""

    def test_write_emits_header_plus_body(self, tmp_path):
        profiler = self._canned()
        path = tmp_path / "profile.collapsed"
        assert profiler.write(path) == 7
        lines = path.read_text().splitlines()
        assert lines[0].startswith(
            f"# repro.obs.profiler v{PROFILE_SAMPLE_SCHEMA_VERSION} hz=100"
        )
        assert "samples=5" in lines[0]
        assert "stacks=7" in lines[0]
        assert lines[1:] == [
            "thread:b;mod.other 5",
            "thread:a;mod.outer;mod.inner 2",
        ]

    def test_hot_spans_counts_span_roots(self):
        profiler = SamplingProfiler(hz=100)
        profiler._samples = {
            ("thread:a", "span:generate", "mod.f"): 3,
            ("thread:a", "span:generate", "mod.g"): 2,
            ("thread:b", "span:plan", "mod.h"): 1,
            ("thread:c", "mod.unattributed"): 9,
        }
        assert profiler.hot_spans() == {"generate": 5, "plan": 1}


class TestTraceExportUnderSampling:
    def test_concurrent_write_trace_stays_parseable(self, tmp_path):
        """Satellite: the export lock keeps JSONL whole under the sampler.

        Two exporter threads hammer the same trace path while the
        profiler samples at high rate; every intermediate state of the
        file is a complete record sequence, so the final parse (and a
        mid-flight parse) must succeed with intact span records.
        """
        tracer = Tracer()
        for index in range(20):
            with tracer.span(f"op-{index}", index=index):
                pass
        records = tracer.to_records()
        path = tmp_path / "trace.jsonl"
        errors = []

        def exporter():
            try:
                for _ in range(30):
                    write_trace(path, records, metrics={"counters": {}})
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with SamplingProfiler(hz=500):
            threads = [
                threading.Thread(target=exporter, name=f"exporter-{i}")
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert errors == []
        trace = load_trace(path)
        assert len(trace["spans"]) == 20
        assert trace["metrics"] == {"counters": {}}
        assert {span["name"] for span in trace["spans"]} \
            == {f"op-{index}" for index in range(20)}

"""Harness hardening: worker failures become per-question outcomes.

Pins the behaviour ISSUE 4's satellite demands: an exception inside an
``evaluate_system`` worker — in ``generate``, in the EX check, or while
building the pipeline — yields an incorrect outcome with a populated
``error`` field for the affected question(s), in stable workload order,
instead of aborting the experiment.
"""

import pytest

from repro.bench.harness import evaluate_system
from repro.pipeline import GenEditPipeline


class _ExplodingPipeline:
    """Delegates to GenEdit but raises for marked questions."""

    def __init__(self, database, knowledge, marker):
        self._inner = GenEditPipeline(database, knowledge)
        self._marker = marker

    def generate(self, question):
        if self._marker in question.lower():
            raise RuntimeError(f"worker blew up on {question!r}")
        return self._inner.generate(question)


def _subset(experiment_context, per_db=3):
    questions = []
    seen = {}
    for question in experiment_context.workload.questions:
        if seen.get(question.database, 0) < per_db:
            seen[question.database] = seen.get(question.database, 0) + 1
            questions.append(question)
    return questions


def _evaluate(experiment_context, make_pipeline, questions,
              trace_sink=None, max_workers=None):
    return evaluate_system(
        make_pipeline,
        experiment_context.workload,
        experiment_context.profiles,
        experiment_context.knowledge_sets,
        "hardened",
        questions=questions,
        cache=experiment_context.cache,
        trace_sink=trace_sink,
        max_workers=max_workers,
    )


class TestWorkerFailureHardening:
    @pytest.mark.parametrize("max_workers", [1, None])
    def test_generate_exception_becomes_error_outcome(
        self, experiment_context, max_workers
    ):
        questions = _subset(experiment_context)
        marker = questions[0].question.split()[-1].strip("?").lower()
        report = _evaluate(
            experiment_context,
            lambda db, ks: _ExplodingPipeline(db, ks, marker),
            questions,
            max_workers=max_workers,
        )
        assert len(report.outcomes) == len(questions)
        assert [o.question_id for o in report.outcomes] == \
            [q.question_id for q in questions]
        exploded = [
            o for o, q in zip(report.outcomes, questions)
            if marker in q.question.lower()
        ]
        assert exploded
        for outcome in exploded:
            assert not outcome.correct
            assert outcome.predicted_sql == ""
            assert outcome.error.startswith("RuntimeError: worker blew up")
        # The untouched questions still evaluated normally.
        assert any(
            o.correct for o, q in zip(report.outcomes, questions)
            if marker not in q.question.lower()
        )

    def test_make_pipeline_failure_marks_whole_group(
        self, experiment_context
    ):
        questions = _subset(experiment_context)
        broken_db = questions[0].database

        def make_pipeline(database, knowledge):
            if database.name == broken_db:
                raise OSError("pipeline bootstrap failed")
            return GenEditPipeline(database, knowledge)

        report = _evaluate(experiment_context, make_pipeline, questions)
        assert len(report.outcomes) == len(questions)
        for outcome in report.outcomes:
            if outcome.database == broken_db:
                assert not outcome.correct
                assert outcome.error == "OSError: pipeline bootstrap failed"
            else:
                assert outcome.correct or outcome.error

    def test_trace_sink_stays_in_workload_order_despite_failures(
        self, experiment_context
    ):
        questions = _subset(experiment_context)
        marker = questions[0].question.split()[-1].strip("?").lower()
        sink = []
        report = _evaluate(
            experiment_context,
            lambda db, ks: _ExplodingPipeline(db, ks, marker),
            questions,
            trace_sink=sink,
        )
        roots = [
            record for record in sink if record.get("parent_id") is None
        ]
        survivors = [
            q.question_id for q in questions
            if marker not in q.question.lower()
        ]
        # One root per surviving question, in workload order; failed
        # questions contribute no records but never disturb the order.
        assert [
            root["attributes"]["question_id"] for root in roots
        ] == survivors
        assert len(report.outcomes) == len(questions)

    def test_incorrect_outcomes_always_carry_an_error(
        self, experiment_context
    ):
        questions = _subset(experiment_context, per_db=4)
        report = _evaluate(
            experiment_context,
            lambda db, ks: GenEditPipeline(db, ks),
            questions,
        )
        for outcome in report.outcomes:
            if outcome.correct:
                assert outcome.error == ""
            else:
                assert outcome.error

"""Evaluation fast path: cache correctness and cached/uncached equivalence."""

import json
import pathlib

import pytest

from repro.bench.cache import CachedExecutionError, EvaluationCache
from repro.bench.harness import evaluate_system, profile
from repro.bench.metrics import execution_match
from repro.engine import Column, Database
from repro.pipeline import GenEditPipeline
from repro.sql import to_cte_form
from repro.sql.parser import parse, parse_cached


@pytest.fixture()
def tiny_db():
    db = Database("tiny")
    db.create_table(
        "T",
        [Column("A", "INTEGER", ""), Column("B", "TEXT", "")],
        rows=[(1, "x"), (2, "y")],
    )
    return db


class TestEvaluationCache:
    def test_executor_reused_per_database(self, tiny_db):
        cache = EvaluationCache()
        assert cache.executor(tiny_db) is cache.executor(tiny_db)

    def test_gold_result_memoized(self, tiny_db):
        cache = EvaluationCache()
        first = cache.comparable(tiny_db, "SELECT A FROM T")
        second = cache.comparable(tiny_db, "SELECT A FROM T")
        assert first == second == [(1,), (2,)]
        assert cache.hits == 1 and cache.misses == 1

    def test_failure_memoized_and_replayed(self, tiny_db):
        cache = EvaluationCache()
        for _ in range(2):
            with pytest.raises(CachedExecutionError):
                cache.comparable(tiny_db, "SELECT NOPE FROM T")
        assert cache.hits == 1 and cache.misses == 1

    def test_row_insert_invalidates(self, tiny_db):
        cache = EvaluationCache()
        sql = "SELECT COUNT(*) AS N FROM T"
        assert cache.comparable(tiny_db, sql) == [(2,)]
        tiny_db.table("T").insert((3, "z"))
        assert cache.comparable(tiny_db, sql) == [(3,)]
        assert cache.misses == 2

    def test_add_table_invalidates(self, tiny_db):
        cache = EvaluationCache()
        sql = "SELECT COUNT(*) AS N FROM T"
        cache.comparable(tiny_db, sql)
        before = tiny_db.version
        tiny_db.create_table("U", [Column("C", "INTEGER", "")], rows=[(9,)])
        assert tiny_db.version > before
        cache.comparable(tiny_db, sql)
        assert cache.hits == 0 and cache.misses == 2

    def test_stale_versions_evicted(self, tiny_db):
        cache = EvaluationCache()
        sql = "SELECT A FROM T"
        cache.comparable(tiny_db, sql)
        tiny_db.table("T").insert((3, "z"))
        cache.comparable(tiny_db, sql)
        assert cache.stats()["entries"] == 1

    def test_explicit_invalidate(self, tiny_db):
        cache = EvaluationCache()
        sql = "SELECT A FROM T"
        cache.comparable(tiny_db, sql)
        # Out-of-band mutation the version counter cannot see.
        tiny_db.table("T").rows.append((3, "z"))
        cache.invalidate(tiny_db)
        assert cache.comparable(tiny_db, sql) == [(1,), (2,), (3,)]

    def test_cache_info_mirrors_lru_cache_shape(self, tiny_db):
        cache = EvaluationCache()
        sql = "SELECT A FROM T"
        cache.comparable(tiny_db, sql)
        cache.comparable(tiny_db, sql)
        info = cache.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert info.maxsize is None and info.currsize == 1

    def test_hit_miss_counters_feed_metrics_registry(self, tiny_db):
        from repro.obs import get_metrics

        registry = get_metrics()
        hits_before = registry.counter_value("eval_cache.hits")
        misses_before = registry.counter_value("eval_cache.misses")
        cache = EvaluationCache()
        sql = "SELECT B FROM T"
        cache.comparable(tiny_db, sql)
        cache.comparable(tiny_db, sql)
        assert registry.counter_value("eval_cache.hits") == hits_before + 1
        assert (
            registry.counter_value("eval_cache.misses") == misses_before + 1
        )


class TestExecutionMatchFastPath:
    def test_cached_equals_uncached(self, tiny_db):
        cache = EvaluationCache()
        cases = [
            ("SELECT A FROM T", "SELECT A FROM T ORDER BY A DESC", True),
            ("SELECT A FROM T WHERE A = 1", "SELECT A FROM T", False),
            ("", "SELECT A FROM T", False),
            ("SELECT NOPE FROM T", "SELECT A FROM T", False),
        ]
        for predicted, gold, expected in cases:
            assert execution_match(tiny_db, predicted, gold) is expected
            assert execution_match(
                tiny_db, predicted, gold, cache=cache
            ) is expected

    def test_executor_reuse_without_memoization(self, tiny_db):
        from repro.engine import Executor

        executor = Executor(tiny_db)
        assert execution_match(
            tiny_db, "SELECT A FROM T", "SELECT A FROM T", executor=executor
        )


class TestEvaluateSystemEquivalence:
    def _run(self, context, **kwargs):
        return evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks),
            context.workload,
            context.profiles,
            context.knowledge_sets,
            "equiv",
            questions=context.workload.questions[:12],
            **kwargs,
        )

    def test_cached_and_uncached_rows_identical(self, experiment_context):
        cached = self._run(experiment_context, cache=EvaluationCache())
        uncached = self._run(experiment_context, cache=False)
        assert cached.row() == uncached.row()
        assert [o.correct for o in cached.outcomes] == [
            o.correct for o in uncached.outcomes
        ]
        assert [o.predicted_sql for o in cached.outcomes] == [
            o.predicted_sql for o in uncached.outcomes
        ]

    def test_parallel_and_sequential_identical(self, experiment_context):
        sequential = self._run(experiment_context, max_workers=1)
        parallel = self._run(experiment_context, max_workers=4)
        assert sequential.row() == parallel.row()
        assert [o.question_id for o in sequential.outcomes] == [
            o.question_id for o in parallel.outcomes
        ]

    def test_shared_cache_hits_across_systems(self, experiment_context):
        cache = EvaluationCache()
        self._run(experiment_context, cache=cache)
        misses_after_first = cache.misses
        self._run(experiment_context, cache=cache)
        assert cache.misses == misses_after_first  # second system: all hits
        assert cache.hits > 0


class TestParseCache:
    def test_repeated_parse_shares_ast(self):
        sql = "SELECT A FROM T WHERE A > 1"
        assert parse_cached(sql) is parse_cached(sql)

    def test_cached_ast_equals_fresh_parse(self):
        sql = "WITH C AS (SELECT A FROM T) SELECT * FROM C"
        assert parse_cached(sql) == parse(sql)

    def test_errors_reraise_every_call(self):
        from repro.sql.errors import SqlError

        for _ in range(2):
            with pytest.raises(SqlError):
                parse_cached("SELECT FROM WHERE")

    def test_rewriter_does_not_corrupt_cached_ast(self):
        sql = "SELECT X FROM (SELECT A AS X FROM T) D"
        before = parse_cached(sql)
        to_cte_form(before)  # deep-copies internally; must not mutate input
        assert parse_cached(sql) == parse(sql)

    def test_parse_cache_info_counts_hits(self):
        from repro.sql import parse_cache_info

        before = parse_cache_info()
        sql = "SELECT A, B FROM T WHERE B = 'x'"
        parse_cached(sql)  # may hit or miss depending on suite order
        parse_cached(sql)  # second call is a guaranteed hit
        after = parse_cache_info()
        assert after.hits >= before.hits + 1
        assert after.currsize >= 1

    def test_global_snapshot_reports_cache_gauges(self, tiny_db):
        from repro.obs import global_snapshot

        cache = EvaluationCache()
        sql = "SELECT A FROM T"
        cache.comparable(tiny_db, sql)
        cache.comparable(tiny_db, sql)
        parse_cached(sql)
        parse_cached(sql)
        snapshot = global_snapshot(eval_cache=cache)
        assert snapshot["gauges"]["eval_cache.hits"] == 1
        assert snapshot["gauges"]["eval_cache.misses"] == 1
        assert snapshot["gauges"]["parse_cache.hits"] >= 1


class TestProfileSnapshot:
    def test_profile_payload_matches_committed_baseline(
        self, experiment_context
    ):
        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_baseline.json"
        )
        baseline = json.loads(baseline_path.read_text())
        payload = profile(experiment_context, limit=3, verbose=False)
        # The committed baseline predates schema v3: every v2 key must
        # still be present, and the only additions are version-gated.
        assert set(baseline) <= set(payload)
        assert set(payload) - set(baseline) == {"engine"}
        assert set(payload["stages"]) == set(baseline["stages"])
        assert payload["schema_version"] == baseline["schema_version"] + 1
        assert baseline["questions"] == 132
        assert baseline["ex_all"] == pytest.approx(65.15)

    def test_profile_stage_timings_populated(self, experiment_context):
        payload = profile(experiment_context, limit=2, verbose=False)
        assert payload["questions"] == 2
        for stage in ("build", "mine", "retrieve", "generate", "execute"):
            assert payload["stages"][stage] >= 0.0

"""Tests for the serving layer (repro.serve): schemas, routing, the
worker pool, the HTTP server end-to-end, and the serial/concurrent
equivalence gate."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    AskRequest,
    FeedbackRequest,
    HTTPError,
    PoolDraining,
    PoolSaturated,
    Router,
    ServeApp,
    ServerThread,
    ValidationError,
    WorkerPool,
)
from repro.serve.loadgen import (
    check_report,
    percentile,
    skewed_plan,
    summarize,
    sweep_plan,
)
from repro.serve.middleware import new_request_id, request_id_from_headers
from repro.serve.schemas import schema_field_names


# -- schemas -----------------------------------------------------------------


class TestSchemas:
    def test_ask_request_happy_path(self):
        request = AskRequest.from_payload({
            "question": "How many teams?",
            "tenant": "sports_holdings",
            "deadline_ms": 1500,
        })
        assert request.question == "How many teams?"
        assert request.tenant == "sports_holdings"
        assert request.deadline_ms == 1500
        assert request.gold_sql == ""

    def test_all_errors_collected_in_one_pass(self):
        with pytest.raises(ValidationError) as exc:
            AskRequest.from_payload({
                "tenant": "  ",
                "deadline_ms": 0,
                "mystery": 1,
            })
        locs = {tuple(error["loc"]) for error in exc.value.errors}
        assert ("body", "question") in locs     # missing required
        assert ("body", "tenant") in locs       # empty
        assert ("body", "deadline_ms") in locs  # below minimum
        assert ("body", "mystery") in locs      # unknown field

    def test_bool_rejected_for_numeric_field(self):
        with pytest.raises(ValidationError):
            AskRequest.from_payload({
                "question": "q", "tenant": "t", "deadline_ms": True,
            })

    def test_non_object_body_rejected(self):
        with pytest.raises(ValidationError):
            AskRequest.from_payload([1, 2, 3])

    def test_error_payload_shape(self):
        try:
            FeedbackRequest.from_payload({})
        except ValidationError as error:
            payload = error.payload()
        assert payload["error"] == "validation"
        assert all(
            set(entry) == {"loc", "msg"} for entry in payload["detail"]
        )

    def test_schema_field_names(self):
        assert "gold_sql" in schema_field_names(AskRequest)
        assert "feedback" in schema_field_names(FeedbackRequest)


# -- router ------------------------------------------------------------------


class TestRouter:
    def _router(self):
        router = Router()
        router.add("GET", "/runs", lambda **kw: "list", name="runs")
        router.add("GET", "/runs/{run_id}", lambda **kw: "one",
                   name="runs")
        router.add("POST", "/ask", lambda **kw: "ask", name="ask",
                   pooled=True)
        return router

    def test_static_and_param_match(self):
        router = self._router()
        route, params = router.match("GET", "/runs")
        assert route.name == "runs" and params == {}
        route, params = router.match("GET", "/runs/abc123")
        assert params == {"run_id": "abc123"}

    def test_404_unknown_path(self):
        with pytest.raises(HTTPError) as exc:
            self._router().match("GET", "/nope")
        assert exc.value.status == 404

    def test_405_carries_allow_header(self):
        with pytest.raises(HTTPError) as exc:
            self._router().match("DELETE", "/ask")
        assert exc.value.status == 405
        assert exc.value.headers["Allow"] == "POST"

    def test_pooled_flag_recorded(self):
        router = self._router()
        route, _ = router.match("POST", "/ask")
        assert route.pooled
        route, _ = router.match("GET", "/runs")
        assert not route.pooled


# -- worker pool -------------------------------------------------------------


class TestWorkerPool:
    def test_admission_bound(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        pool.acquire()
        pool.acquire()
        with pytest.raises(PoolSaturated):
            pool.acquire()
        pool.release()
        pool.acquire()  # slot freed
        pool.release()
        pool.release()

    def test_draining_rejected(self):
        pool = WorkerPool(workers=1, queue_depth=0)
        assert pool.drain(timeout=5.0)
        with pytest.raises(PoolDraining):
            pool.acquire()

    def test_run_executes_and_releases(self):
        pool = WorkerPool(workers=2, queue_depth=2)

        async def go():
            pool.acquire()
            return await pool.run(lambda: 40 + 2)

        assert asyncio.run(go()) == 42
        assert pool.inflight == 0

    def test_deadline_maps_to_exception_and_slot_still_freed(self):
        from repro.serve import DeadlineExceeded

        pool = WorkerPool(workers=1, queue_depth=0)
        release = threading.Event()

        async def go():
            pool.acquire()
            with pytest.raises(DeadlineExceeded):
                await pool.run(release.wait, 30.0, deadline_s=0.05)

        asyncio.run(go())
        release.set()
        assert pool.drain(timeout=10.0)
        assert pool.inflight == 0


# -- middleware --------------------------------------------------------------


class TestRequestIds:
    def test_ids_unique(self):
        assert new_request_id() != new_request_id()

    def test_caller_id_honoured(self):
        assert request_id_from_headers(
            {"x-request-id": "trace-1"}
        ) == "trace-1"

    def test_bad_caller_id_replaced(self):
        minted = request_id_from_headers({"x-request-id": "x" * 200})
        assert minted.startswith("req-")


# -- loadgen helpers ---------------------------------------------------------


class TestLoadgenHelpers:
    def test_percentile(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.5) == 25.0
        assert percentile(values, 1.0) == 40.0
        assert percentile([], 0.5) == 0.0

    def test_skewed_plan_deterministic(self, experiment_context):
        workload = experiment_context.workload
        a = skewed_plan(workload, ["sports_holdings"], 20, seed=7)
        b = skewed_plan(workload, ["sports_holdings"], 20, seed=7)
        assert [q.question_id for q in a] == [q.question_id for q in b]
        assert len(a) == 20

    def test_sweep_plan_is_each_question_once(self, experiment_context):
        workload = experiment_context.workload
        plan = sweep_plan(workload, ["sports_holdings"])
        ids = [q.question_id for q in plan]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert len(ids) == len(workload.for_database("sports_holdings"))

    def test_check_report_flags(self):
        report = summarize([(200, 5.0, {"correct": True})], 1.0)
        assert check_report(report, sweep=True) == []
        bad = summarize([(500, 5.0, {})], 1.0)
        assert check_report(bad)
        silent = summarize([(200, 5.0, {})], 1.0,
                           probe={"rejected": 0})
        assert check_report(silent, probed=True)


# -- the app + HTTP server end-to-end ----------------------------------------


def _make_app(experiment_context, **kwargs):
    defaults = dict(
        databases=["sports_holdings"],
        workers=2,
        queue_depth=2,
        profiles=experiment_context.profiles,
        workload=experiment_context.workload,
        knowledge_sets=experiment_context.knowledge_sets,
        registry=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return ServeApp(**defaults)


@pytest.fixture(scope="module")
def serve_server(experiment_context):
    app = _make_app(experiment_context)
    server = ServerThread(app).start()
    yield server
    server.stop()


def _request(server, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                      timeout=60)
    try:
        body = None
        merged = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload)
            merged["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=merged)
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), \
            json.loads(raw) if raw else {}
    finally:
        conn.close()


class TestHttpServer:
    def test_healthz(self, serve_server):
        status, _, body = _request(serve_server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tenants"] == ["sports_holdings"]
        assert body["capacity"] == 4

    def test_ask_round_trip(self, serve_server, experiment_context):
        question = experiment_context.workload.for_database(
            "sports_holdings"
        )[0]
        status, headers, body = _request(serve_server, "POST", "/ask", {
            "question": question.question,
            "tenant": "sports_holdings",
            "gold_sql": question.gold_sql,
        })
        assert status == 200
        assert body["success"] is True
        assert body["correct"] is True
        assert body["sql"]
        assert headers["X-Request-Id"] == body["request_id"]

    def test_request_id_propagates(self, serve_server):
        status, headers, _ = _request(
            serve_server, "GET", "/healthz",
            headers={"X-Request-Id": "trace-42"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "trace-42"

    def test_validation_error_is_400_with_detail(self, serve_server):
        status, _, body = _request(serve_server, "POST", "/ask",
                                   {"tenant": "sports_holdings"})
        assert status == 400
        assert body["error"] == "validation"
        assert any(
            entry["loc"] == ["body", "question"]
            for entry in body["detail"]
        )

    def test_unknown_tenant_is_404(self, serve_server):
        status, _, body = _request(serve_server, "POST", "/ask", {
            "question": "q", "tenant": "enron",
        })
        assert status == 404
        assert body["detail"]["served"] == ["sports_holdings"]

    def test_unknown_path_and_method(self, serve_server):
        status, _, _ = _request(serve_server, "GET", "/nope")
        assert status == 404
        status, headers, _ = _request(serve_server, "PUT", "/ask")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_feedback_round_trip(self, serve_server, experiment_context):
        question = experiment_context.workload.for_database(
            "sports_holdings"
        )[0]
        status, _, body = _request(serve_server, "POST", "/feedback", {
            "question": question.question,
            "tenant": "sports_holdings",
            "feedback": "always filter to active teams",
        })
        assert status == 200
        assert isinstance(body["recommendations"], list)
        for edit in body["recommendations"]:
            assert set(edit) == {
                "edit_id", "action", "kind", "description",
            }

    def test_responses_are_sorted_key_json(self, serve_server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", serve_server.port, timeout=60
        )
        try:
            conn.request("GET", "/healthz")
            raw = conn.getresponse().read().decode()
        finally:
            conn.close()
        keys = list(json.loads(raw))
        assert keys == sorted(keys)


class TestSaturationAndDrain:
    def test_saturated_pool_answers_429_with_retry_after(
        self, experiment_context
    ):
        app = _make_app(experiment_context, workers=1, queue_depth=0)
        server = ServerThread(app).start()
        try:
            block = threading.Event()
            release = threading.Event()

            def stall(request, params, request_id):
                block.set()
                release.wait(30.0)
                return 200, {"stalled": True}, {}

            app.router.add("POST", "/stall", stall, name="stall",
                           pooled=True)
            stalled = threading.Thread(
                target=_request, args=(server, "POST", "/stall"),
                kwargs={"payload": {}},
            )
            stalled.start()
            assert block.wait(10.0)
            status, headers, _ = _request(server, "POST", "/ask", {
                "question": "q", "tenant": "sports_holdings",
            })
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            release.set()
            stalled.join(30.0)
        finally:
            assert server.stop()

    def test_draining_server_answers_503(self, experiment_context):
        app = _make_app(experiment_context)
        server = ServerThread(app).start()
        assert server.stop()
        # The pool refuses after drain even via a direct dispatch.
        status, _, payload = asyncio.run(app.dispatch(
            "POST", "/ask", {},
            json.dumps({
                "question": "q", "tenant": "sports_holdings",
            }).encode(),
        ))
        assert status == 503
        assert payload["error"] == "draining"

    def test_deadline_maps_to_504(self, experiment_context):
        app = _make_app(experiment_context)
        server = ServerThread(app).start()
        try:
            block = threading.Event()
            release = threading.Event()

            def stall(request, params, request_id):
                block.set()
                release.wait(30.0)
                return 200, {}, {}

            app.router.add("POST", "/stall", stall, name="stall",
                           pooled=True)
            app.deadline_ms = 100.0
            status, _, body = _request(server, "POST", "/stall", {})
            assert status == 504
            assert body["error"] == "deadline exceeded"
            release.set()
        finally:
            app.deadline_ms = 30_000.0
            assert server.stop()

    def test_drain_waits_for_inflight_and_flushes(
        self, experiment_context, tmp_path
    ):
        telemetry = tmp_path / "metrics.prom"
        app = _make_app(
            experiment_context,
            ledger_dir=str(tmp_path / "runs"),
            telemetry_out=str(telemetry),
        )
        server = ServerThread(app).start()
        question = experiment_context.workload.for_database(
            "sports_holdings"
        )[0]
        status, _, _ = _request(server, "POST", "/ask", {
            "question": question.question,
            "tenant": "sports_holdings",
            "question_id": question.question_id,
            "gold_sql": question.gold_sql,
            "difficulty": question.difficulty,
        })
        assert status == 200
        assert server.stop()
        # Drain recorded the serve run and flushed telemetry.
        assert app.last_run_id
        assert telemetry.exists()
        text = telemetry.read_text()
        assert "serve_requests" in text


# -- serial/concurrent equivalence (satellite of the concurrency audit) ------


def _sweep(experiment_context, tmp_path, concurrency, label):
    from repro.serve.loadgen import run_loadgen

    app = _make_app(
        experiment_context,
        databases=["sports_holdings"],
        workers=4,
        queue_depth=8,
        ledger_dir=str(tmp_path / "runs"),
    )
    report = run_loadgen(
        databases=["sports_holdings"],
        concurrency=concurrency,
        sweep=True,
        self_serve=True,
        server_app=app,
        workload=experiment_context.workload,
        out=lambda line: None,
    )
    assert report["drained"] is True
    assert report["non_2xx"] == 0
    record_path = tmp_path / "runs" / report["run_id"] / "record.json"
    return report, record_path.read_bytes()


class TestSerialConcurrentEquivalence:
    def test_c1_and_c8_produce_identical_records(
        self, experiment_context, tmp_path
    ):
        report_1, record_1 = _sweep(
            experiment_context, tmp_path / "c1", 1, "c1"
        )
        report_8, record_8 = _sweep(
            experiment_context, tmp_path / "c8", 8, "c8"
        )
        assert report_1["requests"] == report_8["requests"]
        assert report_1["correct"] == report_8["correct"]

        def canonical(raw):
            record = json.loads(raw)
            record["run_id"] = ""
            return json.dumps(record, sort_keys=True)

        # Byte-identical modulo the (timestamped) run id: same SQL, same
        # EX verdicts, same outcome ordering, same digests.
        assert canonical(record_1) == canonical(record_8)
        # The content digest in the id already proves it — assert anyway.
        digest_1 = report_1["run_id"].rsplit("-", 1)[-1]
        digest_8 = report_8["run_id"].rsplit("-", 1)[-1]
        assert digest_1 == digest_8

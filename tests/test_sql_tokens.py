"""Tokenizer tests."""

import pytest

from repro.sql.errors import SqlSyntaxError
from repro.sql.tokens import Token, TokenType, tokenize


def kinds(sql):
    return [token.type for token in tokenize(sql)[:-1]]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_uppercased(self):
        assert values("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifier_case_preserved(self):
        assert values("MyTable") == ["MyTable"]

    def test_keyword_vs_identifier(self):
        tokens = tokenize("SELECT revenue")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENTIFIER

    def test_underscore_identifier(self):
        assert values("ORG_NAME _private") == ["ORG_NAME", "_private"]

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]

    def test_whitespace_and_newlines_skipped(self):
        assert values("a\n\t b\r\n c") == ["a", "b", "c"]


class TestNumbers:
    def test_integer(self):
        assert values("42") == ["42"]

    def test_float(self):
        assert values("3.14") == ["3.14"]

    def test_leading_dot_float(self):
        assert values(".5") == [".5"]

    def test_scientific_notation(self):
        assert values("1e6 2.5E-3") == ["1e6", "2.5E-3"]

    def test_number_then_qualified_name(self):
        # "1.x" should not swallow the dot into the number
        tokens = tokenize("SELECT 1, t.x")
        text = [token.value for token in tokens[:-1]]
        assert text == ["SELECT", "1", ",", "t", ".", "x"]


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_embedded_double_quotes_kept(self):
        tokens = tokenize("'YYYY\"Q\"Q'")
        assert tokens[0].value == 'YYYY"Q"Q'

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "Weird Name"

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


class TestOperators:
    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "=", "<", ">"])
    def test_single_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].type is TokenType.OPERATOR
        assert tokens[0].value == op

    @pytest.mark.parametrize("op", ["<>", ">=", "<=", "||"])
    def test_multi_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].value == op

    def test_bang_equals_normalised(self):
        assert tokenize("!=")[0].value == "<>"

    def test_greedy_lexing(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_unknown_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_end(self):
        assert values("a -- trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert values("a /* hi */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert values("a /* line1\nline2 */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  x")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_error_carries_location(self):
        with pytest.raises(SqlSyntaxError) as err:
            tokenize("a\n  @")
        assert err.value.line == 2


class TestTokenHelpers:
    def test_matches(self):
        token = Token(TokenType.KEYWORD, "SELECT")
        assert token.matches(TokenType.KEYWORD)
        assert token.matches(TokenType.KEYWORD, "SELECT")
        assert not token.matches(TokenType.KEYWORD, "FROM")
        assert not token.matches(TokenType.IDENTIFIER)

    def test_is_keyword(self):
        token = Token(TokenType.KEYWORD, "JOIN")
        assert token.is_keyword("JOIN", "ON")
        assert not token.is_keyword("SELECT")

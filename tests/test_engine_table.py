"""Table storage, catalog, and value-profiling tests."""

import pytest

from repro.engine import Column, Database, Table, profile_table
from repro.engine.errors import (
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)


class TestColumn:
    def test_type_canonicalised(self):
        assert Column("X", "varchar").type == "TEXT"

    def test_bad_type_raises(self):
        with pytest.raises(TypeMismatchError):
            Column("X", "BLOB")


class TestTable:
    def test_insert_and_len(self):
        table = Table("T", [Column("A", "INTEGER")], rows=[(1,), (2,)])
        assert len(table) == 2

    def test_insert_dict_row(self):
        table = Table("T", [Column("A", "INTEGER"), Column("B", "TEXT")])
        table.insert({"B": "x", "A": 1})
        assert table.rows == [(1, "x")]

    def test_arity_checked(self):
        table = Table("T", [Column("A", "INTEGER")])
        with pytest.raises(TypeMismatchError):
            table.insert((1, 2))

    def test_type_checked(self):
        table = Table("T", [Column("A", "INTEGER")])
        with pytest.raises(TypeMismatchError):
            table.insert(("nope",))

    def test_int_widens_into_float(self):
        table = Table("T", [Column("A", "FLOAT")], rows=[(3,)])
        assert table.rows[0][0] == 3.0

    def test_null_always_allowed(self):
        table = Table("T", [Column("A", "INTEGER")], rows=[(None,)])
        assert table.rows[0][0] is None

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TypeMismatchError):
            Table("T", [Column("A", "INTEGER"), Column("a", "TEXT")])

    def test_column_lookup(self):
        table = Table("T", [Column("A", "INTEGER")])
        assert table.column_position("a") == 0
        assert table.has_column("A")
        with pytest.raises(UnknownColumnError):
            table.column_position("B")

    def test_top_values_by_frequency_then_text(self):
        table = Table(
            "T", [Column("C", "TEXT")],
            rows=[("b",), ("a",), ("a",), ("c",), ("b",), ("a",), (None,)],
        )
        assert table.top_values("C", 2) == ["a", "b"]

    def test_top_values_ignores_nulls(self):
        table = Table("T", [Column("C", "TEXT")], rows=[(None,), ("x",)])
        assert table.top_values("C") == ["x"]

    def test_profile(self):
        table = Table(
            "T", [Column("A", "INTEGER"), Column("B", "TEXT")],
            rows=[(1, "x"), (2, "x")],
        )
        profile = profile_table(table)
        assert profile.row_count == 2
        assert profile.column_types == {"A": "INTEGER", "B": "TEXT"}
        assert profile.top_values["B"] == ["x"]


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database("d")
        db.create_table("T", [Column("A", "INTEGER")])
        assert db.has_table("t")
        assert db.table("T").name == "T"

    def test_unknown_table_error_lists_known(self):
        db = Database("d")
        db.create_table("KNOWN", [Column("A", "INTEGER")])
        with pytest.raises(UnknownTableError, match="KNOWN"):
            db.table("nope")

    def test_tables_in_creation_order(self):
        db = Database("d")
        db.create_table("ZEBRA", [Column("A", "INTEGER")])
        db.create_table("APPLE", [Column("A", "INTEGER")])
        assert [t.name for t in db.tables] == ["ZEBRA", "APPLE"]

    def test_schema_text_includes_values(self):
        db = Database("d")
        db.create_table(
            "T", [Column("C", "TEXT", "A column.")], rows=[("v",)]
        )
        text = db.schema_text(include_values=True)
        assert "TABLE T" in text and "'v'" in text and "A column." in text

    def test_profiles(self):
        db = Database("d")
        db.create_table("T", [Column("A", "INTEGER")], rows=[(1,)])
        assert db.profiles()["T"].row_count == 1

"""Prompt/token accounting and simulated-LLM operator tests."""

import pytest

from repro.llm.interface import (
    GPT_4O,
    GPT_4O_MINI,
    CallMeter,
    LlmCall,
    ModelSpec,
    Prompt,
    count_tokens,
    resolve_model_spec,
)
from repro.llm.simulated import SimulatedLLM
from repro.obs.tracing import Tracer


class TestTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_roughly_four_chars_per_token(self):
        assert count_tokens("a" * 400) == 100

    def test_minimum_one(self):
        assert count_tokens("a") == 1


class TestPrompt:
    def make(self):
        prompt = Prompt(task="Do the thing.")
        prompt.add_section("A", ["entry one", "entry two"])
        prompt.add_section("B", ["x" * 400, "y" * 400, "z" * 400])
        return prompt

    def test_render_contains_sections(self):
        text = self.make().render()
        assert "## A" in text and "entry one" in text

    def test_token_count_positive(self):
        assert self.make().token_count > 0

    def test_fit_to_budget_drops_last_section_first(self):
        prompt = self.make()
        dropped = prompt.fit_to_budget(100)
        assert dropped.get("B", 0) >= 1
        assert prompt.token_count <= 100 or not prompt.sections[-1].entries

    def test_fit_preserves_when_within_budget(self):
        prompt = self.make()
        assert prompt.fit_to_budget(10_000) == {}
        assert len(prompt.sections[1].entries) == 3

    def test_fit_stops_when_nothing_left(self):
        prompt = Prompt(task="t" * 4000)
        assert prompt.fit_to_budget(10) == {}


class TestMeter:
    def test_cost_accumulates(self):
        meter = CallMeter()
        prompt = Prompt(task="hello world " * 100)
        meter.record("op1", GPT_4O, prompt, "output " * 50)
        meter.record("op2", GPT_4O_MINI, prompt, "output")
        assert meter.total_cost_usd > 0
        assert meter.total_latency_ms == (
            GPT_4O.latency_ms_per_call + GPT_4O_MINI.latency_ms_per_call
        )
        assert set(meter.by_operator()) == {"op1", "op2"}

    def test_mini_is_cheaper(self):
        meter_big, meter_small = CallMeter(), CallMeter()
        prompt = Prompt(task="x" * 4000)
        meter_big.record("op", GPT_4O, prompt, "y" * 400)
        meter_small.record("op", GPT_4O_MINI, prompt, "y" * 400)
        assert meter_small.total_cost_usd < meter_big.total_cost_usd


class TestUnknownModels:
    """Regression: model names outside MODELS must never raise KeyError."""

    def test_custom_model_name_under_active_span(self):
        meter = CallMeter()
        tracer = Tracer()
        prompt = Prompt(task="hello " * 50)
        with tracer.span("op") as span:
            call = meter.record(
                "op", "claude-nonexistent-v9", prompt, "output"
            )
        # Recording annotates the span with cost — this used to KeyError.
        assert call.cost_usd == 0.0
        assert call.latency_ms == 0.0
        assert span.attributes["llm.cost_usd"] == 0.0
        assert span.attributes["llm.model"] == "claude-nonexistent-v9"
        assert meter.total_cost_usd == 0.0
        assert meter.total_latency_ms == 0.0

    def test_directly_constructed_call_with_unknown_model(self):
        call = LlmCall(
            operator="op", model="mystery", input_tokens=10, output_tokens=5
        )
        assert call.cost_usd == 0.0
        assert call.latency_ms == 0.0

    def test_duck_typed_spec_priced_as_given(self):
        class HomeGrown:
            name = "home-grown"
            context_tokens = 4000
            input_cost_per_million = 1.0
            output_cost_per_million = 4.0
            latency_ms_per_call = 100.0

        meter = CallMeter()
        call = meter.record(
            "op", HomeGrown(), Prompt(task="x" * 4000), "y" * 40
        )
        assert call.model == "home-grown"
        assert call.cost_usd == pytest.approx(
            (1000 * 1.0 + 10 * 4.0) / 1_000_000
        )
        assert call.latency_ms == 100.0

    def test_registered_spec_resolution_unchanged(self):
        assert resolve_model_spec("gpt-4o") is GPT_4O
        assert resolve_model_spec(GPT_4O_MINI) is GPT_4O_MINI
        fallback = resolve_model_spec("never-heard-of-it")
        assert isinstance(fallback, ModelSpec)
        assert fallback.input_cost_per_million == 0.0


def _reference_fit_to_budget(prompt, budget_tokens):
    """The original quadratic implementation: re-render per drop."""
    dropped = {}
    while prompt.token_count > budget_tokens:
        victim = None
        for section in reversed(prompt.sections):
            if section.entries:
                victim = section
                break
        if victim is None:
            return dropped
        victim.entries.pop()
        dropped[victim.title] = dropped.get(victim.title, 0) + 1
    return dropped


class TestFitToBudgetEquivalence:
    """The incremental fit must drop exactly what the quadratic fit did."""

    def _pair(self, builder):
        return builder(), builder()

    @pytest.mark.parametrize("budget", [10, 50, 100, 400, 1000, 10_000])
    def test_dropped_dicts_identical(self, budget):
        def build():
            prompt = Prompt(task="Answer the question.")
            prompt.add_section("schema", [f"col_{i}" * 9 for i in range(12)])
            prompt.add_section("examples", ["ex" * 150 for _ in range(8)])
            prompt.add_section(
                "instructions", ["", "short", "x" * 777, "mid " * 30]
            )
            return prompt

        fast, slow = self._pair(build)
        assert fast.fit_to_budget(budget) == \
            _reference_fit_to_budget(slow, budget)
        assert fast.render() == slow.render()
        assert fast.token_count == slow.token_count

    def test_empty_sections_and_task_only(self):
        fast, slow = self._pair(lambda: Prompt(task="t" * 4000))
        assert fast.fit_to_budget(10) == _reference_fit_to_budget(slow, 10)

        def with_empty():
            prompt = Prompt(task="go")
            prompt.add_section("empty", [])
            prompt.add_section("full", ["e" * 100 for _ in range(5)])
            return prompt

        fast, slow = self._pair(with_empty)
        assert fast.fit_to_budget(20) == _reference_fit_to_budget(slow, 20)
        assert fast.render() == slow.render()

    def test_non_string_entries(self):
        def build():
            prompt = Prompt(task="numbers")
            prompt.add_section("ints", list(range(1000, 1100)))
            return prompt

        fast, slow = self._pair(build)
        assert fast.fit_to_budget(30) == _reference_fit_to_budget(slow, 30)
        assert fast.render() == slow.render()


class TestSimulatedOperators:
    def test_reformulate_records_call(self):
        llm = SimulatedLLM()
        meter = CallMeter()
        output = llm.reformulate("What is the total revenue?", meter=meter)
        assert output.startswith("Show me")
        assert meter.calls[0].operator == "reformulate"

    def test_classify_intents_uses_terms(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        llm = SimulatedLLM()
        intents = llm.classify_intents(
            "Show me the QoQFP for Q2 2023", knowledge, k=1
        )
        assert intents
        assert knowledge.intent(intents[0]).name == "financial performance"

    def test_link_schema_prefers_named_columns(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["energy_grid"]
        llm = SimulatedLLM()
        linked = llm.link_schema(
            "Show me the total output per zone",
            knowledge.schema_elements(), k=10,
        )
        names = {element.qualified_name for element in linked}
        assert "READINGS.GRID_ZONE" in names
        assert "READINGS.OUTPUT_MWH" in names

    def test_link_schema_keeps_table_elements_early(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        llm = SimulatedLLM()
        linked = llm.link_schema(
            "Show me the total revenue", knowledge.schema_elements(), k=8
        )
        first_column_index = next(
            index for index, element in enumerate(linked)
            if not element.is_table
        )
        table_indices = [
            index for index, element in enumerate(linked) if element.is_table
        ]
        assert table_indices and min(table_indices) < len(linked)

"""Prompt/token accounting and simulated-LLM operator tests."""

import pytest

from repro.llm.interface import (
    GPT_4O,
    GPT_4O_MINI,
    CallMeter,
    Prompt,
    count_tokens,
)
from repro.llm.simulated import SimulatedLLM


class TestTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_roughly_four_chars_per_token(self):
        assert count_tokens("a" * 400) == 100

    def test_minimum_one(self):
        assert count_tokens("a") == 1


class TestPrompt:
    def make(self):
        prompt = Prompt(task="Do the thing.")
        prompt.add_section("A", ["entry one", "entry two"])
        prompt.add_section("B", ["x" * 400, "y" * 400, "z" * 400])
        return prompt

    def test_render_contains_sections(self):
        text = self.make().render()
        assert "## A" in text and "entry one" in text

    def test_token_count_positive(self):
        assert self.make().token_count > 0

    def test_fit_to_budget_drops_last_section_first(self):
        prompt = self.make()
        dropped = prompt.fit_to_budget(100)
        assert dropped.get("B", 0) >= 1
        assert prompt.token_count <= 100 or not prompt.sections[-1].entries

    def test_fit_preserves_when_within_budget(self):
        prompt = self.make()
        assert prompt.fit_to_budget(10_000) == {}
        assert len(prompt.sections[1].entries) == 3

    def test_fit_stops_when_nothing_left(self):
        prompt = Prompt(task="t" * 4000)
        assert prompt.fit_to_budget(10) == {}


class TestMeter:
    def test_cost_accumulates(self):
        meter = CallMeter()
        prompt = Prompt(task="hello world " * 100)
        meter.record("op1", GPT_4O, prompt, "output " * 50)
        meter.record("op2", GPT_4O_MINI, prompt, "output")
        assert meter.total_cost_usd > 0
        assert meter.total_latency_ms == (
            GPT_4O.latency_ms_per_call + GPT_4O_MINI.latency_ms_per_call
        )
        assert set(meter.by_operator()) == {"op1", "op2"}

    def test_mini_is_cheaper(self):
        meter_big, meter_small = CallMeter(), CallMeter()
        prompt = Prompt(task="x" * 4000)
        meter_big.record("op", GPT_4O, prompt, "y" * 400)
        meter_small.record("op", GPT_4O_MINI, prompt, "y" * 400)
        assert meter_small.total_cost_usd < meter_big.total_cost_usd


class TestSimulatedOperators:
    def test_reformulate_records_call(self):
        llm = SimulatedLLM()
        meter = CallMeter()
        output = llm.reformulate("What is the total revenue?", meter=meter)
        assert output.startswith("Show me")
        assert meter.calls[0].operator == "reformulate"

    def test_classify_intents_uses_terms(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        llm = SimulatedLLM()
        intents = llm.classify_intents(
            "Show me the QoQFP for Q2 2023", knowledge, k=1
        )
        assert intents
        assert knowledge.intent(intents[0]).name == "financial performance"

    def test_link_schema_prefers_named_columns(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["energy_grid"]
        llm = SimulatedLLM()
        linked = llm.link_schema(
            "Show me the total output per zone",
            knowledge.schema_elements(), k=10,
        )
        names = {element.qualified_name for element in linked}
        assert "READINGS.GRID_ZONE" in names
        assert "READINGS.OUTPUT_MWH" in names

    def test_link_schema_keeps_table_elements_early(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        llm = SimulatedLLM()
        linked = llm.link_schema(
            "Show me the total revenue", knowledge.schema_elements(), k=8
        )
        first_column_index = next(
            index for index, element in enumerate(linked)
            if not element.is_table
        )
        table_indices = [
            index for index, element in enumerate(linked) if element.is_table
        ]
        assert table_indices and min(table_indices) < len(linked)

"""Text substrate tests: normalisation, TF-IDF, similarity, index."""

import pytest

from repro.text import (
    RetrievalIndex,
    TfIdfVectorizer,
    char_ngrams,
    cosine,
    cosine_with_norms,
    jaccard,
    l2_norm,
    ngrams,
    normalize,
    overlap_coefficient,
    stem,
    tokenize_text,
)


class TestNormalize:
    def test_tokenize_lowercases(self):
        assert tokenize_text("Hello World") == ["hello", "world"]

    def test_apostrophes_kept(self):
        assert tokenize_text("it's") == ["it's"]

    def test_stopwords_removed(self):
        assert "the" not in normalize("the revenue of the org")

    def test_our_is_not_a_stopword(self):
        # 'our' carries enterprise meaning (ownership) — must survive.
        assert "our" in normalize("our organisations")

    @pytest.mark.parametrize("word,expected", [
        ("organizations", "organiz"),
        ("leagues", "league"),
        ("courses", "course"),
        ("statuses", "status"),
        ("cities", "city"),
        ("running", "runn"),
        ("cat", "cat"),
    ])
    def test_stem(self, word, expected):
        assert stem(word) == expected

    def test_stem_consistency_plural_singular(self):
        # plural and singular of common nouns unify
        for word in ["league", "zone", "region", "store", "plant"]:
            assert stem(word + "s") == stem(word)

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a_b", "b_c"]
        assert ngrams(["a"], 2) == []

    def test_char_ngrams(self):
        assert char_ngrams("abcd", 3) == ["abc", "bcd"]
        assert char_ngrams("ab", 3) == ["ab"]
        assert char_ngrams("", 3) == []


class TestVectorizer:
    def test_transform_normalised(self):
        vectorizer = TfIdfVectorizer().fit(["alpha beta", "beta gamma"])
        vector = vectorizer.transform("alpha beta")
        norm = sum(value * value for value in vector.values())
        assert norm == pytest.approx(1.0)

    def test_rare_term_weighs_more(self):
        corpus = ["common word here"] * 5 + ["rare qoqfp metric"]
        vectorizer = TfIdfVectorizer(use_char_ngrams=False).fit(corpus)
        vector = vectorizer.transform("common qoqfp")
        assert vector["qoqfp"] > vector["common"]

    def test_empty_text(self):
        vectorizer = TfIdfVectorizer().fit(["x"])
        assert vectorizer.transform("") == {}

    def test_unfitted_flag(self):
        assert not TfIdfVectorizer().is_fitted
        assert TfIdfVectorizer().fit(["a"]).is_fitted


class TestSimilarity:
    def test_cosine_identical(self):
        v = {"a": 0.6, "b": 0.8}
        assert cosine(v, v) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_cosine_empty(self):
        assert cosine({}, {"a": 1.0}) == 0.0

    def test_jaccard(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 0.0

    def test_overlap_coefficient(self):
        assert overlap_coefficient(["a"], ["a", "b", "c"]) == 1.0
        assert overlap_coefficient([], ["a"]) == 0.0

    def test_l2_norm(self):
        assert l2_norm({"a": 3.0, "b": 4.0}) == pytest.approx(5.0)
        assert l2_norm({}) == 0.0

    def test_cosine_with_norms_matches_cosine(self):
        left = {"a": 1.0, "b": 2.0}
        right = {"b": 0.5, "c": 4.0}
        assert cosine_with_norms(
            left, right, l2_norm(left), l2_norm(right)
        ) == pytest.approx(cosine(left, right))

    def test_cosine_with_norms_zero_norm(self):
        assert cosine_with_norms({"a": 1.0}, {"a": 1.0}, 0.0, 1.0) == 0.0


class TestRetrievalIndex:
    @pytest.fixture()
    def index(self):
        index = RetrievalIndex()
        index.add("d1", "total revenue per organisation")
        index.add("d2", "television viewers per month")
        index.add("d3", "sponsorship deal value")
        return index

    def test_search_ranks_relevant_first(self, index):
        hits = index.search("revenue of organisations", k=3)
        assert hits[0].doc_id == "d1"

    def test_candidates_restrict_pool(self, index):
        hits = index.search("revenue", k=3, candidates=["d2", "d3"])
        assert {hit.doc_id for hit in hits} <= {"d2", "d3"}

    def test_extra_text_expands_query(self, index):
        plain = index.search("numbers", k=1)
        expanded = index.search("numbers", k=1, extra_text="television viewers")
        assert expanded[0].doc_id == "d2"
        assert expanded[0].score >= plain[0].score if plain else True

    def test_remove(self, index):
        index.remove("d1")
        assert "d1" not in index
        assert all(hit.doc_id != "d1" for hit in index.search("revenue"))

    def test_replace_document(self, index):
        index.add("d1", "completely different text about sponsors")
        hits = index.search("sponsors", k=2)
        assert "d1" in {hit.doc_id for hit in hits}

    def test_score_single_document(self, index):
        assert index.score("revenue", "d1") > index.score("revenue", "d2")
        assert index.score("revenue", "missing") == 0.0

    def test_len_and_get(self, index):
        assert len(index) == 3
        assert index.get("d2").text.startswith("television")

    def test_metadata_preserved(self):
        index = RetrievalIndex()
        index.add("x", "text", {"kind": "example"})
        assert index.get("x").metadata["kind"] == "example"

    def test_search_falls_back_to_scan_when_no_term_overlap(self, index):
        hits = index.search("zzz qqq", k=1)
        assert len(hits) <= 1  # no crash; may return weak or no hit

    def test_norms_precomputed_on_refresh(self, index):
        index.search("revenue", k=1)  # forces a refresh
        for document in index.documents():
            assert document.norm == pytest.approx(l2_norm(document.vector))
            assert document.norm > 0

    def test_add_invalidates_norms_and_query_cache(self, index):
        index.search("sponsors", k=3)  # warm query cache + norms
        index.add("d4", "sponsors sponsors sponsors everywhere")
        hits = index.search("sponsors", k=1)
        assert hits[0].doc_id == "d4"
        assert index.get("d4").norm > 0

    def test_remove_invalidates_norms_and_query_cache(self, index):
        assert index.search("revenue", k=1)[0].doc_id == "d1"
        index.remove("d1")
        hits = index.search("revenue", k=3)
        assert all(hit.doc_id != "d1" for hit in hits)

    def test_repeated_query_uses_cached_embedding(self, index):
        first = index.search("revenue of organisations", k=3)
        second = index.search("revenue of organisations", k=3)
        assert [(h.doc_id, h.score) for h in first] == [
            (h.doc_id, h.score) for h in second
        ]
        assert "revenue of organisations" in index._query_cache

    def test_fallback_scan_capped_on_large_collection(self, caplog):
        from repro.text.index import FALLBACK_SCAN_CAP

        big = RetrievalIndex()
        for position in range(FALLBACK_SCAN_CAP + 10):
            big.add(f"doc-{position}", f"alpha beta entry {position}")
        big.search("alpha", k=1)  # refresh
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.text.index"):
            pool = big._candidate_pool("zzzz qqqq", None)
        assert len(pool) == FALLBACK_SCAN_CAP
        assert "capping fallback scan" in caplog.text

    def test_fallback_scan_uncapped_on_small_collection(self, index):
        assert len(index._candidate_pool("zzzz qqqq", None)) == len(index)

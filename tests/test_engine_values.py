"""Value semantics tests: NULLs, comparison, arithmetic, CAST, ordering."""

import datetime

import pytest

from repro.engine.errors import TypeMismatchError
from repro.engine import values


class TestTypeOf:
    @pytest.mark.parametrize("value,expected", [
        (1, "INTEGER"), (1.5, "FLOAT"), ("x", "TEXT"), (True, "BOOLEAN"),
        (datetime.date(2023, 1, 1), "DATE"),
    ])
    def test_types(self, value, expected):
        assert values.type_of(value) == expected

    def test_null_has_no_type(self):
        assert values.type_of(None) is None

    def test_unsupported_value_raises(self):
        with pytest.raises(TypeMismatchError):
            values.type_of([1, 2])

    def test_canonical_type_aliases(self):
        assert values.canonical_type("varchar") == "TEXT"
        assert values.canonical_type("BIGINT") == "INTEGER"
        assert values.canonical_type("double") == "FLOAT"

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            values.canonical_type("BLOB")


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert values.logical_and(True, True) is True
        assert values.logical_and(True, False) is False
        assert values.logical_and(False, None) is False
        assert values.logical_and(True, None) is None
        assert values.logical_and(None, None) is None

    def test_or_truth_table(self):
        assert values.logical_or(False, False) is False
        assert values.logical_or(False, True) is True
        assert values.logical_or(True, None) is True
        assert values.logical_or(False, None) is None

    def test_not(self):
        assert values.logical_not(True) is False
        assert values.logical_not(None) is None

    def test_is_true_rejects_null(self):
        assert values.is_true(True)
        assert not values.is_true(None)
        assert not values.is_true(False)


class TestCompare:
    def test_numeric_cross_type(self):
        assert values.compare(1, 1.0) == 0
        assert values.compare(1, 2.5) == -1

    def test_null_propagates(self):
        assert values.compare(None, 1) is None
        assert values.compare(1, None) is None

    def test_text(self):
        assert values.compare("a", "b") == -1

    def test_dates(self):
        assert values.compare(
            datetime.date(2023, 1, 1), datetime.date(2023, 6, 1)
        ) == -1

    def test_number_vs_numeric_text(self):
        assert values.compare(5, "5") == 0
        assert values.compare(5, "6") == -1

    def test_number_vs_non_numeric_text_compares_as_text(self):
        assert values.compare(5, "abc") == -1  # "5" < "abc"

    def test_date_vs_iso_text(self):
        assert values.compare(
            datetime.date(2023, 1, 1), "2023-01-01"
        ) == 0

    def test_bools_compare_as_ints(self):
        assert values.compare(True, False) == 1
        assert values.compare(True, 1) == 0

    def test_equals(self):
        assert values.equals(1, 1) is True
        assert values.equals(1, 2) is False
        assert values.equals(None, 1) is None


class TestArithmetic:
    def test_basic_ops(self):
        assert values.arithmetic("+", 2, 3) == 5
        assert values.arithmetic("-", 2, 3) == -1
        assert values.arithmetic("*", 2, 3) == 6
        assert values.arithmetic("%", 7, 3) == 1

    def test_division_yields_float(self):
        assert values.arithmetic("/", 7, 2) == 3.5

    def test_division_by_zero_is_null(self):
        assert values.arithmetic("/", 1, 0) is None
        assert values.arithmetic("%", 1, 0) is None

    def test_null_propagation(self):
        assert values.arithmetic("+", None, 1) is None
        assert values.arithmetic("*", 1, None) is None

    def test_concat_operator(self):
        assert values.arithmetic("||", "a", "b") == "ab"
        assert values.arithmetic("||", "n=", 5) == "n=5"

    def test_numeric_text_coerced(self):
        assert values.arithmetic("+", "2", 3) == 5

    def test_non_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            values.arithmetic("+", "abc", 1)

    def test_bool_coerces_to_int(self):
        assert values.arithmetic("+", True, True) == 2


class TestCast:
    def test_cast_null(self):
        assert values.cast_value(None, "INTEGER") is None

    @pytest.mark.parametrize("value,target,expected", [
        (1.9, "INTEGER", 1),
        ("42", "INTEGER", 42),
        (3, "FLOAT", 3.0),
        ("2.5", "FLOAT", 2.5),
        (5, "TEXT", "5"),
        (True, "TEXT", "TRUE"),
        ("true", "BOOLEAN", True),
        ("0", "BOOLEAN", False),
        (1, "BOOLEAN", True),
        ("2023-04-05", "DATE", datetime.date(2023, 4, 5)),
    ])
    def test_casts(self, value, target, expected):
        assert values.cast_value(value, target) == expected

    def test_bad_casts_raise(self):
        with pytest.raises(TypeMismatchError):
            values.cast_value("abc", "INTEGER")
        with pytest.raises(TypeMismatchError):
            values.cast_value("not-a-date", "DATE")

    def test_render_text_forms(self):
        assert values.render_text(None) == "NULL"
        assert values.render_text(2.0) == "2.0"
        assert values.render_text(datetime.date(2023, 1, 2)) == "2023-01-02"


class TestSortKey:
    def test_ascending_nulls_last(self):
        data = [3, None, 1]
        data.sort(key=lambda v: values.sort_key(v, ascending=True))
        assert data == [1, 3, None]

    def test_descending_nulls_first(self):
        data = [3, None, 1]
        data.sort(key=lambda v: values.sort_key(v, ascending=False))
        assert data == [None, 3, 1]

    def test_explicit_nulls_first_ascending(self):
        data = [3, None, 1]
        data.sort(key=lambda v: values.sort_key(v, True, nulls_first=True))
        assert data == [None, 1, 3]

    def test_descending_values(self):
        data = [1, 3, 2]
        data.sort(key=lambda v: values.sort_key(v, ascending=False))
        assert data == [3, 2, 1]

    def test_descending_strings(self):
        data = ["a", "c", "b"]
        data.sort(key=lambda v: values.sort_key(v, ascending=False))
        assert data == ["c", "b", "a"]

    def test_mixed_int_float(self):
        data = [2.5, 1, 3]
        data.sort(key=lambda v: values.sort_key(v))
        assert data == [1, 2.5, 3]

    def test_dates_order(self):
        a, b = datetime.date(2022, 1, 1), datetime.date(2023, 1, 1)
        data = [b, a]
        data.sort(key=lambda v: values.sort_key(v))
        assert data == [a, b]


class TestComparableCell:
    def test_int_float_unify(self):
        assert values.comparable_cell(5.0) == values.comparable_cell(5)

    def test_float_rounding(self):
        a = 0.1 + 0.2
        assert values.comparable_cell(a) == values.comparable_cell(0.3)

    def test_bool_unifies_with_int(self):
        assert values.comparable_cell(True) == 1

    def test_date_becomes_iso(self):
        assert values.comparable_cell(datetime.date(2023, 2, 3)) == "2023-02-03"

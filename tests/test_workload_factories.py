"""Workload factory tests: NL/gold-spec consistency per question kind."""

import random

import pytest

from repro.bench.schemas import build_profile
from repro.bench.workloads import SchemaInfo, _Factory, pluralize
from repro.engine import Executor
from repro.pipeline.builders import build_sql
from repro.pipeline.nlparse import parse_question
from repro.sql.parser import parse


@pytest.fixture()
def factory(sports_profile):
    return _Factory(SchemaInfo(sports_profile), random.Random(42))


def check(result, sports_profile):
    """Every factory output must render gold SQL that parses and executes."""
    assert result is not None
    spec, question, features, intent = result
    sql = build_sql(spec)
    parse(sql)
    Executor(sports_profile.database).execute(sql)
    return spec, question, features


class TestSchemaInfo:
    def test_entity_surface_from_description(self, sports_profile):
        info = SchemaInfo(sports_profile)
        assert info.entity_surface("SPORTS_ORGS") == "sports organisation"

    def test_metric_columns_exclude_ids_and_years(self, sports_profile):
        info = SchemaInfo(sports_profile)
        names = [name for name, _surface in info.metric_columns("SPORTS_ORGS")]
        assert "ORG_ID" not in names
        assert "FOUNDED_YEAR" not in names
        assert "ARENA_CAPACITY" in names

    def test_categorical_excludes_label_column(self, sports_profile):
        info = SchemaInfo(sports_profile)
        names = [
            name for name, _s, _v in info.categorical_columns("SPORTS_ORGS")
        ]
        assert "ORG_NAME" not in names
        assert "COUNTRY" in names

    def test_rare_values_disjoint_from_top(self, sports_profile):
        info = SchemaInfo(sports_profile)
        top = set(info.top_values("SPORTS_ORGS", "CITY"))
        rare = set(info.rare_values("SPORTS_ORGS", "CITY"))
        assert top.isdisjoint(rare)

    @pytest.mark.parametrize("word,plural", [
        ("order", "orders"), ("city", "cities"), ("course", "courses"),
        ("sports organisation", "sports organisations"),
    ])
    def test_pluralize(self, word, plural):
        assert pluralize(word) == plural


class TestFactories:
    def test_count_question(self, factory, sports_profile):
        spec, question, _ = check(
            factory.count_question("SPORTS_ORGS"), sports_profile
        )
        assert question.startswith("How many")
        assert spec.metrics[0].agg == "COUNT"
        parsed = parse_question(question)
        assert parsed.metric_agg == "COUNT"

    def test_agg_question_parses_back(self, factory, sports_profile):
        spec, question, _ = check(
            factory.agg_question("SPORTS_FINANCIALS"), sports_profile
        )
        parsed = parse_question(question)
        assert parsed.metric_agg == spec.metrics[0].agg

    def test_quarter_question_round_trips(self, factory, sports_profile):
        spec, question, features = check(
            factory.agg_question("SPORTS_FINANCIALS", quarter_filter=True),
            sports_profile,
        )
        assert "quarter" in features
        parsed = parse_question(question)
        quarter = spec.quarter_filters[0]
        assert parsed.quarter == (quarter.year, quarter.quarter)

    def test_vague_question_surface_not_in_catalog(
        self, factory, sports_profile
    ):
        spec, question, features = check(
            factory.agg_question("SPORTS_FINANCIALS", vague=True),
            sports_profile,
        )
        assert "trap:vague" in features
        # vague surfaces never name the real column
        column = spec.metrics[0].column.lower().replace("_", " ")
        assert column not in question.lower()

    def test_guideline_question(self, factory, sports_profile):
        spec, question, features = check(
            factory.guideline_question("SPORTS_ORGS"), sports_profile
        )
        assert any(f.startswith("needs:guideline") for f in features)
        assert spec.filters[0].raw

    def test_unknown_adjective_question(self, factory, sports_profile):
        spec, question, features = check(
            factory.unknown_adjective_question(), sports_profile
        )
        assert "trap:unknown-adjective" in features

    def test_listing_question(self, factory, sports_profile):
        spec, question, _ = check(
            factory.listing_question("SPORTS_ORGS"), sports_profile
        )
        assert "ordered by" in question
        assert len(spec.projection) == 2

    def test_group_question(self, factory, sports_profile):
        spec, question, _ = check(
            factory.group_question("SPORTS_FINANCIALS"), sports_profile
        )
        assert " per " in question
        assert spec.group_by

    def test_topk_question(self, factory, sports_profile):
        spec, question, _ = check(
            factory.topk_question("SPORTS_FINANCIALS"), sports_profile
        )
        assert question.startswith("Show me the top")
        assert spec.order.limit in (3, 5)

    def test_term_question_uses_glossary(self, factory, sports_profile):
        spec, question, features = check(
            factory.term_question("SPORTS_FINANCIALS"), sports_profile
        )
        assert spec.metrics[0].agg == "EXPR"
        assert any(f.startswith("needs:term") for f in features)

    def test_both_ends_question(self, factory, sports_profile):
        spec, question, _ = check(
            factory.both_ends_question("SPORTS_FINANCIALS"), sports_profile
        )
        assert "best and worst" in question
        assert spec.shape == "topk_both_ends"

    def test_delta_question(self, factory, sports_profile):
        spec, question, _ = check(
            factory.delta_question("SPORTS_FINANCIALS"), sports_profile
        )
        assert "versus the previous quarter" in question
        assert spec.ratio_delta is not None
        assert not spec.ratio_delta.denominator_table

    def test_ratio_term_question(self, factory, sports_profile):
        spec, question, features = check(
            factory.ratio_term_question(bare_value="Canada"), sports_profile
        )
        assert "QoQFP" in question
        params = spec.ratio_delta
        assert params.denominator_table == "SPORTS_VIEWERSHIP"
        assert params.negate
        # 'our' + Canada filters distributed to the tables that have them
        assert any(
            flt.raw.startswith("OWNERSHIP_FLAG")
            for flt in params.numerator_filters if flt.raw
        )
        assert not any(
            flt.raw.startswith("OWNERSHIP_FLAG")
            for flt in params.denominator_filters if flt.raw
        )

    def test_share_question(self, factory, sports_profile):
        result = factory.share_question("SPORTS_FINANCIALS")
        spec, question, _ = check(result, sports_profile)
        assert question.startswith("Show me the share of total")
        assert spec.shape == "share_of_total"

    def test_factories_handle_missing_prerequisites(self, sports_profile):
        info = SchemaInfo(sports_profile)
        factory = _Factory(info, random.Random(1))
        # SPONSORSHIPS has no date column: quarter variants degrade cleanly
        result = factory.delta_question("SPONSORSHIPS")
        assert result is None

"""Cross-cutting edge cases collected during calibration."""

import pytest

from repro.engine import Column, Database, Executor
from repro.pipeline.prompt import (
    assemble_prompt,
    render_example,
    render_instruction,
    render_schema_element,
)
from repro.sql.parser import parse
from repro.sql.printer import to_sql


class TestExecutorEdges:
    def test_empty_table_queries(self):
        db = Database("e")
        db.create_table("T", [Column("A", "INTEGER")])
        executor = Executor(db)
        assert executor.execute("SELECT * FROM T").rows == []
        assert executor.execute("SELECT COUNT(*) FROM T").rows == [(0,)]
        assert executor.execute(
            "SELECT A, COUNT(*) FROM T GROUP BY A"
        ).rows == []

    def test_division_by_zero_yields_null_row(self, executor):
        result = executor.execute("SELECT 1 / 0")
        assert result.rows == [(None,)]

    def test_nullif_guard_pattern(self, executor):
        result = executor.execute(
            "SELECT CAST(SUM(SALARY) AS FLOAT) / NULLIF(COUNT(*), 0) FROM EMP "
            "WHERE SALARY > 10000"
        )
        assert result.rows == [(None,)]

    def test_string_comparison_case_sensitive_equality(self, executor):
        exact = executor.execute(
            "SELECT 1 FROM DEPT WHERE REGION = 'West'"
        ).rows
        wrong_case = executor.execute(
            "SELECT 1 FROM DEPT WHERE REGION = 'west'"
        ).rows
        assert len(exact) == 2 and wrong_case == []

    def test_like_with_underscore_wildcard(self, executor):
        result = executor.execute(
            "SELECT EMP_NAME FROM EMP WHERE EMP_NAME LIKE 'A_a'"
        )
        assert {row[0] for row in result.rows} == {"Ada"}

    def test_in_list_with_null_semantics(self, executor):
        # NULL IN (...) is never true
        result = executor.execute(
            "SELECT COUNT(*) FROM EMP WHERE SALARY IN (70, NULL)"
        )
        assert result.rows == [(1,)]

    def test_not_in_with_null_rejects_all(self, executor):
        result = executor.execute(
            "SELECT COUNT(*) FROM EMP WHERE SALARY NOT IN (70, NULL)"
        )
        assert result.rows == [(0,)]

    def test_order_by_expression_not_in_select(self, executor):
        result = executor.execute(
            "SELECT EMP_NAME FROM EMP WHERE SALARY IS NOT NULL "
            "ORDER BY SALARY * -1 LIMIT 1"
        )
        assert result.rows == [("Grace",)]

    def test_between_text(self, executor):
        result = executor.execute(
            "SELECT COUNT(*) FROM EMP WHERE EMP_NAME BETWEEN 'A' AND 'B'"
        )
        assert result.rows == [(2,)]  # Ada, Alan

    def test_nested_case(self, executor):
        result = executor.execute(
            "SELECT SUM(CASE WHEN ACTIVE THEN CASE WHEN SALARY > 100 "
            "THEN 1 ELSE 0 END ELSE 0 END) FROM EMP"
        )
        assert result.rows == [(2,)]

    def test_union_of_ctes(self, executor):
        result = executor.execute(
            "WITH a AS (SELECT 1 AS x), b AS (SELECT 2 AS x) "
            "SELECT x FROM a UNION ALL SELECT x FROM b"
        )
        assert sorted(row[0] for row in result.rows) == [1, 2]

    def test_self_join_with_aliases(self, executor):
        result = executor.execute(
            "SELECT COUNT(*) FROM EMP a JOIN EMP b "
            "ON a.DEPT_ID = b.DEPT_ID AND a.EMP_ID < b.EMP_ID"
        )
        assert result.rows == [(3,)]  # one pair per department

    def test_window_with_null_order_values(self, executor):
        result = executor.execute(
            "SELECT EMP_NAME, ROW_NUMBER() OVER (ORDER BY SALARY DESC) AS r "
            "FROM EMP ORDER BY r"
        )
        # NULL salary sorts first under DESC (nulls-first) but every row ranks
        assert len(result.rows) == 6
        assert {row[1] for row in result.rows} == set(range(1, 7))


class TestParserPrinterEdges:
    def test_deeply_nested_parentheses(self):
        sql = "SELECT ((((1))))"
        assert to_sql(parse(sql)) == "SELECT 1"

    def test_keywordish_type_names_as_identifiers(self):
        query = parse("SELECT t.DATE FROM t")
        assert to_sql(query) == "SELECT t.DATE FROM t"

    def test_boolean_operator_chain_precedence_preserved(self, executor):
        sql = (
            "SELECT COUNT(*) FROM EMP WHERE "
            "(DEPT_ID = 1 OR DEPT_ID = 2) AND ACTIVE"
        )
        round_tripped = to_sql(parse(sql))
        assert executor.execute(sql).rows == executor.execute(
            round_tripped
        ).rows

    def test_unary_minus_of_parenthesised_expression(self):
        rendered = to_sql(parse("SELECT -1 * (a - b) FROM t"))
        assert rendered == "SELECT -1 * (a - b) FROM t"


class TestPromptRendering:
    def test_render_instruction_includes_pattern(self):
        from repro.knowledge import Instruction

        instruction = Instruction(
            "i", "use COC flag", sql_pattern="OWNERSHIP = 'COC'"
        )
        rendered = render_instruction(instruction)
        assert rendered.startswith("- ")
        assert "=> OWNERSHIP = 'COC'" in rendered

    def test_ratio_dsl_pattern_not_leaked_into_prompt(self):
        from repro.knowledge import Instruction

        instruction = Instruction(
            "i", "QoQFP definition",
            sql_pattern="RATIO_DELTA numerator=A.B.C entity=D",
        )
        rendered = render_instruction(instruction)
        assert "RATIO_DELTA" not in rendered

    def test_render_example_pseudo_sql(self):
        from repro.knowledge import DecomposedExample

        example = DecomposedExample("e", "filter by country",
                                    "WHERE C = 'x'")
        rendered = render_example(example)
        assert "... WHERE C = 'x' ..." in rendered

    def test_render_schema_element_with_values(self):
        from repro.knowledge import SchemaElement

        element = SchemaElement(
            "s", "T", "C", "TEXT", "A column.", top_values=("a", "b")
        )
        rendered = render_schema_element(element)
        assert "T.C TEXT" in rendered and "[top: a, b]" in rendered

    def test_assemble_prompt_survivor_tracking(self):
        from repro.knowledge import SchemaElement

        elements = [
            SchemaElement(f"s{i}", "T", f"C{i}", "TEXT", "x" * 120)
            for i in range(20)
        ]
        fitted = assemble_prompt(
            "question", [], [], elements, budget_tokens=300
        )
        assert len(fitted.schema_elements) < 20
        assert fitted.dropped.get("Schema", 0) > 0
        # survivors are a prefix of the input ordering
        assert fitted.schema_elements == elements[: len(fitted.schema_elements)]


class TestSimulatedLlmEdges:
    def test_reformulate_idempotent(self):
        from repro.llm.simulated import SimulatedLLM

        llm = SimulatedLLM()
        once = llm.reformulate("What is the total revenue?")
        assert llm.reformulate(once) == once

    def test_grounding_with_empty_context_degrades(self):
        from repro.llm.grounding import Grounder, GroundingInput
        from repro.pipeline.nlparse import parse_question

        candidates = Grounder().ground(
            parse_question("What is the total revenue?"),
            GroundingInput(database_name="d"),
        )
        assert candidates[0].issues  # no schema context recorded

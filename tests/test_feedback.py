"""Continuous-improvement tests: directives, operators, solver, review."""

import pytest

from repro.feedback import (
    ACTION_DELETE,
    ACTION_INSERT,
    ACTION_UPDATE,
    ApprovalQueue,
    FeedbackSolver,
    GoldenQuery,
    SUBMISSION_MERGED,
    SUBMISSION_PENDING_APPROVAL,
    SUBMISSION_REJECTED,
    apply_edit,
    expand_feedback,
    generate_edits,
    generate_targets,
    parse_directives,
    plan_edits,
)
from repro.feedback.models import Feedback, next_feedback_id
from repro.knowledge import KnowledgeSet, KnowledgeSetHistory


def make_feedback(text):
    return Feedback(
        feedback_id=next_feedback_id(),
        question="q?",
        generated_sql="SELECT 1",
        text=text,
    )


class TestDirectives:
    def test_refers_to_column(self):
        directives = parse_directives(
            "'outlay' refers to the EXPENSES column in SPORTS_FINANCIALS.",
            None,
        )
        assert directives[0]["sql_pattern"] == (
            "COLUMN SPORTS_FINANCIALS.EXPENSES"
        )
        assert directives[0]["term"] == "outlay"

    def test_value_of(self):
        directives = parse_directives(
            "'Lisbon' is a value of STORES.CITY.", None
        )
        assert directives[0]["sql_pattern"] == "VALUE STORES.CITY"

    def test_means_with_filter(self):
        directives = parse_directives(
            "'premium' means high-value orders; filter AMOUNT > 800.", None
        )
        assert directives[0]["instruction_kind"] == "guideline"
        assert directives[0]["sql_pattern"] == "AMOUNT > 800"

    def test_means_same_as_known_term(self):
        knowledge = KnowledgeSet()
        from repro.knowledge import Instruction

        knowledge.add_instruction(
            Instruction(
                "in1", "AOV means average order value",
                kind="term_definition", term="AOV",
                sql_pattern="AVG(AMOUNT)", tables=("ORDERS",),
            )
        )
        directives = parse_directives(
            "'basket size' means the same as AOV", knowledge
        )
        assert directives[0]["sql_pattern"] == "AVG(AMOUNT)"

    def test_calculated_as(self):
        directives = parse_directives(
            "net margin should be calculated as "
            "SUM(REVENUE) - SUM(EXPENSES).",
            None,
        )
        assert directives[0]["term"] == "net margin"
        assert directives[0]["sql_pattern"].startswith("SUM(REVENUE)")

    def test_use_idiom_canned_fragment(self):
        directives = parse_directives(
            "use the topk_both_ends idiom", None
        )
        assert directives[0]["component"] == "example"
        assert "ROW_NUMBER" in directives[0]["sql"]
        assert directives[0]["pattern"] == "topk_both_ends"

    def test_unknown_idiom_without_fragment_skipped(self):
        assert parse_directives("use the frobnicate idiom", None) == []

    def test_update_component(self):
        directives = parse_directives(
            "ex-00001 should be SUM(X) instead", None
        )
        assert directives[0]["action"] == ACTION_UPDATE
        assert directives[0]["component_id"] == "ex-00001"

    def test_delete_component(self):
        directives = parse_directives("please delete ins-00002", None)
        assert directives[0]["action"] == ACTION_DELETE

    def test_vague_text_yields_no_directives(self):
        assert parse_directives("this looks wrong somehow", None) == []


class TestOperators:
    def test_targets_flag_unknown_quoted_terms(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total revenue?")
        feedback = make_feedback("'wobble' means something undefined")
        targets = generate_targets(
            feedback, result.context, sports_pipeline.knowledge
        )
        assert any(
            not target.component_id and "wobble" in target.reason
            for target in targets
        )

    def test_targets_match_retrieved_instructions(self, sports_pipeline):
        result = sports_pipeline.generate(
            "What is the RPV of our organisations?"
        )
        feedback = make_feedback(
            "the revenue per viewer calculation ignored viewers"
        )
        targets = generate_targets(
            feedback, result.context, sports_pipeline.knowledge
        )
        assert any(target.component_id for target in targets)

    def test_expand_includes_grounding_issues(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total gibberish?")
        feedback = make_feedback("wrong column used")
        targets = generate_targets(
            feedback, result.context, sports_pipeline.knowledge
        )
        expanded = expand_feedback(feedback, result, targets)
        assert "unresolved" in expanded.summary

    def test_plan_and_generate_insert(self):
        knowledge = KnowledgeSet()
        feedback = make_feedback(
            "'outlay' refers to the EXPENSES column in SPORTS_FINANCIALS."
        )
        steps, directives = plan_edits(feedback, None, knowledge)
        assert steps[0].action == ACTION_INSERT
        edits = generate_edits(feedback, directives, knowledge)
        assert edits[0].payload.term == "outlay"
        assert edits[0].payload.provenance.source_kind == "feedback"

    def test_fallback_guideline_on_vague_feedback(self):
        knowledge = KnowledgeSet()
        feedback = make_feedback("this is just wrong")
        _steps, directives = plan_edits(feedback, None, knowledge)
        edits = generate_edits(feedback, directives, knowledge)
        assert edits[0].kind == "instruction"
        assert edits[0].payload.text == "this is just wrong"

    def test_update_edit_rewrites_example(self):
        from repro.knowledge import DecomposedExample

        knowledge = KnowledgeSet()
        knowledge.add_example(
            DecomposedExample("ex-77777", "desc", "SUM(WRONG)")
        )
        feedback = make_feedback("ex-77777 should be SUM(RIGHT).")
        _steps, directives = plan_edits(feedback, None, knowledge)
        edits = generate_edits(feedback, directives, knowledge)
        assert edits[0].action == ACTION_UPDATE
        assert edits[0].payload.sql == "SUM(RIGHT)"

    def test_apply_edit_round_trip(self):
        knowledge = KnowledgeSet()
        feedback = make_feedback("'x' is a value of T.C.")
        _steps, directives = plan_edits(feedback, None, knowledge)
        edits = generate_edits(feedback, directives, knowledge)
        apply_edit(knowledge, edits[0])
        assert knowledge.stats()["instructions"] == 1


class TestSolverFlow:
    @pytest.fixture()
    def solver(self, experiment_context):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"].clone()
        pipeline = GenEditPipeline(profile.database, knowledge)
        golden = [
            GoldenQuery(entry.question, entry.sql)
            for entry in experiment_context.workload.training_logs[
                "sports_holdings"
            ][:2]
        ]
        return FeedbackSolver(pipeline, golden_queries=golden)

    def test_feedback_requires_question(self, solver):
        with pytest.raises(RuntimeError):
            solver.give_feedback("nope")

    def test_full_improvement_loop(self, solver):
        solver.ask("What is the average outlay?")
        recommendations = solver.give_feedback(
            "'outlay' refers to the EXPENSES column in SPORTS_FINANCIALS."
        )
        assert recommendations
        solver.stage()
        result = solver.regenerate()
        assert "EXPENSES" in result.sql
        submission = solver.submit()
        assert submission.status == SUBMISSION_PENDING_APPROVAL
        assert submission.regression_report.passed

    def test_staging_does_not_touch_live_knowledge(self, solver):
        before = solver.pipeline.knowledge.stats()["instructions"]
        solver.ask("What is the average outlay?")
        solver.give_feedback(
            "'outlay' refers to the EXPENSES column in SPORTS_FINANCIALS."
        )
        solver.stage()
        solver.regenerate()
        assert solver.pipeline.knowledge.stats()["instructions"] == before

    def test_dismiss_removes_from_staging(self, solver):
        solver.ask("What is the average outlay?")
        recommendations = solver.give_feedback(
            "'outlay' refers to the EXPENSES column in SPORTS_FINANCIALS."
        )
        solver.stage()
        solver.dismiss(recommendations[0].edit_id)
        assert solver.staged_edits() == []

    def test_iteration_counter(self, solver):
        solver.ask("What is the average outlay?")
        solver.give_feedback("hmm")
        solver.give_feedback("'outlay' refers to the EXPENSES column "
                             "in SPORTS_FINANCIALS.")
        assert solver.iterations == 2


class TestApprovalQueue:
    def test_approve_merges_and_records(self, experiment_context):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"].clone()
        history = KnowledgeSetHistory(knowledge)
        queue = ApprovalQueue(knowledge, history)
        pipeline = GenEditPipeline(profile.database, knowledge)
        solver = FeedbackSolver(pipeline, approval_queue=queue)
        solver.ask("What is the average outlay?")
        solver.give_feedback(
            "'outlay' refers to the EXPENSES column in SPORTS_FINANCIALS."
        )
        solver.stage()
        submission = solver.submit()
        assert submission.status == SUBMISSION_PENDING_APPROVAL
        assert queue.pending() == [submission]
        before = knowledge.stats()["instructions"]
        queue.approve(submission, reviewer="alice")
        assert submission.status == SUBMISSION_MERGED
        assert knowledge.stats()["instructions"] == before + 1
        assert history.records()[0].author == "alice"
        # merged edits create a checkpoint for reversion
        assert len(history.checkpoints()) == 2

    def test_reject(self, experiment_context):
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"].clone()
        queue = ApprovalQueue(knowledge)
        pipeline = GenEditPipeline(profile.database, knowledge)
        solver = FeedbackSolver(pipeline, approval_queue=queue)
        solver.ask("What is the average outlay?")
        solver.give_feedback("'outlay' refers to the EXPENSES column "
                             "in SPORTS_FINANCIALS.")
        solver.stage()
        submission = solver.submit()
        queue.reject(submission)
        assert submission.status == SUBMISSION_REJECTED
        assert queue.pending() == []

"""Operator-level tests over a handcrafted knowledge set."""

import pytest

from repro.knowledge import (
    DecomposedExample,
    Instruction,
    Intent,
    KnowledgeSet,
    SchemaElement,
)
from repro.llm.simulated import SimulatedLLM
from repro.pipeline.base import PipelineContext
from repro.pipeline.config import DEFAULT_CONFIG, PipelineConfig
from repro.pipeline.examples import ExampleSelectionOperator
from repro.pipeline.instructions import InstructionSelectionOperator
from repro.pipeline.intents import IntentClassificationOperator
from repro.pipeline.reformulate import ReformulateOperator
from repro.pipeline.schema_linking import SchemaLinkingOperator


@pytest.fixture()
def knowledge():
    ks = KnowledgeSet("ops")
    ks.add_intent(Intent("i-fin", "finance", "money questions"))
    ks.add_intent(Intent("i-hr", "people", "headcount questions"))
    for position in range(6):
        ks.add_example(
            DecomposedExample(
                f"exf{position}",
                f"finance fragment about revenue number {position}",
                f"SUM(REVENUE_{position})",
                intent_ids=("i-fin",),
            )
        )
    ks.add_example(
        DecomposedExample(
            "exh1", "people fragment about headcount",
            "COUNT(*)", intent_ids=("i-hr",),
        )
    )
    ks.add_instruction(
        Instruction(
            "insf", "ARR means annual recurring revenue",
            kind="term_definition", term="ARR",
            sql_pattern="SUM(REVENUE)", intent_ids=("i-fin",),
            tables=("LEDGER",),
        )
    )
    ks.add_instruction(
        Instruction(
            "insh", "'active' people means STATUS = 'active'",
            sql_pattern="STATUS = 'active'", intent_ids=("i-hr",),
        )
    )
    ks.add_schema_element(
        SchemaElement("st", "LEDGER", description="Each row is a ledger entry.")
    )
    ks.add_schema_element(
        SchemaElement(
            "sc1", "LEDGER", "REVENUE", "FLOAT", "Revenue amount.",
            intent_ids=("i-fin",),
        )
    )
    ks.add_schema_element(
        SchemaElement(
            "sc2", "LEDGER", "STATUS", "TEXT", "Entry status.",
            top_values=("active", "void"), intent_ids=("i-hr",),
        )
    )
    return ks


def make_context(knowledge, question, config=None, demo_db=None):
    from repro.engine import Database

    return PipelineContext(
        question=question,
        database=demo_db or Database("ops-db"),
        knowledge=knowledge,
        config=config or DEFAULT_CONFIG,
    )


class TestReformulate:
    def test_canonicalises(self, knowledge):
        context = make_context(knowledge, "What is the ARR?")
        ReformulateOperator(SimulatedLLM()).run(context)
        assert context.reformulated == "Show me the ARR"
        assert context.trace

    def test_disabled_passes_through(self, knowledge):
        config = PipelineConfig(use_reformulation=False)
        context = make_context(knowledge, "What is the ARR?", config)
        ReformulateOperator(SimulatedLLM()).run(context)
        assert context.reformulated == "What is the ARR?"


class TestIntentClassification:
    def test_classifies_by_similarity(self, knowledge):
        context = make_context(knowledge, "money questions about finance")
        context.reformulated = context.question
        IntentClassificationOperator(SimulatedLLM()).run(context)
        assert context.intent_ids[0] == "i-fin"

    def test_term_anchors_intent(self, knowledge):
        context = make_context(knowledge, "Show me the ARR")
        context.reformulated = context.question
        IntentClassificationOperator(SimulatedLLM()).run(context)
        assert context.intent_ids[0] == "i-fin"

    def test_disabled(self, knowledge):
        config = PipelineConfig(use_intent_classification=False)
        context = make_context(knowledge, "anything", config)
        context.reformulated = context.question
        IntentClassificationOperator(SimulatedLLM()).run(context)
        assert context.intent_ids == []


class TestExampleSelection:
    def test_intent_pool_preferred(self, knowledge):
        context = make_context(knowledge, "Show me the revenue fragment")
        context.reformulated = context.question
        context.intent_ids = ["i-fin"]
        ExampleSelectionOperator().run(context)
        assert context.examples
        # intent-pool examples dominate the selection (widening may add a
        # few similarity hits from other intents — that is by design)
        finance = [
            example for example in context.examples
            if "i-fin" in example.intent_ids
        ]
        assert len(finance) >= len(context.examples) - 1
        assert "i-fin" in context.examples[0].intent_ids

    def test_pool_retained_for_planning(self, knowledge):
        context = make_context(knowledge, "Show me the revenue")
        context.reformulated = context.question
        context.intent_ids = ["i-fin"]
        ExampleSelectionOperator().run(context)
        assert len(context.example_pool) >= len(context.examples)
        assert context.example_scores

    def test_widening_finds_cross_intent(self, knowledge):
        context = make_context(knowledge, "Show me the headcount of people")
        context.reformulated = context.question
        context.intent_ids = ["i-fin"]  # wrong intent on purpose
        ExampleSelectionOperator().run(context)
        ids = {example.example_id for example in context.examples}
        assert "exh1" in ids  # similarity widening rescued it


class TestInstructionSelection:
    def test_selects_relevant(self, knowledge):
        context = make_context(knowledge, "Show me the ARR")
        context.reformulated = context.question
        context.intent_ids = ["i-fin"]
        context.examples = []
        InstructionSelectionOperator().run(context)
        terms = {
            instruction.term for instruction in context.instructions
        }
        assert "ARR" in terms

    def test_term_anchor_forces_inclusion(self, knowledge):
        # Even with a tiny k and polluted expansion, the verbatim term wins.
        config = PipelineConfig(instruction_top_k=1)
        context = make_context(knowledge, "Show me the ARR of active people",
                               config)
        context.reformulated = context.question
        context.intent_ids = ["i-hr"]
        context.examples = list(knowledge.examples())[:3]
        InstructionSelectionOperator().run(context)
        terms = {
            instruction.term for instruction in context.instructions
        }
        assert "ARR" in terms

    def test_ablated_off(self, knowledge):
        config = DEFAULT_CONFIG.without("instructions")
        context = make_context(knowledge, "Show me the ARR", config)
        context.reformulated = context.question
        InstructionSelectionOperator().run(context)
        assert context.instructions == []


class TestSchemaLinking:
    def test_linked_subset_relevant_first(self, knowledge):
        context = make_context(knowledge, "Show me the total revenue")
        context.reformulated = context.question
        context.intent_ids = ["i-fin"]
        SchemaLinkingOperator(SimulatedLLM()).run(context)
        names = [
            element.qualified_name for element in context.schema_elements
        ]
        assert "LEDGER.REVENUE" in names

    def test_ablated_passes_full_catalog_in_order(self, knowledge):
        config = DEFAULT_CONFIG.without("schema_linking")
        context = make_context(knowledge, "anything", config)
        context.reformulated = context.question
        SchemaLinkingOperator(SimulatedLLM()).run(context)
        assert len(context.schema_elements) == 3

    def test_value_profiles_stripped(self, knowledge):
        config = PipelineConfig(use_value_profiles=False)
        context = make_context(knowledge, "Show me active entries", config)
        context.reformulated = context.question
        SchemaLinkingOperator(SimulatedLLM()).run(context)
        assert all(
            element.top_values == ()
            for element in context.schema_elements
        )

    def test_expansion_links_instruction_columns(self, knowledge):
        # The question never mentions 'revenue'; the ARR instruction does.
        context = make_context(knowledge, "Show me the ARR")
        context.reformulated = context.question
        context.intent_ids = ["i-fin"]
        context.instructions = [knowledge.instruction("insf")]
        SchemaLinkingOperator(SimulatedLLM()).run(context)
        names = [
            element.qualified_name for element in context.schema_elements
        ]
        assert "LEDGER.REVENUE" in names

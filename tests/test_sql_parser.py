"""Parser tests: every construct of the dialect."""

import pytest

from repro.sql import ast_nodes as ast
from repro.sql.errors import SqlSyntaxError
from repro.sql.parser import parse, parse_expression


def body(sql):
    return parse(sql).body


class TestSelectCore:
    def test_minimal_select(self):
        select = body("SELECT 1")
        assert isinstance(select, ast.Select)
        assert isinstance(select.items[0].expr, ast.Literal)
        assert select.from_clause is None

    def test_select_star(self):
        select = body("SELECT * FROM t")
        assert isinstance(select.items[0].expr, ast.Star)

    def test_qualified_star(self):
        select = body("SELECT t.* FROM t")
        assert select.items[0].expr.table == "t"

    def test_column_alias_with_as(self):
        select = body("SELECT a AS x FROM t")
        assert select.items[0].alias == "x"

    def test_column_alias_without_as(self):
        select = body("SELECT a x FROM t")
        assert select.items[0].alias == "x"

    def test_distinct(self):
        assert body("SELECT DISTINCT a FROM t").distinct

    def test_multiple_items(self):
        select = body("SELECT a, b, c FROM t")
        assert len(select.items) == 3

    def test_qualified_column(self):
        select = body("SELECT t.a FROM t")
        expr = select.items[0].expr
        assert expr.table == "t" and expr.name == "a"

    def test_where(self):
        select = body("SELECT a FROM t WHERE a > 1")
        assert isinstance(select.where, ast.BinaryOp)

    def test_group_by_and_having(self):
        select = body("SELECT a FROM t GROUP BY a, b HAVING COUNT(*) > 2")
        assert len(select.group_by) == 2
        assert select.having is not None

    def test_order_limit_offset(self):
        select = body("SELECT a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert select.order_by[0].ascending is False
        assert select.limit == 5
        assert select.offset == 2

    def test_order_nulls(self):
        select = body("SELECT a FROM t ORDER BY a ASC NULLS FIRST")
        assert select.order_by[0].nulls_first is True

    def test_trailing_semicolon(self):
        assert isinstance(body("SELECT 1;"), ast.Select)


class TestFromClause:
    def test_table_alias(self):
        select = body("SELECT x FROM t AS alias")
        assert select.from_clause.alias == "alias"

    def test_implicit_alias(self):
        select = body("SELECT x FROM t alias")
        assert select.from_clause.alias == "alias"

    def test_inner_join(self):
        join = body("SELECT 1 FROM a JOIN b ON a.id = b.id").from_clause
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"

    @pytest.mark.parametrize("kw,kind", [
        ("LEFT JOIN", "LEFT"), ("LEFT OUTER JOIN", "LEFT"),
        ("RIGHT JOIN", "RIGHT"), ("FULL OUTER JOIN", "FULL"),
        ("INNER JOIN", "INNER"),
    ])
    def test_join_kinds(self, kw, kind):
        join = body(f"SELECT 1 FROM a {kw} b ON a.id = b.id").from_clause
        assert join.kind == kind

    def test_cross_join_no_condition(self):
        join = body("SELECT 1 FROM a CROSS JOIN b").from_clause
        assert join.kind == "CROSS"
        assert join.condition is None

    def test_comma_join_is_cross(self):
        join = body("SELECT 1 FROM a, b").from_clause
        assert join.kind == "CROSS"

    def test_chained_joins_left_deep(self):
        join = body(
            "SELECT 1 FROM a JOIN b ON a.i = b.i JOIN c ON b.j = c.j"
        ).from_clause
        assert isinstance(join.left, ast.Join)
        assert join.right.name == "c"

    def test_derived_table(self):
        select = body("SELECT 1 FROM (SELECT a FROM t) AS sub")
        assert isinstance(select.from_clause, ast.SubqueryRef)
        assert select.from_clause.alias == "sub"

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 FROM (SELECT a FROM t)")


class TestCtes:
    def test_single_cte(self):
        query = parse("WITH c AS (SELECT 1) SELECT * FROM c")
        assert query.ctes[0].name == "c"

    def test_multiple_ctes(self):
        query = parse(
            "WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM b"
        )
        assert [cte.name for cte in query.ctes] == ["a", "b"]

    def test_cte_column_list(self):
        query = parse("WITH c(x, y) AS (SELECT 1, 2) SELECT * FROM c")
        assert query.ctes[0].columns == ["x", "y"]

    def test_nested_with_inside_cte(self):
        query = parse(
            "WITH outer_cte AS (WITH inner_cte AS (SELECT 1) "
            "SELECT * FROM inner_cte) SELECT * FROM outer_cte"
        )
        assert query.ctes[0].query.ctes[0].name == "inner_cte"


class TestSetOperations:
    def test_union(self):
        operation = body("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(operation, ast.SetOperation)
        assert operation.op == "UNION" and not operation.all

    def test_union_all(self):
        assert body("SELECT 1 UNION ALL SELECT 2").all

    @pytest.mark.parametrize("op", ["INTERSECT", "EXCEPT"])
    def test_other_set_ops(self, op):
        assert body(f"SELECT 1 {op} SELECT 2").op == op

    def test_order_by_binds_to_set_operation(self):
        operation = body("SELECT a FROM t UNION SELECT a FROM u ORDER BY a")
        assert operation.order_by
        assert not operation.left.order_by

    def test_chained_set_ops_left_assoc(self):
        operation = body("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(operation.left, ast.SetOperation)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_comparison_chain_not_allowed_silently(self):
        # one comparison per level; "a = b" parses, then stops
        expr = parse_expression("a = b")
        assert expr.op == "="

    def test_concat_operator(self):
        expr = parse_expression("a || b")
        assert expr.op == "||"

    @pytest.mark.parametrize("literal,value", [
        ("NULL", None), ("TRUE", True), ("FALSE", False),
        ("42", 42), ("4.5", 4.5), ("'x'", "x"),
    ])
    def test_literals(self, literal, value):
        expr = parse_expression(literal)
        assert isinstance(expr, ast.Literal)
        assert expr.value == value


class TestPredicates:
    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between) and not expr.negated

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in_list(self):
        assert parse_expression("x NOT IN (1)").negated

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_and_not_null(self):
        assert not parse_expression("x IS NULL").negated
        assert parse_expression("x IS NOT NULL").negated

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_not_exists(self):
        expr = parse_expression("NOT EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.UnaryOp)
        assert isinstance(expr.operand, ast.Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT MAX(x) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)


class TestFunctionsAndCase:
    def test_function_call(self):
        expr = parse_expression("SUM(x)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "SUM"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT x)").distinct

    def test_nested_calls(self):
        expr = parse_expression("NULLIF(SUM(x), 0)")
        assert isinstance(expr.args[0], ast.FunctionCall)

    def test_cast(self):
        expr = parse_expression("CAST(x AS FLOAT)")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == "FLOAT"

    def test_cast_with_precision(self):
        expr = parse_expression("CAST(x AS DECIMAL(10, 2))")
        assert expr.target_type == "DECIMAL"

    def test_searched_case(self):
        expr = parse_expression(
            "CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END"
        )
        assert isinstance(expr, ast.CaseExpression)
        assert expr.operand is None
        assert len(expr.whens) == 2
        assert expr.default is not None

    def test_simple_case(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
        assert expr.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("CASE ELSE 1 END")

    def test_window_function(self):
        expr = parse_expression(
            "ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC)"
        )
        assert isinstance(expr, ast.WindowFunction)
        assert len(expr.window.partition_by) == 1
        assert expr.window.order_by[0].ascending is False

    def test_window_empty_over(self):
        expr = parse_expression("SUM(x) OVER ()")
        assert isinstance(expr, ast.WindowFunction)
        assert not expr.window.partition_by


class TestSyntaxErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT",
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP a",
        "WITH c AS SELECT 1 SELECT 2",
        "SELECT a FROM t LIMIT x",
        "SELECT a b c FROM t",
        "SELECT a FROM t JOIN u",
    ])
    def test_malformed_sql_raises(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)

    def test_error_message_mentions_found_token(self):
        with pytest.raises(SqlSyntaxError, match="found"):
            parse("SELECT a FROM t WHERE ORDER")


class TestWalk:
    def test_walk_visits_subqueries(self):
        query = parse(
            "WITH c AS (SELECT a FROM t) SELECT * FROM c WHERE a IN "
            "(SELECT b FROM u)"
        )
        tables = {
            node.name for node in query.walk()
            if isinstance(node, ast.TableRef)
        }
        assert tables == {"t", "c", "u"}

"""Watchdog tests: ledger series, robust z-scores, level shifts, dash.

Covers DESIGN.md §6g's time-series half — folding ledger records into
per-metric series, median/MAD level-shift detection (silent on
identical-seed history, ±inf z on any real departure from a constant
baseline), the ``repro watch`` payload/rendering, and the static HTML
dashboard.
"""

from __future__ import annotations

import json

from repro.bench.metrics import EvaluationReport, QuestionOutcome
from repro.obs.ledger import RunLedger, build_run_record
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA_VERSION,
    dashboard_from_ledger,
    detect_shifts,
    ledger_series,
    record_metrics,
    render_dashboard,
    render_watch,
    robust_zscore,
    to_json,
    watch_payload,
)


def make_outcome(question_id="q-1", correct=True, error="", cost=0.01,
                 latency=50.0, lint_codes=(), degraded=()):
    return QuestionOutcome(
        question_id=question_id,
        difficulty="simple",
        database="demo",
        correct=correct,
        predicted_sql="SELECT 1",
        gold_sql="SELECT 1",
        cost_usd=cost,
        latency_ms=latency,
        error=error,
        degraded=tuple(degraded),
        question_text="How many teams?",
        lint_codes=tuple(lint_codes),
        operator_digests=(),
        llm_calls=(("generate_sql", "gpt-4o", 100, 10, cost),),
    )


def make_record(outcomes, system="GenEdit", **kwargs):
    report = EvaluationReport(system=system)
    for outcome in outcomes:
        report.add(outcome)
    kwargs.setdefault("kind", "bench")
    kwargs.setdefault("target", "test")
    kwargs.setdefault("seed", 7)
    return build_run_record([report], **kwargs)


class TestRecordMetrics:
    def test_extracts_the_health_metrics(self):
        record = make_record([
            make_outcome(lint_codes=("GE001",)),
            make_outcome(
                question_id="q-2", correct=False, error="boom",
                latency=150.0,
            ),
        ])
        metrics = record_metrics(record)
        assert metrics["ex"] == 50.0
        assert metrics["cost_usd_per_question"] == 0.01
        assert metrics["input_tokens"] == 200
        assert metrics["output_tokens"] == 20
        assert metrics["latency_p50_ms"] == 50.0
        assert metrics["latency_p99_ms"] == 150.0
        assert metrics["errors"] == 1
        assert metrics["lint_GE"] == 1
        assert metrics["lint_GK"] == 0

    def test_missing_system_yields_no_point(self):
        record = make_record([make_outcome()], system="Baseline")
        assert record_metrics(record, system="GenEdit") is None

    def test_deterministic_records_produce_identical_points(self):
        point_a = record_metrics(make_record([make_outcome()]))
        point_b = record_metrics(make_record([make_outcome()]))
        assert point_a == point_b


class TestRobustZscore:
    def test_nonzero_mad_matches_modified_z(self):
        baseline = [10.0, 12.0, 11.0, 13.0, 9.0]
        z, median, mad = robust_zscore(11.0, baseline)
        assert median == 11.0
        assert mad == 1.0
        assert z == 0.0
        z, _median, _mad = robust_zscore(15.0, baseline)
        assert round(z, 4) == round(0.6745 * 4.0, 4)

    def test_zero_mad_exact_match_is_silent(self):
        z, median, mad = robust_zscore(65.15, [65.15] * 10)
        assert (z, median, mad) == (0.0, 65.15, 0.0)

    def test_zero_mad_departure_is_infinite(self):
        z, _median, _mad = robust_zscore(60.0, [65.15] * 10)
        assert z == float("-inf")
        z, _median, _mad = robust_zscore(70.0, [65.15] * 10)
        assert z == float("inf")


class TestDetectShifts:
    def test_constant_series_never_alerts(self):
        series = {
            "ex": [(f"run-{i}", 65.15) for i in range(5)],
            "errors": [(f"run-{i}", 2) for i in range(5)],
        }
        assert detect_shifts(series) == []

    def test_ex_drop_is_a_regression(self):
        series = {"ex": [
            ("r1", 65.15), ("r2", 65.15), ("r3", 65.15), ("r4", 40.0),
        ]}
        (alert,) = detect_shifts(series)
        assert alert["metric"] == "ex"
        assert alert["run_id"] == "r4"
        assert alert["direction"] == "drop"
        assert alert["severity"] == "regression"
        assert alert["z"] == float("-inf")
        assert alert["baseline_median"] == 65.15
        assert alert["baseline_runs"] == 3

    def test_ex_rise_is_an_improvement(self):
        series = {"ex": [("r1", 60.0), ("r2", 60.0), ("r3", 70.0)]}
        (alert,) = detect_shifts(series)
        assert alert["severity"] == "improvement"
        assert alert["direction"] == "rise"

    def test_cost_rise_is_a_regression(self):
        series = {"cost_usd_per_question": [
            ("r1", 0.01), ("r2", 0.01), ("r3", 0.05),
        ]}
        (alert,) = detect_shifts(series)
        assert alert["severity"] == "regression"
        assert alert["direction"] == "rise"

    def test_single_point_series_is_skipped(self):
        assert detect_shifts({"ex": [("r1", 65.15)]}) == []

    def test_noisy_but_in_band_values_stay_quiet(self):
        series = {"latency_p99_ms": [
            ("r1", 100.0), ("r2", 104.0), ("r3", 98.0), ("r4", 102.0),
            ("r5", 101.0),
        ]}
        assert detect_shifts(series) == []

    def test_window_bounds_the_baseline(self):
        points = [(f"r{i}", 10.0) for i in range(10)] + [("new", 20.0)]
        (alert,) = detect_shifts({"m": points}, window=4)
        assert alert["baseline_runs"] == 4

    def test_worst_shift_sorts_first(self):
        series = {
            "aaa": [("r1", 10.0), ("r2", 10.0), ("r3", 10.5)],
            "ex": [("r1", 65.0), ("r2", 65.0), ("r3", 10.0)],
        }
        alerts = detect_shifts(series)
        assert [alert["metric"] for alert in alerts] == ["aaa", "ex"] or \
            [alert["metric"] for alert in alerts] == ["ex", "aaa"]
        # Both are infinite-z (MAD 0); ties sort by metric name.
        assert alerts[0]["metric"] == "aaa"


class TestLedgerSeries:
    def test_series_fold_and_kind_filter(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record_run(make_record([make_outcome()]))
        ledger.record_run(make_record([make_outcome()], kind="ask"))
        ledger.record_run(make_record([
            make_outcome(),
            make_outcome(question_id="q-2", correct=False, error="x"),
        ]))
        series = ledger_series(ledger, kind="bench")
        assert [value for _run, value in series["ex"]] == [100.0, 50.0]
        all_series = ledger_series(ledger)
        assert len(all_series["ex"]) == 3

    def test_limit_keeps_newest_points(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for correct in (True, True, False):
            ledger.record_run(
                make_record([make_outcome(correct=correct)])
            )
        series = ledger_series(ledger, limit=1)
        assert [value for _run, value in series["ex"]] == [0.0]


class TestWatchPayload:
    def test_identical_runs_alert_nothing(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for _ in range(3):
            ledger.record_run(make_record([make_outcome()]))
        payload = watch_payload(ledger)
        assert payload["schema_version"] == TIMESERIES_SCHEMA_VERSION
        assert payload["runs"] == 3
        assert payload["alerts"] == []
        assert "no level shifts detected" in render_watch(payload)

    def test_ex_drop_renders_a_regression_alert(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for _ in range(3):
            ledger.record_run(make_record([
                make_outcome(),
                make_outcome(question_id="q-2"),
            ]))
        ledger.record_run(make_record([
            make_outcome(),
            make_outcome(question_id="q-2", correct=False, error="x"),
        ]))
        payload = watch_payload(ledger)
        metrics = [alert["metric"] for alert in payload["alerts"]]
        assert "ex" in metrics
        text = render_watch(payload)
        assert "ALERT [regression] ex drop to 50" in text
        assert "|z|=-inf" in text

    def test_empty_ledger_payload(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        payload = watch_payload(ledger)
        assert payload["runs"] == 0
        assert payload["latest_run"] is None
        assert "nothing to watch" in render_watch(payload)

    def test_to_json_survives_infinite_z(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record_run(make_record([make_outcome()]))
        ledger.record_run(make_record([
            make_outcome(correct=False, error="x"),
        ]))
        payload = watch_payload(ledger)
        parsed = json.loads(to_json(payload))
        z_values = [alert["z"] for alert in parsed["alerts"]]
        assert z_values and all(
            value in ("inf", "-inf") for value in z_values
        )

    def test_to_json_maps_nan(self):
        assert json.loads(to_json({"x": float("nan")})) == {"x": "nan"}


class TestDashboard:
    def test_render_dashboard_cards_and_badges(self):
        series = {
            "ex": [("r1", 65.15), ("r2", 65.15), ("r3", 40.0)],
            "errors": [("r1", 0), ("r2", 0), ("r3", 0)],
        }
        alerts = detect_shifts(series)
        page = render_dashboard(series, alerts)
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<div class='card") == 2
        assert "class='card alert'" in page
        assert "<span class='badge'>regression</span>" in page
        assert "<span class='badge ok'>ok</span>" in page
        assert "<polyline class='spark'" in page
        # Self-contained: no external fetches.
        assert "http://" not in page and "https://" not in page

    def test_dashboard_from_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for _ in range(2):
            ledger.record_run(make_record([make_outcome()]))
        series, alerts, page = dashboard_from_ledger(ledger)
        assert alerts == []
        assert "ex" in series
        assert "repro telemetry" in page

"""Run ledger tests: records, determinism, diffing, triage, CLI.

Covers DESIGN.md §6d — the content-addressed run store, run-to-run
diffing with first-divergence attribution, failure triage through the
resilience taxonomy, regression baselining, and the satellite fixes
(``format_table`` alignment, ``_safe_main``, profile ``schema_version``
round-trip).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.bench.harness import (
    PROFILE_SCHEMA_VERSION,
    evaluate_system,
    format_table,
)
from repro.bench.metrics import EvaluationReport, QuestionOutcome
from repro.cli import _safe_main, build_arg_parser
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    build_run_record,
    build_timing,
    config_fingerprint,
    diff_records,
    first_divergence,
    golden_queries_from_record,
    knowledge_fingerprint,
    outcomes_by_question,
    render_diff,
    render_triage,
    triage_record,
)
from repro.pipeline.config import DEFAULT_CONFIG
from repro.pipeline.pipeline import GenEditPipeline
from repro.resilience import categorize_failure


def make_outcome(question_id="q-1", correct=True, error="", cost=0.01,
                 latency=50.0, digests=(), lint_codes=(), degraded=(),
                 question="How many teams?", sql="SELECT 1"):
    return QuestionOutcome(
        question_id=question_id,
        difficulty="simple",
        database="demo",
        correct=correct,
        predicted_sql=sql,
        gold_sql="SELECT 1",
        cost_usd=cost,
        latency_ms=latency,
        error=error,
        degraded=tuple(degraded),
        question_text=question,
        lint_codes=tuple(lint_codes),
        operator_digests=tuple(digests),
        llm_calls=(("generate_sql", "gpt-4o", 100, 10, cost),),
    )


def make_record(outcomes, system="GenEdit", **kwargs):
    report = EvaluationReport(system=system)
    for outcome in outcomes:
        report.add(outcome)
    kwargs.setdefault("kind", "bench")
    kwargs.setdefault("target", "test")
    kwargs.setdefault("seed", 7)
    return build_run_record([report], **kwargs)


TRAIL_A = (("reformulate", "aaa"), ("plan", "bbb"), ("generate_sql", "ccc"))
TRAIL_B = (("reformulate", "aaa"), ("plan", "xxx"), ("generate_sql", "yyy"))


class TestFingerprints:
    def test_knowledge_fingerprint_stable_under_clone(
        self, experiment_context
    ):
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        assert knowledge_fingerprint(knowledge) == knowledge_fingerprint(
            knowledge.clone()
        )

    def test_knowledge_fingerprint_changes_on_edit(self, experiment_context):
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        edited = knowledge.clone()
        edited.delete_example(edited.examples()[0].example_id)
        assert knowledge_fingerprint(edited) != knowledge_fingerprint(
            knowledge
        )

    def test_config_fingerprint_tracks_config_and_seed(self):
        base = config_fingerprint(DEFAULT_CONFIG, 7)
        assert base == config_fingerprint(DEFAULT_CONFIG, 7)
        assert base != config_fingerprint(DEFAULT_CONFIG, 8)
        assert base != config_fingerprint(
            DEFAULT_CONFIG.without("examples"), 7
        )


class TestRunLedgerStore:
    def test_record_run_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        record = make_record([make_outcome()])
        run_id = ledger.record_run(
            record, timing=build_timing(()), meta={"note": "hi"}
        )
        loaded = ledger.read_record(run_id)
        assert loaded["run_id"] == run_id
        assert loaded["schema_version"] == LEDGER_SCHEMA_VERSION
        assert loaded["systems"]["GenEdit"]["questions"] == 1
        assert ledger.read_meta(run_id)["note"] == "hi"

    def test_identical_content_shares_digest(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        record = make_record([make_outcome()])
        id_a = ledger.record_run(dict(record))
        id_b = ledger.record_run(dict(record))
        assert id_a != id_b
        assert id_a.split("-")[1] == id_b.split("-")[1]

    def test_resolve_latest_prefix_and_errors(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        id_a = ledger.record_run(make_record([make_outcome()]))
        id_b = ledger.record_run(make_record([make_outcome(correct=False,
                                                           error="x: y")]))
        assert ledger.resolve("latest") == id_b
        assert ledger.resolve("latest~1") == id_a
        assert ledger.resolve(id_a) == id_a
        assert ledger.resolve(id_b[: len(id_b) - 2]) == id_b
        with pytest.raises(KeyError, match="No run matching"):
            ledger.resolve("nope")
        with pytest.raises(KeyError, match="cannot resolve"):
            ledger.resolve("latest~9")

    def test_gc_keeps_newest(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ids = [
            ledger.record_run(make_record([make_outcome(cost=0.01 * n)]))
            for n in range(1, 4)
        ]
        removed = ledger.gc(keep=1)
        assert removed == ids[:2]
        assert ledger.run_ids() == [ids[2]]

    @staticmethod
    def _age_run(ledger, run_id, created_at):
        import os

        meta_path = os.path.join(ledger.run_dir(run_id), "meta.json")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["created_at"] = created_at
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)

    def test_gc_keep_days_removes_only_old_runs(self, tmp_path):
        import calendar
        import time

        ledger = RunLedger(tmp_path / "runs")
        old_id = ledger.record_run(make_record([make_outcome(cost=0.01)]))
        new_id = ledger.record_run(make_record([make_outcome(cost=0.02)]))
        self._age_run(ledger, old_id, "2026-01-01T00:00:00Z")
        now = calendar.timegm(
            time.strptime("2026-01-20T00:00:00Z", "%Y-%m-%dT%H:%M:%SZ")
        )
        removed = ledger.gc(keep=0, keep_days=7, now=now)
        assert removed == [old_id]
        assert ledger.run_ids() == [new_id]

    def test_gc_keep_days_spares_recent_runs(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record_run(make_record([make_outcome()]))
        ledger.record_run(make_record([make_outcome(cost=0.02)]))
        assert ledger.gc(keep=0, keep_days=7) == []
        assert len(ledger.run_ids()) == 2

    def test_gc_count_and_age_policies_compose(self, tmp_path):
        import calendar
        import time

        ledger = RunLedger(tmp_path / "runs")
        ids = [
            ledger.record_run(make_record([make_outcome(cost=0.01 * n)]))
            for n in range(1, 4)
        ]
        # ids[1] is inside the count bound but over the age bound.
        self._age_run(ledger, ids[1], "2026-01-01T00:00:00Z")
        now = calendar.timegm(
            time.strptime("2026-02-01T00:00:00Z", "%Y-%m-%dT%H:%M:%SZ")
        )
        removed = ledger.gc(keep=2, keep_days=7, now=now)
        assert removed == ids[:2]
        assert ledger.run_ids() == [ids[2]]

    def test_list_runs_summaries(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record_run(make_record([make_outcome()]))
        (summary,) = ledger.list_runs()
        assert summary["run_id"] == run_id
        assert summary["questions"] == 1
        assert summary["ex_all"] == 100.0

    def test_env_var_names_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "envruns"))
        assert RunLedger().root == str(tmp_path / "envruns")

    def test_profile_schema_version_roundtrips(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        profile_payload = {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "stages": {"build": 0.1},
        }
        spans = [
            {"type": "span", "name": "generate", "duration_ms": ms}
            for ms in (5.0, 15.0, 10.0)
        ]
        run_id = ledger.record_run(
            make_record([make_outcome()]),
            timing=build_timing(spans, profile=profile_payload, wall_s=1.0),
        )
        timing = json.loads(json.dumps(ledger.read_timing(run_id)))
        assert timing["profile"]["schema_version"] == PROFILE_SCHEMA_VERSION
        rollup = timing["span_rollups"]["generate"]
        assert rollup["count"] == 3
        assert rollup["p50_ms"] == 10.0
        assert rollup["max_ms"] == 15.0


class TestFirstDivergence:
    def test_identical_trails_blame_final_check(self):
        entry = make_record([make_outcome(digests=TRAIL_A)])
        outcome = entry["systems"]["GenEdit"]["outcomes"][0]
        assert first_divergence(outcome, outcome) == "final_check"

    def test_earliest_differing_operator_named(self):
        record_a = make_record([make_outcome(digests=TRAIL_A)])
        record_b = make_record([make_outcome(digests=TRAIL_B)])
        assert first_divergence(
            record_a["systems"]["GenEdit"]["outcomes"][0],
            record_b["systems"]["GenEdit"]["outcomes"][0],
        ) == "plan"

    def test_missing_trail_is_unknown(self):
        assert first_divergence(
            {"operator_digests": []},
            {"operator_digests": [["plan", "x"]]},
        ) == "unknown"

    def test_longer_trail_blames_first_extra_operator(self):
        assert first_divergence(
            {"operator_digests": [["reformulate", "a"]]},
            {"operator_digests": [["reformulate", "a"], ["plan", "b"]]},
        ) == "plan"


class TestDiffRecords:
    def test_identical_records_diff_clean(self):
        record = make_record([make_outcome(digests=TRAIL_A)])
        diff = diff_records(record, record)
        assert diff["flips"] == 0
        assert diff["cost_delta_usd"] == 0.0
        assert not diff["config_changed"]
        assert "total: 0 flip(s)" in render_diff(diff)

    def test_flip_carries_direction_and_divergence(self):
        record_a = make_record(
            [make_outcome(digests=TRAIL_A, cost=0.01)]
        )
        record_b = make_record(
            [make_outcome(correct=False, error="result mismatch",
                          digests=TRAIL_B, cost=0.03,
                          lint_codes=("GE002",))]
        )
        diff = diff_records(record_a, record_b)
        assert diff["flips"] == 1
        (flip,) = diff["systems"]["GenEdit"]["flips"]
        assert flip["direction"] == "broke"
        assert flip["first_divergence"] == "plan"
        assert diff["systems"]["GenEdit"]["new_codes"] == {"GE002": 1}
        assert diff["cost_delta_usd"] == pytest.approx(0.02)
        rendered = render_diff(diff, show_sql=True)
        assert "broke" in rendered and "first divergence: plan" in rendered

    def test_degradation_delta_tracked(self):
        record_a = make_record([make_outcome()])
        record_b = make_record(
            [make_outcome(degraded=("self_correct",))]
        )
        diff = diff_records(record_a, record_b)
        assert diff["systems"]["GenEdit"]["degraded_delta"] == {
            "self_correct": 1
        }


class TestCategorizeFailure:
    @pytest.mark.parametrize("text,category", [
        ("", "none"),
        ("result mismatch", "wrong-result"),
        ("no SQL generated", "no-sql"),
        ("TransientLLMError: backend flaked", "llm-transient"),
        ("plan: LLMTimeoutError: too slow", "llm-timeout"),
        ("RetriesExhaustedError: site=plan attempts=4", "retries-exhausted"),
        ("AssertionError: Gold SQL failed", "harness"),
        ("Expected table name, found '<end of input>'", "sql-invalid"),
        ("Unknown column 'CARRIER_NAME'", "execution"),
        ("something entirely novel", "other"),
    ])
    def test_taxonomy(self, text, category):
        assert categorize_failure(text) == category


class TestTriage:
    def test_clusters_failures_and_ranks_cost(self):
        record = make_record([
            make_outcome("q-1"),
            make_outcome("q-2", correct=False, error="result mismatch",
                         cost=0.5),
            make_outcome("q-3", correct=False, error="result mismatch"),
            make_outcome("q-4", correct=False,
                         error="plan: LLMTimeoutError: deadline",
                         latency=900.0, degraded=("reformulate",)),
        ])
        triage = triage_record(record, top=2)
        assert triage["failures"] == 3
        assert triage["categories"]["wrong-result"]["count"] == 2
        assert triage["categories"]["llm-timeout"]["count"] == 1
        assert triage["degraded"] == {"reformulate": 1}
        assert triage["worst_cost"][0]["question_id"] == "q-2"
        assert triage["slowest"][0]["question_id"] == "q-4"
        rendered = render_triage(triage)
        assert "wrong-result: 2" in rendered
        assert "GenEdit/q-2" in rendered


class TestLedgerDeterminism:
    """Two identical-seed runs produce identical records; a perturbed
    knowledge set produces attributed flips (ISSUE 5 acceptance)."""

    @pytest.fixture(scope="class")
    def sports_questions(self, experiment_context):
        return [
            question
            for question in experiment_context.workload.questions
            if question.database == "sports_holdings"
        ][:10]

    def _evaluate(self, context, questions, ledger, knowledge_sets=None):
        return evaluate_system(
            lambda database, knowledge: GenEditPipeline(database, knowledge),
            context.workload,
            context.profiles,
            knowledge_sets or context.knowledge_sets,
            "GenEdit",
            questions=questions,
            ledger=ledger,
            ledger_meta={"seed": context.seed, "config": DEFAULT_CONFIG},
        )

    def test_identical_runs_identical_records(
        self, experiment_context, sports_questions, tmp_path
    ):
        ledger = RunLedger(tmp_path / "runs")
        report_a = self._evaluate(experiment_context, sports_questions,
                                  ledger)
        report_b = self._evaluate(experiment_context, sports_questions,
                                  ledger)
        assert report_a.run_id and report_b.run_id
        record_a = ledger.read_record(report_a.run_id)
        record_b = ledger.read_record(report_b.run_id)
        body_a = {k: v for k, v in record_a.items() if k != "run_id"}
        body_b = {k: v for k, v in record_b.items() if k != "run_id"}
        assert body_a == body_b
        assert report_a.run_id.split("-")[1] == report_b.run_id.split("-")[1]
        diff = diff_records(record_a, record_b)
        assert diff["flips"] == 0
        assert diff["cost_delta_usd"] == 0.0
        assert not diff["knowledge_changes"]

    def test_perturbed_knowledge_attributes_flips(
        self, experiment_context, sports_questions, tmp_path
    ):
        ledger = RunLedger(tmp_path / "runs")
        report_a = self._evaluate(experiment_context, sports_questions,
                                  ledger)
        perturbed = dict(experiment_context.knowledge_sets)
        clone = perturbed["sports_holdings"].clone()
        for example in list(clone.examples()):
            clone.delete_example(example.example_id)
        for instruction in list(clone.instructions()):
            clone.delete_instruction(instruction.instruction_id)
        perturbed["sports_holdings"] = clone
        report_b = self._evaluate(experiment_context, sports_questions,
                                  ledger, knowledge_sets=perturbed)
        diff = diff_records(
            ledger.read_record(report_a.run_id),
            ledger.read_record(report_b.run_id),
        )
        assert "sports_holdings" in diff["knowledge_changes"]
        assert diff["flips"] >= 1
        operators = {
            flip["first_divergence"]
            for flip in diff["systems"]["GenEdit"]["flips"]
        }
        assert operators <= {
            "reformulate", "classify_intents", "select_examples",
            "select_instructions", "link_schema", "plan", "generate_sql",
            "self_correct", "final_check",
        }
        assert "select_examples" in operators or (
            "select_instructions" in operators
        )


class TestRegressionBaseline:
    def test_run_regression_reuses_baseline_outcomes(
        self, experiment_context, tmp_path
    ):
        from repro.feedback.regression import GoldenQuery, run_regression

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        logged = experiment_context.workload.training_logs[
            "sports_holdings"
        ][0]
        golden = GoldenQuery(logged.question, logged.sql)
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record_run(make_record([
            make_outcome(question=golden.question,
                         sql=golden.gold_sql),
        ]))
        baseline = ledger.read_record(run_id)
        report = run_regression(
            profile.database, knowledge, knowledge, [golden],
            baseline=baseline,
        )
        assert report.baseline_run_id == run_id
        assert report.baseline_hits == 1
        assert f"baseline run {run_id}" in report.summary()
        assert report.results[0].correct_before is True

    def test_outcomes_by_question_and_golden_queries(self):
        record = make_record([
            make_outcome("q-1", question="alpha?", sql="SELECT 1"),
            make_outcome("q-2", question="beta?", correct=False,
                         error="result mismatch"),
        ])
        record["run_id"] = "test-run"
        index = outcomes_by_question(record)
        assert set(index) == {"alpha?", "beta?"}
        anchors = golden_queries_from_record(record)
        assert anchors == [("alpha?", "SELECT 1")]


class TestFormatTable:
    def test_numeric_columns_right_aligned(self):
        table = format_table(
            "t", ("Name", "EX"),
            [("GenEdit", 65.15), ("C3", 5.5)],
        )
        lines = table.splitlines()
        assert lines[1] == "Name    |    EX"
        assert lines[3] == "GenEdit | 65.15"
        assert lines[4] == "C3      |  5.50"

    def test_float_precision_consistent(self):
        table = format_table("t", ("Stage", "s"), [("a", 0.5)], precision=4)
        assert "0.5000" in table

    def test_mixed_column_stays_left_aligned(self):
        table = format_table(
            "t", ("K", "V"), [("a", 1), ("b", "text")]
        )
        assert "1   " in table or "1  " in table.splitlines()[3]


class TestSafeMain:
    def test_passes_through_return_value(self):
        assert _safe_main(lambda value: value, 3) == 3

    def test_broken_pipe_exits_clean(self, monkeypatch):
        import os as os_module

        monkeypatch.setattr(os_module, "dup2", lambda *a: None)

        def explode():
            raise BrokenPipeError()

        assert _safe_main(explode) == 0


class TestLedgerCli:
    def _run(self, argv):
        out = io.StringIO()
        args = build_arg_parser().parse_args(argv)
        code = args.func(args, out=out)
        return code, out.getvalue()

    @pytest.fixture()
    def seeded_ledger(self, tmp_path):
        root = str(tmp_path / "runs")
        ledger = RunLedger(root)
        id_a = ledger.record_run(
            make_record([make_outcome(digests=TRAIL_A)]),
            timing=build_timing(()),
        )
        id_b = ledger.record_run(
            make_record([
                make_outcome(correct=False, error="result mismatch",
                             digests=TRAIL_B),
            ]),
            timing=build_timing(()),
        )
        return root, id_a, id_b

    def test_runs_list_and_empty(self, seeded_ledger, tmp_path):
        root, id_a, _id_b = seeded_ledger
        code, text = self._run(["runs", "--ledger-dir", root])
        assert code == 0 and id_a in text
        code, text = self._run(
            ["runs", "--ledger-dir", str(tmp_path / "void")]
        )
        assert code == 1 and "no runs recorded" in text

    def test_runs_show_with_triage(self, seeded_ledger):
        root, _id_a, id_b = seeded_ledger
        code, text = self._run(
            ["runs", "show", "latest", "--ledger-dir", root, "--triage"]
        )
        assert code == 0
        assert f"run {id_b}" in text
        assert "cost/token accounting (per operator)" in text
        assert "wrong-result: 1" in text

    def test_diff_latest_reports_flip(self, seeded_ledger):
        root, id_a, id_b = seeded_ledger
        code, text = self._run(["diff", "--latest", "--ledger-dir", root])
        assert code == 1
        assert f"run diff: {id_a} -> {id_b}" in text
        assert "first divergence: plan" in text
        code, text = self._run(["diff", id_a, id_a, "--ledger-dir", root])
        assert code == 0 and "total: 0 flip(s)" in text

    def test_diff_errors(self, seeded_ledger):
        root, _id_a, _id_b = seeded_ledger
        code, text = self._run(["diff", "--ledger-dir", root])
        assert code == 2 and "diff needs" in text
        code, text = self._run(["diff", "nope", "latest",
                                "--ledger-dir", root])
        assert code == 2 and "No run matching" in text

    def test_triage_cli(self, seeded_ledger):
        root, _id_a, id_b = seeded_ledger
        code, text = self._run(["triage", "--ledger-dir", root])
        assert code == 0
        assert f"triage: run {id_b}" in text
        assert "wrong-result" in text

    def test_runs_gc(self, seeded_ledger):
        root, _id_a, id_b = seeded_ledger
        code, text = self._run(
            ["runs", "gc", "--keep", "1", "--ledger-dir", root]
        )
        assert code == 0 and "removed 1 run(s)" in text
        assert RunLedger(root).run_ids() == [id_b]

    def test_ask_records_run(self, tmp_path):
        root = str(tmp_path / "runs")
        code, text = self._run([
            "ask", "sports_holdings", "How many teams are there?",
            "--ledger", "--ledger-dir", root,
        ])
        assert code == 0 and "recorded run" in text
        ledger = RunLedger(root)
        record = ledger.read_record("latest")
        assert record["kind"] == "ask"
        assert record["systems"]["ask"]["questions"] == 1
        assert record["accounting"]["total"]["calls"] > 0


class TestProfileSchemaCompat:
    """Profile schema v3: new engine section, v2 payloads keep loading."""

    def test_committed_v2_baseline_still_loads(self, tmp_path):
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_baseline.json"
        )
        baseline = json.loads(baseline_path.read_text())
        assert baseline["schema_version"] == 2
        assert "engine" not in baseline
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record_run(
            make_record([make_outcome()]),
            timing=build_timing([], profile=baseline, wall_s=1.0),
        )
        timing = ledger.read_timing(run_id)
        # The embedded payload keeps its own (older) schema version and the
        # reader does not require the v3-only section.
        assert timing["profile"]["schema_version"] == 2
        assert timing["profile"].get("engine") is None
        assert timing["profile"]["stages"]["generate"] > 0

    def test_v3_profile_reports_engine_breakdown(self, experiment_context):
        from repro.bench.harness import profile

        payload = profile(
            context=experiment_context, limit=2, verbose=False
        )
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION == 3
        engine = payload["engine"]
        assert set(engine) >= {
            "rewrite_s", "compile_s", "columnar_selects",
            "row_fallback_selects", "error_reruns", "hash_joins",
            "loop_joins", "predicate_cache",
        }
        assert engine["columnar_selects"] > 0
        cache = engine["predicate_cache"]
        assert set(cache) >= {"hits", "misses", "fallbacks", "entries"}
        # Counters are integers reset at the profile boundary (a warm
        # shared evaluation cache may legitimately leave them at zero).
        assert all(
            isinstance(cache[key], int)
            for key in ("hits", "misses", "fallbacks", "entries")
        )

    def test_engine_gauges_published(self, experiment_context):
        from repro.bench.harness import profile
        from repro.obs.metrics import get_metrics

        profile(context=experiment_context, limit=1, verbose=False)
        snapshot = get_metrics().snapshot()
        gauges = snapshot["gauges"]
        assert "engine.predicate_cache.hits" in gauges
        assert "engine.columnar_selects" in gauges

    def test_diff_across_schema_versions_degrades_gracefully(self):
        # A record written by an older ledger (schema v1-era: no faults or
        # accounting blocks, older profile embedded) diffs cleanly against
        # a current one — unknown fields ignored, missing fields defaulted.
        old = make_record([make_outcome()])
        old["schema_version"] = LEDGER_SCHEMA_VERSION - 1
        old.pop("accounting", None)
        old.pop("faults", None)
        new = make_record(
            [make_outcome(correct=False, error="boom: mismatch")]
        )
        diff = diff_records(old, new)
        assert diff["flips"] == 1
        (flip,) = diff["systems"]["GenEdit"]["flips"]
        assert flip["direction"] == "broke"
        rendered = render_diff(diff)
        assert "broke" in rendered


class TestKnowledgeCodeDiff:
    """`repro diff` surfaces new/resolved GK codes between two records."""

    @staticmethod
    def _record(lint_codes):
        from repro.knowledge import KnowledgeSet

        return make_record(
            [make_outcome()],
            knowledge_sets={"demo": KnowledgeSet("demo")},
            knowledge_lint={"demo": lint_codes},
        )

    def test_record_carries_sorted_lint_codes(self):
        record = self._record({"GK010": 2, "GK002": 1})
        assert record["knowledge"]["demo"]["lint_codes"] == {
            "GK002": 1, "GK010": 2,
        }

    def test_new_and_resolved_knowledge_codes(self):
        diff = diff_records(
            self._record({"GK002": 1}), self._record({"GK010": 2})
        )
        change = diff["knowledge_changes"]["demo"]
        assert change["new_codes"] == {"GK010": 2}
        assert change["resolved_codes"] == {"GK002": 1}
        rendered = render_diff(diff)
        assert "knowledge[demo] new knowledge codes: GK010 (x2)" in rendered
        assert (
            "knowledge[demo] resolved knowledge codes: GK002 (x1)"
            in rendered
        )
        # Same fingerprint on both sides: no misleading fingerprint line.
        assert "knowledge[demo]:" not in rendered

    def test_identical_codes_diff_clean(self):
        diff = diff_records(
            self._record({"GK011": 1}), self._record({"GK011": 1})
        )
        assert diff["knowledge_changes"] == {}
        assert "knowledge: identical" in render_diff(diff)

    def test_plan_codes_fold_into_question_code_diff(self):
        record_a = make_record([make_outcome()])
        record_b = make_record([make_outcome(correct=False,
                                             error="result mismatch")])
        record_b["systems"]["GenEdit"]["outcomes"][0]["plan_codes"] = [
            "GP002"
        ]
        diff = diff_records(record_a, record_b)
        assert diff["systems"]["GenEdit"]["new_codes"] == {"GP002": 1}

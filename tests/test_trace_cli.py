"""JSONL trace export, the `repro trace` CLI, and harness integration."""

import io
import json

from repro.bench.cache import EvaluationCache
from repro.bench.harness import evaluate_system
from repro.cli import build_arg_parser, cmd_trace
from repro.obs import METRICS_SCHEMA_VERSION, global_snapshot, load_trace, write_trace
from repro.pipeline import GenEditPipeline


def _write_run(pipeline, path, question="How many teams are there?"):
    result = pipeline.generate(question)
    count = write_trace(
        path,
        result.trace_records(),
        metrics=global_snapshot(),
        meta={"question": question},
    )
    return result, count


class TestJsonlRoundTrip:
    def test_export_then_load(self, sports_pipeline, tmp_path):
        path = tmp_path / "run.jsonl"
        result, count = _write_run(sports_pipeline, path)
        payload = load_trace(path)
        assert payload["meta"]["schema_version"] == 1
        assert payload["meta"]["question"] == "How many teams are there?"
        assert len(payload["spans"]) == count == len(result.trace_records())
        assert payload["metrics"]["schema_version"] == METRICS_SCHEMA_VERSION

    def test_one_json_object_per_line(self, sports_pipeline, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(sports_pipeline, path)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "metrics"
        assert all(r["type"] == "span" for r in records[1:-1])

    def test_root_span_is_generate(self, sports_pipeline, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(sports_pipeline, path)
        spans = load_trace(path)["spans"]
        roots = [span for span in spans if span["parent_id"] is None]
        assert [span["name"] for span in roots] == ["generate"]
        children = {
            span["name"] for span in spans
            if span["parent_id"] == roots[0]["span_id"]
        }
        assert "final_check" in children
        assert "self_correct" in children

    def test_cli_renders_tree_and_rollups(self, sports_pipeline, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(sports_pipeline, path)
        parser = build_arg_parser()
        args = parser.parse_args(["trace", str(path)])
        out = io.StringIO()
        assert cmd_trace(args, out=out) == 0
        text = out.getvalue()
        assert "generate" in text
        assert "ms" in text
        assert "-- per-operator rollup --" in text
        assert "-- metrics snapshot" in text

    def test_cli_slow_filter_and_no_metrics(self, sports_pipeline, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_run(sports_pipeline, path)
        parser = build_arg_parser()
        args = parser.parse_args(
            ["trace", str(path), "--slow", "999999", "--no-metrics"]
        )
        out = io.StringIO()
        assert cmd_trace(args, out=out) == 0
        assert "-- metrics snapshot" not in out.getvalue()

    def test_cli_errors_on_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        parser = build_arg_parser()
        out = io.StringIO()
        assert cmd_trace(parser.parse_args(["trace", str(bad)]), out=out) == 2
        assert cmd_trace(
            parser.parse_args(["trace", str(tmp_path / "missing.jsonl")]),
            out=out,
        ) == 2

    def test_cli_empty_file(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        parser = build_arg_parser()
        out = io.StringIO()
        assert cmd_trace(parser.parse_args(["trace", str(empty)]), out=out) == 1


class TestHarnessTracing:
    def _run(self, context, trace_sink=None, **kwargs):
        return evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks),
            context.workload,
            context.profiles,
            context.knowledge_sets,
            "traced",
            questions=context.workload.questions[:12],
            cache=EvaluationCache(),
            trace_sink=trace_sink,
            **kwargs,
        )

    def test_parallel_run_one_root_per_question_in_workload_order(
        self, experiment_context
    ):
        sink = []
        report = self._run(experiment_context, trace_sink=sink, max_workers=4)
        roots = [span for span in sink if span.get("parent_id") is None]
        assert len(roots) == len(report.outcomes) == 12
        # Roots carry harness annotations and follow workload order even
        # though per-database groups ran concurrently.
        assert [r["attributes"]["question_id"] for r in roots] == [
            o.question_id for o in report.outcomes
        ]
        assert all(r["attributes"]["system"] == "traced" for r in roots)
        assert [r["attributes"]["correct"] for r in roots] == [
            o.correct for o in report.outcomes
        ]

    def test_spans_nest_under_their_own_root(self, experiment_context):
        sink = []
        self._run(experiment_context, trace_sink=sink, max_workers=4)
        ids = {span["span_id"] for span in sink}
        assert len(ids) == len(sink)  # globally unique, no collisions
        by_id = {span["span_id"]: span for span in sink}
        for span in sink:
            if span.get("parent_id") is None:
                assert span["name"] == "generate"
            else:
                # Every child's parent is in the same export.
                assert span["parent_id"] in by_id

    def test_trace_export_does_not_perturb_results(self, experiment_context):
        plain = self._run(experiment_context)
        sink = []
        traced = self._run(experiment_context, trace_sink=sink)
        assert sink  # tracing actually happened
        assert plain.row() == traced.row()
        assert [o.correct for o in plain.outcomes] == [
            o.correct for o in traced.outcomes
        ]
        assert [o.predicted_sql for o in plain.outcomes] == [
            o.predicted_sql for o in traced.outcomes
        ]

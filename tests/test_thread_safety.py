"""Concurrency regression tests for the process-global caches and the
resilience/ledger paths hardened for the serving layer.

Each test hammers one shared structure from N threads (barrier-started
so the race window actually overlaps) and asserts the invariant the
fix established: no lost counter increments, exactly one half-open
trial winner, no torn cache reads, distinct ledger run ids. Before the
locks these tests fail intermittently; with them they must never fail.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Executor
from repro.engine.stats import (
    ENGINE_STATS,
    bump,
    engine_snapshot,
    reset_engine_stats,
)
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry
from repro.resilience.policy import CircuitBreaker
from repro.sql import parse

THREADS = 8
ROUNDS = 400


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on N barrier-started threads; re-raise."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(index):
        try:
            barrier.wait(timeout=30.0)
            worker(index)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [
        threading.Thread(target=run, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(60.0)
    if errors:
        raise errors[0]


class TestEngineStats:
    def test_no_lost_increments_under_contention(self):
        key = "thread_safety_test_counter"
        ENGINE_STATS[key] = 0
        try:
            _hammer(lambda index: [
                bump(key) for _ in range(ROUNDS)
            ])
            assert ENGINE_STATS[key] == THREADS * ROUNDS
        finally:
            ENGINE_STATS.pop(key, None)

    def test_snapshot_and_reset_race_cleanly(self):
        ENGINE_STATS["thread_safety_reset_probe"] = 0

        def worker(index):
            for _ in range(50):
                if index % 2:
                    engine_snapshot()
                else:
                    bump("thread_safety_reset_probe")
        _hammer(worker)
        ENGINE_STATS.pop("thread_safety_reset_probe", None)


class TestCompiledPredicateCache:
    def test_concurrent_queries_with_reset_racing(self, demo_db):
        """N executors + a reset thread: identical results, no tears.

        ``reset_engine_stats`` clears the compiled-predicate cache; racing
        it against queries that hit the cache used to be able to observe a
        half-built entry or double-count stats.
        """
        sql = (
            "SELECT DEPT_ID, COUNT(*) AS N FROM EMP "
            "WHERE SALARY > 80 AND ACTIVE = TRUE "
            "GROUP BY DEPT_ID ORDER BY DEPT_ID"
        )
        query = parse(sql)
        expected = Executor(demo_db).execute(query).rows
        stop = threading.Event()

        def resetter():
            while not stop.is_set():
                reset_engine_stats()

        chaos = threading.Thread(target=resetter)
        chaos.start()
        try:
            def worker(index):
                executor = Executor(demo_db)
                for _ in range(60):
                    assert executor.execute(query).rows == expected

            _hammer(worker)
        finally:
            stop.set()
            chaos.join(30.0)


class TestTermsCache:
    def test_concurrent_vectorization_is_stable(self):
        from repro.text.vectorize import TfIdfVectorizer

        texts = [
            f"organisation {index} operates in region {index % 3} "
            f"with revenue targets and quarterly reporting"
            for index in range(40)
        ]
        vectorizer = TfIdfVectorizer()
        vectorizer.fit(texts)
        expected = [vectorizer.transform(text) for text in texts]

        def worker(index):
            for _ in range(20):
                got = [vectorizer.transform(text) for text in texts]
                assert got == expected

        _hammer(worker)


class TestLinkSignatureCache:
    def test_concurrent_generation_identical_results(
        self, sports_pipeline, experiment_context
    ):
        """The real race: one shared pipeline, N threads, same question.

        Covers ``_link_signature``/``_token_set`` memoisation inside the
        simulated LLM plus every per-operator cache behind ``generate``.
        """
        question = experiment_context.workload.for_database(
            "sports_holdings"
        )[0].question
        expected = sports_pipeline.generate(question).sql
        results = [None] * THREADS

        def worker(index):
            results[index] = sports_pipeline.generate(question).sql

        _hammer(worker)
        assert results == [expected] * THREADS


class TestCircuitBreakerAtomicity:
    def _half_open_breaker(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("site")     # opens: 1 cooldown call
        assert not breaker.allow("site")   # burns cooldown -> half-open
        return breaker

    def test_single_half_open_trial_winner(self):
        breaker = self._half_open_breaker()
        verdicts = [None] * THREADS

        def worker(index):
            verdicts[index] = breaker.allow("site")

        _hammer(worker)
        assert sum(verdicts) == 1, (
            f"expected exactly one half-open trial, got {sum(verdicts)}"
        )

    def test_trial_success_closes_trial_failure_reopens(self):
        breaker = self._half_open_breaker()
        assert breaker.allow("site")        # the trial
        breaker.record_success("site")
        assert breaker.allow("site")        # closed again

        breaker = self._half_open_breaker()
        assert breaker.allow("site")
        breaker.record_failure("site")      # trial failed: re-open
        assert not breaker.allow("site")

    def test_concurrent_failures_open_exactly_once(self):
        breaker = CircuitBreaker(threshold=THREADS * ROUNDS + 1,
                                 cooldown=3)

        def worker(index):
            for _ in range(ROUNDS):
                breaker.record_failure("site")

        _hammer(worker)
        # One more failure crosses the threshold exactly.
        assert breaker.allow("site")
        breaker.record_failure("site")
        assert not breaker.allow("site")


class TestMetricsRegistryContention:
    def test_no_lost_resilience_increments(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(ROUNDS):
                registry.inc("resilience.retries", operator="plan")
                registry.observe("resilience.backoff_ms", 1.0,
                                 operator="plan")

        _hammer(worker)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["resilience.retries{operator=plan}"] \
            == THREADS * ROUNDS
        histogram = snapshot["histograms"][
            "resilience.backoff_ms{operator=plan}"
        ]
        assert histogram["count"] == THREADS * ROUNDS


class TestIntrospectionRings:
    """The serving layer's debug ring buffers stay bounded and race-free
    under N barrier-started writer threads (DESIGN.md §6i)."""

    def test_flight_recorder_bounded_with_priority_intact(self):
        from repro.obs.flight import FlightRecorder

        capacity = 16
        flight = FlightRecorder(capacity=capacity, slow_ms=100.0,
                                sample_every=2)
        statuses = [(500, 0.0), (200, 500.0), (200, 1.0)]

        def worker(index):
            for round_number in range(ROUNDS):
                status, latency = statuses[
                    (index + round_number) % len(statuses)
                ]
                flight.observe(
                    status, False, latency,
                    {"id": f"{index}-{round_number}"},
                )

        _hammer(worker)
        stats = flight.stats()
        assert stats["seen"] == THREADS * ROUNDS
        retained = sum(stats["retained"].values())
        assert retained <= capacity
        assert len(flight.entries()) == retained
        # every failed observation was recorded, and with failures
        # saturating the ring, the survivors are all top-priority.
        expected_failed = sum(
            1 for index in range(THREADS)
            for round_number in range(ROUNDS)
            if statuses[(index + round_number) % len(statuses)][0] == 500
        )
        assert stats["recorded"]["failed"] == expected_failed
        assert all(
            entry["class"] == "failed" for entry in flight.entries()
        )

    def test_request_log_and_trace_store_bounded(self):
        from repro.serve.middleware import RequestLog, TraceStore

        log = RequestLog(capacity=32)
        store = TraceStore(capacity=16, max_spans=8)

        def worker(index):
            for round_number in range(ROUNDS):
                log.add({"request_id": f"{index}-{round_number}"})
                store.add(
                    f"trace-{round_number % 64}",
                    [{"span_id": f"{index}-{round_number}"}],
                )

        _hammer(worker)
        assert len(log) == 32
        assert len(log.entries()) == 32
        assert len(store) <= 16
        for trace_id in store.trace_ids():
            assert len(store.get(trace_id)) <= 8

    def test_tracer_bounded_under_concurrent_spans(self):
        from repro.obs.tracing import Tracer, use_trace_context

        tracer = Tracer(max_finished=64)

        def worker(index):
            with use_trace_context(f"{index:032x}"):
                for _ in range(ROUNDS):
                    with tracer.span("hammer", worker=index):
                        pass

        _hammer(worker)
        spans = tracer.finished_spans()
        assert len(spans) == 64
        # every retained span carries the trace id of the thread that
        # opened it — ambient contexts never bled across threads.
        assert all(
            span.trace_id == f"{span.attributes['worker']:032x}"
            for span in spans
        )


class TestLedgerConcurrentWriters:
    def test_same_second_writers_get_distinct_ids(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        record = {"kind": "serve", "systems": {}, "target": "t"}
        run_ids = [None] * THREADS

        def worker(index):
            run_ids[index] = ledger.record_run(dict(record))

        _hammer(worker)
        assert len(set(run_ids)) == THREADS
        listed = ledger.run_ids()
        assert sorted(run_ids) == sorted(listed)
        # latest resolution is deterministic and walks the full chain.
        seen = {
            ledger.resolve(f"latest~{offset}")
            for offset in range(THREADS)
        }
        assert seen == set(run_ids)
        with pytest.raises(KeyError):
            ledger.resolve(f"latest~{THREADS}")

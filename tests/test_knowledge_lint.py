"""Knowledge-set lint (``GK0xx``): per-rule golden tests, gate, CLI."""

import io
import json
import pathlib

import pytest

from repro.knowledge import (
    DecomposedExample,
    Instruction,
    Intent,
    KnowledgeSet,
    Provenance,
    SchemaElement,
)
from repro.knowledge.lint import (
    KNOWLEDGE_RULES,
    error_codes,
    finding_keys,
    lint_codes_by_set,
    lint_knowledge,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "knowledge_corpus"


def codes(findings):
    return {finding.code for finding in findings}


def base_knowledge():
    """A set that lints completely clean against the demo catalog."""
    knowledge = KnowledgeSet("clean")
    knowledge.add_intent(Intent(
        "int-spend", "department spending", tables=("DEPT",),
        provenance=Provenance("query_log", "q-1"),
    ))
    knowledge.add_example(DecomposedExample(
        "ex-budgets", "Department names with budgets.",
        "SELECT DEPT_NAME, BUDGET FROM DEPT", kind="query",
        intent_ids=("int-spend",), tables=("DEPT",),
        columns=("DEPT_NAME", "BUDGET"),
        provenance=Provenance("query_log", "q-1"),
    ))
    knowledge.add_example(DecomposedExample(
        "ex-salaries", "Employee salaries.",
        "SELECT EMP_NAME, SALARY FROM EMP", kind="query",
        tables=("EMP",), columns=("EMP_NAME", "SALARY"),
        provenance=Provenance("query_log", "q-2"),
    ))
    knowledge.add_schema_element(SchemaElement(
        "se-dept", "DEPT", description="Each row is a department.",
        provenance=Provenance("manual"),
    ))
    knowledge.add_schema_element(SchemaElement(
        "se-emp", "EMP", description="Each row is an employee.",
        provenance=Provenance("manual"),
    ))
    return knowledge


class TestRegistry:
    def test_thirteen_rules_registered(self):
        assert len(KNOWLEDGE_RULES) == 13
        assert sorted(KNOWLEDGE_RULES) == [
            f"GK{n:03d}" for n in range(1, 14)
        ]

    def test_render_carries_component_and_suggestion(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-drift", "EMP", column="SALARY", data_type="TEXT",
            provenance=Provenance("manual"),
        ))
        finding = next(
            f for f in lint_knowledge(knowledge, demo_db)
            if f.code == "GK010"
        )
        rendered = finding.render()
        assert "GK010" in rendered
        assert "se-drift" in rendered
        assert "'FLOAT'" in rendered  # suggestion names the live type


class TestCleanBaseline:
    def test_base_set_lints_clean(self, demo_db):
        assert lint_knowledge(base_knowledge(), demo_db) == []


class TestStaleReferences:
    def test_gk001_intent_table_gone(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_intent(Intent(
            "int-gone", "legacy", tables=("LEGACY_ORDERS",),
            provenance=Provenance("query_log"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert codes(findings) == {"GK001"}
        assert findings[0].component_id == "int-gone"

    def test_gk001_schema_element_table_gone(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-gone", "LEGACY_ORDERS", provenance=Provenance("manual"),
        ))
        assert "GK001" in codes(lint_knowledge(knowledge, demo_db))

    def test_gk002_schema_element_column_gone(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-col", "DEPT", column="DEPT_COLOR",
            provenance=Provenance("manual"),
        ))
        assert codes(lint_knowledge(knowledge, demo_db)) == {"GK002"}

    def test_gk002_fragment_column_gone(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-frag", "Project a renamed column.", "DEPT_COLOR",
            kind="select_item", tables=("DEPT",), columns=("DEPT_COLOR",),
            provenance=Provenance("query_log", "q-9"),
        ))
        assert "GK002" in codes(lint_knowledge(knowledge, demo_db))

    def test_gk002_inline_alias_is_not_stale(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-alias", "Total budget.", "SUM(BUDGET) AS TOTAL_BUDGET",
            kind="select_item", tables=("DEPT",),
            columns=("BUDGET", "TOTAL_BUDGET"),
            provenance=Provenance("query_log", "q-9"),
        ))
        assert lint_knowledge(knowledge, demo_db) == []

    def test_gk010_type_drift(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-drift", "EMP", column="SALARY", data_type="TEXT",
            provenance=Provenance("manual"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert codes(findings) == {"GK010"}
        assert findings[0].suggestion == "FLOAT"

    def test_gk010_matching_type_is_clean(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-ok", "EMP", column="SALARY", data_type="float",
            provenance=Provenance("manual"),
        ))
        assert lint_knowledge(knowledge, demo_db) == []

    def test_gk013_stale_top_value(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-top", "DEPT", column="REGION", data_type="TEXT",
            top_values=("Atlantis",), provenance=Provenance("manual"),
        ))
        assert codes(lint_knowledge(knowledge, demo_db)) == {"GK013"}

    def test_gk013_live_top_value_is_clean(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-top", "DEPT", column="REGION", data_type="TEXT",
            top_values=("West", "East"), provenance=Provenance("manual"),
        ))
        assert lint_knowledge(knowledge, demo_db) == []


class TestBrokenExamples:
    def test_gk003_query_example_does_not_parse(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-rot", "Rotted.", "SELECT FROM WHERE", kind="query",
            tables=("DEPT",), provenance=Provenance("query_log"),
        ))
        assert codes(lint_knowledge(knowledge, demo_db)) == {"GK003"}

    def test_gk003_fragment_does_not_parse(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-frag-rot", "Rotted fragment.", "((", kind="select_item",
            tables=("DEPT",), provenance=Provenance("query_log"),
        ))
        assert codes(lint_knowledge(knowledge, demo_db)) == {"GK003"}

    def test_gk004_query_example_has_error_diagnostics(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-lint", "Renamed column.", "SELECT DEPT_COLOR FROM DEPT",
            kind="query", tables=("DEPT",),
            provenance=Provenance("query_log"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert codes(findings) == {"GK004"}
        assert "GE002" in findings[0].message

    def test_gk005_query_example_fails_execution(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-exec", "Sums text.", "SELECT SUM(DEPT_NAME) FROM DEPT",
            kind="query", tables=("DEPT",),
            provenance=Provenance("query_log"),
        ))
        assert codes(lint_knowledge(knowledge, demo_db)) == {"GK005"}


class TestDuplicatesAndContradictions:
    def test_gk006_edited_near_duplicate(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-dup", "Department names with budgets.",
            "SELECT DEPT_NAME, BUDGET FROM DEPT", kind="query",
            tables=("DEPT",), columns=("DEPT_NAME", "BUDGET"),
            provenance=Provenance("feedback", "fb-1"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert codes(findings) == {"GK006"}
        assert findings[0].component_id == "ex-dup"
        assert "ex-budgets" in findings[0].message

    def test_gk006_mined_duplicates_are_tolerated(self, demo_db):
        # Mined sets carry identical fragments by construction; only
        # loop-added (feedback/manual) examples are examined.
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-dup", "Department names with budgets.",
            "SELECT DEPT_NAME, BUDGET FROM DEPT", kind="query",
            tables=("DEPT",), columns=("DEPT_NAME", "BUDGET"),
            provenance=Provenance("query_log", "q-3"),
        ))
        assert lint_knowledge(knowledge, demo_db) == []

    def test_gk007_contradictory_term_definitions(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_instruction(Instruction(
            "in-a", "Active means ACTIVE = TRUE.", kind="term_definition",
            term="active employee", sql_pattern="ACTIVE = TRUE",
            tables=("EMP",), provenance=Provenance("document"),
        ))
        knowledge.add_instruction(Instruction(
            "in-b", "Active means ACTIVE = FALSE.", kind="term_definition",
            term="Active Employee", sql_pattern="ACTIVE = FALSE",
            tables=("EMP",), provenance=Provenance("feedback"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert codes(findings) == {"GK007"}
        assert findings[0].component_id == "in-b"
        assert "in-a" in findings[0].message

    def test_gk007_identical_definitions_are_clean(self, demo_db):
        knowledge = base_knowledge()
        for instruction_id in ("in-a", "in-b"):
            knowledge.add_instruction(Instruction(
                instruction_id, "Active means ACTIVE = TRUE.",
                kind="term_definition", term="active employee",
                sql_pattern="ACTIVE = TRUE", tables=("EMP",),
                provenance=Provenance("document"),
            ))
        assert lint_knowledge(knowledge, demo_db) == []


class TestProvenanceAndRefs:
    def test_gk008_unknown_provenance_kind(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_instruction(Instruction(
            "in-wiki", "Budgets are in thousands.", tables=("DEPT",),
            provenance=Provenance("wiki"),
        ))
        assert codes(lint_knowledge(knowledge, demo_db)) == {"GK008"}

    def test_gk009_dangling_intent_reference(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_example(DecomposedExample(
            "ex-ref", "Head count by department.",
            "SELECT DEPT_ID, COUNT(EMP_ID) AS HEADCOUNT "
            "FROM EMP GROUP BY DEPT_ID",
            kind="query", intent_ids=("int-retired",), tables=("EMP",),
            provenance=Provenance("query_log"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert codes(findings) == {"GK009"}
        assert "int-retired" in findings[0].message


class TestCoverage:
    def test_gk011_gk012_on_empty_set(self, demo_db):
        findings = lint_knowledge(KnowledgeSet("empty"), demo_db)
        assert codes(findings) == {"GK011", "GK012"}
        # One GK011 and one GK012 per catalog table.
        assert sum(1 for f in findings if f.code == "GK011") == 2
        assert sum(1 for f in findings if f.code == "GK012") == 2

    def test_coverage_findings_are_not_errors(self, demo_db):
        findings = lint_knowledge(KnowledgeSet("empty"), demo_db)
        assert error_codes(findings) == ()


class TestHelpers:
    def test_error_codes_and_finding_keys(self, demo_db):
        knowledge = base_knowledge()
        knowledge.add_schema_element(SchemaElement(
            "se-col", "DEPT", column="DEPT_COLOR",
            provenance=Provenance("manual"),
        ))
        findings = lint_knowledge(knowledge, demo_db)
        assert error_codes(findings) == ("GK002",)
        assert finding_keys(findings) == {("GK002", "schema", "se-col")}

    def test_lint_codes_by_set(self, demo_db):
        bad = base_knowledge()
        bad.add_schema_element(SchemaElement(
            "se-col", "DEPT", column="DEPT_COLOR",
            provenance=Provenance("manual"),
        ))
        by_set = lint_codes_by_set(
            {"demo": demo_db}, {"demo": bad, "orphan": base_knowledge()}
        )
        assert by_set == {"demo": {"GK002": 1}}


class TestKnowledgeGate:
    def test_gate_passes_on_identical_sets(self, demo_db):
        from repro.feedback.regression import run_knowledge_gate

        live = base_knowledge()
        report = run_knowledge_gate(demo_db, live, live.clone())
        assert report.passed
        assert report.summary().startswith("PASS")

    def test_pre_existing_debt_does_not_block(self, demo_db):
        from repro.feedback.regression import run_knowledge_gate

        live = base_knowledge()
        live.add_schema_element(SchemaElement(
            "se-debt", "DEPT", column="DEPT_COLOR",
            provenance=Provenance("manual"),
        ))
        staged = live.clone()
        staged.add_instruction(Instruction(
            "in-new", "Budgets are in thousands.", tables=("DEPT",),
            provenance=Provenance("feedback"),
        ))
        report = run_knowledge_gate(demo_db, live, staged)
        assert report.passed
        assert report.live_errors == 1
        assert report.staged_errors == 1

    def test_new_error_fails_the_gate(self, demo_db):
        from repro.feedback.regression import run_knowledge_gate

        live = base_knowledge()
        staged = live.clone()
        staged.add_example(DecomposedExample(
            "ex-bad", "Renamed column.", "SELECT DEPT_COLOR FROM DEPT",
            kind="query", tables=("DEPT",),
            provenance=Provenance("feedback"),
        ))
        report = run_knowledge_gate(demo_db, live, staged)
        assert not report.passed
        assert [f.code for f in report.new_findings] == ["GK004"]
        assert "FAIL" in report.summary()
        assert "GK004" in report.summary()


class TestSolverGate:
    @pytest.fixture()
    def solver(self, experiment_context):
        from repro.feedback import ApprovalQueue, FeedbackSolver
        from repro.pipeline import GenEditPipeline

        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets[
            "sports_holdings"
        ].clone()
        pipeline = GenEditPipeline(profile.database, knowledge)
        queue = ApprovalQueue(knowledge)
        return FeedbackSolver(pipeline, approval_queue=queue)

    def _inject_edit(self, solver, payload):
        from repro.feedback.models import (
            ACTION_INSERT,
            COMPONENT_EXAMPLE,
            COMPONENT_INSTRUCTION,
            EditRecommendation,
            next_edit_id,
        )

        kind = (
            COMPONENT_EXAMPLE
            if isinstance(payload, DecomposedExample)
            else COMPONENT_INSTRUCTION
        )
        edit = EditRecommendation(
            edit_id=next_edit_id(), action=ACTION_INSERT, kind=kind,
            summary="injected", payload=payload,
        )
        solver.recommendations.append(edit)
        solver.stage(edit.edit_id)
        return edit

    def test_rejects_edit_with_new_error_finding(self, solver):
        from repro.feedback.models import SUBMISSION_REJECTED

        solver.ask("How many teams are there?")
        solver.give_feedback("The org names look wrong.")
        self._inject_edit(solver, DecomposedExample(
            "ex-gate-bad", "Org names.",
            "SELECT ORG_NAM FROM SPORTS_ORGS", kind="query",
            tables=("SPORTS_ORGS",), provenance=Provenance("feedback"),
        ))
        submission = solver.submit()
        assert submission.status == SUBMISSION_REJECTED
        assert not submission.knowledge_gate.passed
        assert "GK004" in submission.knowledge_gate.summary()
        # Regression still ran so the SME sees the whole picture.
        assert submission.regression_report is not None

    def test_accepts_clean_edit(self, solver):
        from repro.feedback.models import SUBMISSION_PENDING_APPROVAL

        solver.ask("How many teams are there?")
        solver.give_feedback("Needs a unit note.")
        self._inject_edit(solver, Instruction(
            "in-gate-ok", "Arena capacity is seats, not thousands.",
            tables=("SPORTS_ORGS",), provenance=Provenance("feedback"),
        ))
        submission = solver.submit()
        assert submission.knowledge_gate.passed
        assert submission.status == SUBMISSION_PENDING_APPROVAL


class TestCli:
    def _run(self, argv):
        from repro.cli import build_arg_parser

        out = io.StringIO()
        args = build_arg_parser().parse_args(argv)
        code = args.func(args, out=out)
        return code, out.getvalue()

    def test_lint_knowledge_fixture_fails(self):
        code, output = self._run([
            "lint-knowledge", "--db", "sports_holdings",
            "--knowledge", str(FIXTURES / "stale_column_sports.json"),
        ])
        assert code == 1
        assert "GK002" in output
        assert "ORG_NAM" in output

    def test_lint_knowledge_json_records(self):
        code, output = self._run([
            "lint-knowledge", "--db", "sports_holdings",
            "--knowledge", str(FIXTURES / "stale_column_sports.json"),
            "--json",
        ])
        assert code == 1
        records = json.loads(output)
        assert records[0]["code"] == "GK002"
        assert records[0]["component_kind"] == "schema"
        assert records[0]["component_id"] == "se-org-nam"

    def test_lint_knowledge_requires_db_for_file(self):
        code, output = self._run([
            "lint-knowledge",
            "--knowledge", str(FIXTURES / "stale_column_sports.json"),
        ])
        assert code == 2
        assert "--db" in output

    def test_lint_json_structured_output(self):
        code, output = self._run([
            "lint", "SELECT ORG_NAM FROM SPORTS_ORGS",
            "--db", "sports_holdings", "--json",
        ])
        assert code == 1
        records = json.loads(output)
        ge002 = next(r for r in records if r["code"] == "GE002")
        assert ge002["severity"] == "error"
        assert ge002["span"] == {"position": 7, "line": 1, "column": 8}
        assert ge002["suggestion"] == "ORG_NAME"

    def test_lint_json_clean_is_empty_list(self):
        code, output = self._run([
            "lint", "SELECT ORG_NAME FROM SPORTS_ORGS",
            "--db", "sports_holdings", "--json",
        ])
        assert code == 0
        assert json.loads(output) == []

"""Knowledge-set tests: models, store, mining, versioning, library."""

import pytest

from repro.knowledge import (
    DecomposedExample,
    DomainDocument,
    GlossaryEntry,
    GuidelineEntry,
    Instruction,
    Intent,
    KnowledgeLibrary,
    KnowledgeSet,
    KnowledgeSetHistory,
    LoggedQuery,
    Provenance,
    build_examples,
    build_full_query_example,
    describe_unit,
    mine_knowledge_set,
    next_component_id,
)


@pytest.fixture()
def knowledge():
    ks = KnowledgeSet("test")
    intent = Intent(intent_id="i1", name="finance", description="money stuff")
    ks.add_intent(intent)
    ks.add_example(
        DecomposedExample(
            example_id="ex1",
            description="Filter rows where country is Canada",
            sql="WHERE COUNTRY = 'Canada'",
            kind="where",
            intent_ids=("i1",),
        )
    )
    ks.add_example(
        DecomposedExample(
            example_id="ex2",
            description="Rank organisations from both ends",
            sql="ROW_NUMBER() OVER (ORDER BY X DESC)",
            kind="window_function",
            pattern="topk_both_ends",
            intent_ids=("i1",),
        )
    )
    ks.add_instruction(
        Instruction(
            instruction_id="in1",
            text="RPV means revenue per viewer",
            kind="term_definition",
            term="RPV",
            sql_pattern="SUM(R)/NULLIF(SUM(V),0)",
            intent_ids=("i1",),
        )
    )
    return ks


class TestModels:
    def test_component_ids_unique(self):
        first, second = next_component_id("x"), next_component_id("x")
        assert first != second

    def test_pseudo_sql_form(self):
        example = DecomposedExample("e", "d", "WHERE X = 1")
        assert example.pseudo_sql == "... WHERE X = 1 ..."

    def test_retrieval_text_includes_term_and_pattern(self):
        instruction = Instruction(
            "i", "text here", term="AOV", sql_pattern="AVG(A)"
        )
        assert "AOV" in instruction.retrieval_text
        assert "AVG(A)" in instruction.retrieval_text

    def test_schema_element_names(self):
        from repro.knowledge import SchemaElement

        table = SchemaElement("s1", "T")
        column = SchemaElement("s2", "T", "C")
        assert table.is_table and table.qualified_name == "T"
        assert not column.is_table and column.qualified_name == "T.C"


class TestStore:
    def test_stats(self, knowledge):
        stats = knowledge.stats()
        assert stats == {
            "intents": 1, "examples": 2, "instructions": 1,
            "schema_elements": 0,
        }

    def test_intent_keyed_lookup(self, knowledge):
        assert len(knowledge.examples_for_intents(["i1"])) == 2
        assert knowledge.examples_for_intents(["nope"]) == []

    def test_search_examples(self, knowledge):
        hits = knowledge.search_examples("filter by country", k=1)
        assert hits[0].doc_id == "ex1"

    def test_term_definitions(self, knowledge):
        assert "rpv" in knowledge.term_definitions()

    def test_update_requires_existing(self, knowledge):
        with pytest.raises(KeyError):
            knowledge.update_example(
                DecomposedExample("ghost", "d", "SQL")
            )

    def test_delete_example(self, knowledge):
        knowledge.delete_example("ex1")
        assert knowledge.example("ex1") is None
        assert all(
            hit.doc_id != "ex1" for hit in knowledge.search_examples("country")
        )

    def test_snapshot_restore_round_trip(self, knowledge):
        snapshot = knowledge.snapshot()
        knowledge.delete_example("ex1")
        knowledge.delete_instruction("in1")
        knowledge.restore(snapshot)
        assert knowledge.example("ex1") is not None
        assert knowledge.instruction("in1") is not None

    def test_clone_is_independent(self, knowledge):
        clone = knowledge.clone()
        clone.delete_example("ex1")
        assert knowledge.example("ex1") is not None

    def test_snapshot_deep_copies(self, knowledge):
        snapshot = knowledge.snapshot()
        snapshot["examples"][0].description = "mutated"
        assert knowledge.example("ex1").description != "mutated"

    def test_add_example_invalidates_index_norms(self, knowledge):
        from repro.text import l2_norm

        knowledge.search_examples("country", k=1)  # warm index + norms
        knowledge.add_example(
            DecomposedExample("ex-new", "wombat census by country",
                              "SELECT COUNT(*) FROM WOMBATS")
        )
        hits = knowledge.search_examples("wombat census", k=1)
        assert hits[0].doc_id == "ex-new"
        document = knowledge._example_index.get("ex-new")
        assert document.norm == pytest.approx(l2_norm(document.vector))

    def test_delete_example_invalidates_cached_search(self, knowledge):
        assert any(
            hit.doc_id == "ex1"
            for hit in knowledge.search_examples("filter by country", k=2)
        )
        knowledge.delete_example("ex1")
        assert all(
            hit.doc_id != "ex1"
            for hit in knowledge.search_examples("filter by country", k=2)
        )


class TestDecompositionBuilders:
    SQL = (
        "SELECT DEPT_ID, SUM(SALARY) AS total FROM EMP "
        "WHERE ACTIVE = TRUE GROUP BY DEPT_ID"
    )

    def test_build_examples_skips_full_query_by_default(self):
        examples = build_examples("q?", self.SQL, source_query_id="q1")
        assert all(example.kind != "query" for example in examples)
        assert len(examples) >= 4

    def test_build_examples_provenance(self):
        examples = build_examples("q?", self.SQL, source_query_id="q1")
        assert all(
            example.provenance.source_kind == "query_log"
            and example.source_query_id == "q1"
            for example in examples
        )

    def test_full_query_example(self):
        example = build_full_query_example("q?", self.SQL)
        assert example.kind == "query"
        assert example.description == "q?"
        assert example.tables == ("EMP",)

    def test_describe_unit_templates(self):
        from repro.sql.decompose import decompose
        from repro.sql.parser import parse

        units = decompose(parse(self.SQL))
        where_unit = next(unit for unit in units if unit.kind == "where")
        assert describe_unit(where_unit).startswith("Filter rows where")


class TestMining:
    def test_mine_full_pipeline(self, demo_db):
        log = [
            LoggedQuery(
                "q1", "Show me total salary",
                "SELECT SUM(SALARY) FROM EMP", "hr analytics",
            )
        ]
        documents = [
            DomainDocument(
                "doc1", "handbook",
                glossary=[
                    GlossaryEntry(
                        "headcount", "number of employees",
                        "COUNT(*)", ("EMP",), "hr analytics",
                    )
                ],
                guidelines=[
                    GuidelineEntry(
                        "'active' means ACTIVE = TRUE",
                        "ACTIVE = TRUE", ("EMP",), "hr analytics",
                    )
                ],
            )
        ]
        knowledge = mine_knowledge_set(demo_db, log, documents)
        assert knowledge.stats()["intents"] == 1
        assert knowledge.stats()["examples"] >= 3
        assert "headcount" in knowledge.term_definitions()
        # schema elements: 2 tables + 10 columns
        assert knowledge.stats()["schema_elements"] == 12

    def test_schema_elements_carry_top_values(self, demo_db):
        knowledge = mine_knowledge_set(demo_db, [], [])
        region = next(
            element for element in knowledge.schema_elements()
            if element.column == "REGION"
        )
        assert "West" in region.top_values

    def test_undecomposed_mode(self, demo_db):
        log = [
            LoggedQuery("q1", "total salary", "SELECT SUM(SALARY) FROM EMP")
        ]
        knowledge = mine_knowledge_set(
            demo_db, log, [], decompose_examples=False
        )
        assert all(
            example.kind == "query" for example in knowledge.examples()
        )

    def test_intent_from_table_footprint_when_unnamed(self, demo_db):
        log = [LoggedQuery("q1", "q", "SELECT SUM(SALARY) FROM EMP")]
        knowledge = mine_knowledge_set(demo_db, log, [])
        assert knowledge.intents()[0].name == "emp"


class TestVersioning:
    def test_initial_checkpoint_exists(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        assert len(history.checkpoints()) == 1

    def test_records_newest_first(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        history.record("insert", "example", "e1", "first")
        history.record("delete", "example", "e2", "second")
        records = history.records()
        assert records[0].summary == "second"

    def test_filter_by_feedback(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        history.record("insert", "example", "e1", "s", feedback_id="fb-1")
        history.record("insert", "example", "e2", "s")
        assert len(history.records(feedback_id="fb-1")) == 1

    def test_revert_restores_contents(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        checkpoint = history.checkpoint("before damage")
        knowledge.delete_example("ex1")
        history.revert_to(checkpoint.checkpoint_id)
        assert knowledge.example("ex1") is not None

    def test_revert_unknown_checkpoint(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        with pytest.raises(KeyError):
            history.revert_to("ckpt-9999")

    def test_diff_between_checkpoints(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        first = history.checkpoint("a")
        knowledge.add_instruction(
            Instruction("in2", "new guideline")
        )
        knowledge.delete_example("ex2")
        second = history.checkpoint("b")
        diff = history.diff(first.checkpoint_id, second.checkpoint_id)
        assert diff["instructions"]["added"] == ["in2"]
        assert diff["examples"]["removed"] == ["ex2"]


class TestLibrary:
    @pytest.fixture()
    def library(self, knowledge):
        history = KnowledgeSetHistory(knowledge)
        return KnowledgeLibrary(knowledge, history)

    def test_overview(self, library):
        overview = library.overview()
        assert overview["stats"]["examples"] == 2
        assert overview["checkpoints"]

    def test_direct_instruction_edit_recorded(self, library):
        instruction = library.add_instruction(
            "'gross' means before discounts", term="gross"
        )
        assert library.knowledge_set.instruction(instruction.instruction_id)
        assert library.history.records()[0].action == "insert"

    def test_direct_example_edit(self, library):
        example = library.add_example("demo", "WHERE X = 1", kind="where")
        assert library.knowledge_set.example(example.example_id)

    def test_delete_component(self, library):
        library.delete_component("ex1")
        assert library.knowledge_set.example("ex1") is None
        with pytest.raises(KeyError):
            library.delete_component("missing")

    def test_component_provenance(self, library):
        info = library.component_provenance("in1")
        assert isinstance(info["provenance"], Provenance)
        with pytest.raises(KeyError):
            library.component_provenance("nope")

    def test_feedback_timeline_groups(self, library):
        library.history.record(
            "insert", "example", "e9", "s", feedback_id="fb-9"
        )
        timeline = library.feedback_timeline()
        assert timeline[0][0] == "fb-9"

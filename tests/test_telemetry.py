"""Streaming exporter tests: promtext, OTLP shape, the push sink.

Covers DESIGN.md §6g's exporter half — Prometheus text that round-trips
through ``scripts/check_promtext.py``, OTLP-shaped JSON with
non-cumulative bucket counts, and the :class:`TelemetrySink` lifecycle
(atomic writes, coalescing, drop accounting, final-snapshot flush).
"""

from __future__ import annotations

import importlib.util
import json
import os
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetrySink,
    format_for_path,
    render_otlp,
    render_promtext,
    render_snapshot,
    sanitize_metric_name,
    split_metric_key,
)

_CHECKER_PATH = os.path.join(
    os.path.dirname(__file__), "..", "scripts", "check_promtext.py"
)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_promtext", _CHECKER_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def make_registry():
    registry = MetricsRegistry()
    registry.inc("pipeline.runs", 3)
    registry.inc("llm.calls", 2, operator="plan", model="gpt-4o")
    registry.inc("llm.calls", 1, operator="generate_sql", model="gpt-4o")
    registry.set_gauge("cache.size", 17)
    registry.observe("pipeline.generate_ms", 5.0, buckets=(10.0, 50.0))
    registry.observe("pipeline.generate_ms", 70.0, buckets=(10.0, 50.0))
    return registry


class TestKeyHandling:
    def test_split_metric_key_inverts_label_folding(self):
        assert split_metric_key("llm.calls{model=gpt-4o,operator=plan}") \
            == ("llm.calls", {"model": "gpt-4o", "operator": "plan"})
        assert split_metric_key("pipeline.runs") == ("pipeline.runs", {})

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("pipeline.generate_ms") \
            == "pipeline_generate_ms"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_schema_version_pinned(self):
        assert TELEMETRY_SCHEMA_VERSION == 1


class TestPromtext:
    def test_counters_get_total_suffix_and_labels(self):
        text = render_promtext(make_registry().snapshot())
        assert "# TYPE pipeline_runs_total counter" in text
        assert "pipeline_runs_total 3" in text
        assert (
            'llm_calls_total{model="gpt-4o",operator="plan"} 2' in text
        )

    def test_histogram_family_is_cumulative_and_ends_at_inf(self):
        text = render_promtext(make_registry().snapshot())
        lines = [
            line for line in text.splitlines()
            if line.startswith("pipeline_generate_ms")
        ]
        assert 'pipeline_generate_ms_bucket{le="10"} 1' in lines
        assert 'pipeline_generate_ms_bucket{le="50"} 1' in lines
        assert 'pipeline_generate_ms_bucket{le="+Inf"} 2' in lines
        assert "pipeline_generate_ms_count 2" in lines
        assert any(
            line.startswith("pipeline_generate_ms_sum ") for line in lines
        )

    def test_one_type_line_per_family(self):
        text = render_promtext(make_registry().snapshot())
        type_lines = [
            line for line in text.splitlines()
            if line.startswith("# TYPE llm_calls_total")
        ]
        assert len(type_lines) == 1

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("odd", db='we"ird')
        text = render_promtext(registry.snapshot())
        assert 'odd_total{db="we\\"ird"} 1' in text

    def test_round_trips_through_the_linter(self):
        checker = _load_checker()
        text = render_promtext(make_registry().snapshot())
        assert checker.lint_promtext(text, "test.prom") == []

    def test_empty_snapshot_renders_and_lints(self):
        checker = _load_checker()
        text = render_promtext(MetricsRegistry().snapshot())
        assert checker.lint_promtext(text, "empty.prom") == []

    def test_linter_flags_non_cumulative_buckets(self):
        checker = _load_checker()
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="10"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        problems = checker.lint_promtext(bad, "bad.prom")
        assert problems


class TestOtlp:
    def test_counter_becomes_monotonic_sum(self):
        payload = render_otlp(make_registry().snapshot())
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        sums = {
            metric["name"]: metric["sum"]
            for metric in metrics if "sum" in metric
        }
        assert sums["pipeline_runs"]["isMonotonic"] is True
        assert sums["pipeline_runs"]["aggregationTemporality"] == 2
        assert sums["pipeline_runs"]["dataPoints"][0]["asInt"] == "3"

    def test_histogram_bucket_counts_are_non_cumulative(self):
        payload = render_otlp(make_registry().snapshot())
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        (histogram,) = [
            metric["histogram"] for metric in metrics
            if "histogram" in metric
        ]
        (point,) = histogram["dataPoints"]
        assert point["explicitBounds"] == [10.0, 50.0]
        # 5ms -> first bucket, 70ms -> overflow: [1, 0, 1].
        assert point["bucketCounts"] == ["1", "0", "1"]
        assert len(point["bucketCounts"]) == \
            len(point["explicitBounds"]) + 1
        assert point["count"] == "2"
        assert point["timeUnixNano"] == "0"

    def test_identical_registries_render_identically(self):
        text_a = render_snapshot(make_registry().snapshot(), "otlp")
        text_b = render_snapshot(make_registry().snapshot(), "otlp")
        assert text_a == text_b
        json.loads(text_a)  # valid JSON

    def test_format_for_path(self):
        assert format_for_path("metrics.json") == "otlp"
        assert format_for_path("metrics.prom") == "prom"
        assert format_for_path("metrics") == "prom"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry format"):
            render_snapshot({}, "xml")


class TestTelemetrySink:
    def test_publish_and_close_write_final_state(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "metrics.prom"
        sink = TelemetrySink(path, registry=registry)
        assert sink.publish()
        registry.inc("pipeline.runs")  # after the first publish
        sink.close()
        text = path.read_text()
        # close() flushes a *final* snapshot: the late increment lands.
        assert "pipeline_runs_total 4" in text
        assert sink.stats()["writes"] >= 1
        assert sink.stats()["write_errors"] == 0

    def test_otlp_sink_writes_valid_json(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "metrics.json"
        with TelemetrySink(path, registry=registry) as sink:
            sink.publish()
        payload = json.loads(path.read_text())
        assert payload["resourceMetrics"]

    def test_full_queue_drops_and_counts(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("x")
        sink = TelemetrySink(
            tmp_path / "m.prom", registry=registry, maxsize=1
        )
        # Flood faster than the worker can drain; some must drop.
        results = [sink.publish() for _ in range(200)]
        sink.close()
        stats = sink.stats()
        assert stats["published"] + stats["dropped"] == 200
        assert results.count(False) == stats["dropped"]
        # Dropping is recorded in the registry too.
        if stats["dropped"]:
            assert registry.snapshot()["counters"]["telemetry.dropped"] \
                == stats["dropped"]

    def test_publish_after_close_is_refused(self, tmp_path):
        sink = TelemetrySink(
            tmp_path / "m.prom", registry=MetricsRegistry()
        )
        sink.close()
        assert sink.publish() is False
        sink.close()  # idempotent

    def test_concurrent_publishers_leave_a_parseable_file(self, tmp_path):
        checker = _load_checker()
        registry = make_registry()
        path = tmp_path / "m.prom"
        sink = TelemetrySink(path, registry=registry)

        def hammer():
            for _ in range(50):
                registry.inc("pipeline.runs")
                sink.publish()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        # Atomic replace-writes: the file is always one whole snapshot.
        assert checker.lint_promtext(path.read_text(), "m.prom") == []

"""Spec-to-SQL builder tests: every shape parses and executes."""

import pytest

from repro.engine import Executor
from repro.sql.parser import parse
from repro.pipeline.builders import build_sql
from repro.pipeline.spec import (
    FilterSpec,
    HavingSpec,
    JoinSpec,
    MetricSpec,
    OrderSpec,
    QuarterFilter,
    QuerySpec,
    RatioDeltaSpec,
    SHAPE_RATIO_DELTA_RANK,
    SHAPE_SHARE_OF_TOTAL,
    SHAPE_TOPK_BOTH_ENDS,
    sql_literal,
)


def standard(**overrides):
    defaults = dict(
        database="demo",
        base_table="EMP",
        metrics=(MetricSpec("SUM", column="SALARY"),),
    )
    defaults.update(overrides)
    return QuerySpec(**defaults)


class TestSpecModel:
    def test_metric_render_forms(self):
        assert MetricSpec("COUNT").render() == "COUNT(*)"
        assert MetricSpec("COUNT_DISTINCT", column="X").render() == (
            "COUNT(DISTINCT X)"
        )
        assert MetricSpec("EXPR", expression="A + B").render() == "A + B"
        assert MetricSpec("AVG", column="X").render() == "AVG(X)"

    def test_filter_render(self):
        assert FilterSpec("C", "=", "O'Hara").render() == "C = 'O''Hara'"
        assert FilterSpec("C", ">", 5).render() == "C > 5"
        assert FilterSpec(raw="X IS NULL").render() == "X IS NULL"

    def test_quarter_filter_render(self):
        quarter = QuarterFilter("D", 2023, 2)
        assert quarter.render() == "TO_CHAR(D, 'YYYY\"Q\"Q') = '2023Q2'"
        assert quarter.label == "2023Q2"
        year = QuarterFilter("D", 2022)
        assert year.render() == "TO_CHAR(D, 'YYYY') = '2022'"

    def test_ratio_previous_label_wraps_year(self):
        params = RatioDeltaSpec(
            entity_column="E", numerator_table="T",
            numerator_date_column="D", numerator_value_column="V",
            year=2023, quarter=1,
        )
        assert params.previous_label == "2022Q4"

    def test_sql_literal(self):
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"
        assert sql_literal(1.5) == "1.5"

    def test_spec_tables(self):
        spec = standard(joins=(JoinSpec("DEPT", "DEPT_ID", "DEPT_ID"),))
        assert spec.tables == ("EMP", "DEPT")

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            build_sql(standard(shape="mystery"))


class TestStandardShape:
    def test_minimal(self, demo_db):
        sql = build_sql(standard())
        assert sql == "SELECT SUM(SALARY) AS METRIC_VALUE FROM EMP"
        assert Executor(demo_db).execute(sql).rows == [(515.0,)]

    def test_filters_and_quarter(self, demo_db):
        sql = build_sql(
            standard(
                filters=(FilterSpec("ACTIVE", "=", True),),
                quarter_filters=(QuarterFilter("HIRED", 2020, 1),),
            )
        )
        assert "WHERE ACTIVE = TRUE AND" in sql
        Executor(demo_db).execute(sql)

    def test_group_having_order(self, demo_db):
        spec = standard(
            projection=("DEPT_ID",),
            group_by=("DEPT_ID",),
            having=(HavingSpec(0, ">", 100),),
            order=OrderSpec(metric_index=0, descending=True, limit=2),
        )
        sql = build_sql(spec)
        result = Executor(demo_db).execute(sql)
        assert result.columns == ["DEPT_ID", "METRIC_VALUE"]
        assert len(result.rows) == 2

    def test_join(self, demo_db):
        spec = standard(
            joins=(JoinSpec("DEPT", "DEPT_ID", "DEPT_ID"),),
            projection=("REGION",),
            group_by=("REGION",),
        )
        result = Executor(demo_db).execute(build_sql(spec))
        assert len(result.rows) == 2

    def test_projection_only(self, demo_db):
        spec = QuerySpec(
            database="demo", base_table="EMP",
            projection=("EMP_NAME", "SALARY"),
            order=OrderSpec(column="SALARY", descending=False),
        )
        result = Executor(demo_db).execute(build_sql(spec))
        assert result.rows[0][0] == "Barbara"

    def test_empty_projection_falls_back_to_star(self, demo_db):
        spec = QuerySpec(database="demo", base_table="DEPT")
        result = Executor(demo_db).execute(build_sql(spec))
        assert len(result.columns) == 4

    def test_distinct(self, demo_db):
        spec = QuerySpec(
            database="demo", base_table="EMP",
            projection=("DEPT_ID",), distinct=True,
        )
        assert len(Executor(demo_db).execute(build_sql(spec)).rows) == 3


class TestComplexShapes:
    def test_topk_both_ends(self, demo_db):
        spec = standard(
            shape=SHAPE_TOPK_BOTH_ENDS,
            group_by=("EMP_NAME",),
            filters=(FilterSpec(raw="SALARY IS NOT NULL"),),
            order=OrderSpec(metric_index=0, limit=2, both_ends=True),
        )
        sql = build_sql(spec)
        parse(sql)
        result = Executor(demo_db).execute(sql)
        # 5 salaried employees, best 2 + worst 2 = 4 rows
        assert len(result.rows) == 4
        assert result.columns == ["EMP_NAME", "METRIC_VALUE", "BEST_RANK"]
        assert result.rows[0][0] == "Grace"

    def test_topk_single_end(self, demo_db):
        spec = standard(
            shape=SHAPE_TOPK_BOTH_ENDS,
            group_by=("EMP_NAME",),
            order=OrderSpec(metric_index=0, limit=2, both_ends=False),
        )
        result = Executor(demo_db).execute(build_sql(spec))
        assert len(result.rows) == 2

    def test_share_of_total(self, demo_db):
        spec = standard(
            shape=SHAPE_SHARE_OF_TOTAL,
            group_by=("DEPT_ID",),
            filters=(FilterSpec(raw="SALARY IS NOT NULL"),),
        )
        result = Executor(demo_db).execute(build_sql(spec))
        shares = [row[2] for row in result.rows]
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)

    def test_ratio_delta_with_denominator(self, sports_profile):
        params = RatioDeltaSpec(
            entity_column="ORG_NAME",
            numerator_table="SPORTS_FINANCIALS",
            numerator_date_column="FIN_MONTH",
            numerator_value_column="REVENUE",
            year=2023, quarter=2,
            denominator_table="SPORTS_VIEWERSHIP",
            denominator_date_column="VIEW_MONTH",
            denominator_value_column="VIEWS",
            negate=True, k=5, both_ends=True,
            numerator_filters=(FilterSpec("COUNTRY", "=", "Canada"),),
            denominator_filters=(FilterSpec("COUNTRY", "=", "Canada"),),
        )
        spec = QuerySpec(
            database="sports_holdings", base_table="SPORTS_FINANCIALS",
            shape=SHAPE_RATIO_DELTA_RANK, ratio_delta=params,
        )
        sql = build_sql(spec)
        parse(sql)
        result = Executor(sports_profile.database).execute(sql)
        assert result.columns[0] == "ORG_NAME"
        assert result.rows  # Canadian orgs exist
        ranks = [row[4] for row in result.rows]
        assert ranks == sorted(ranks)

    def test_ratio_delta_without_denominator(self, sports_profile):
        params = RatioDeltaSpec(
            entity_column="ORG_NAME",
            numerator_table="SPORTS_FINANCIALS",
            numerator_date_column="FIN_MONTH",
            numerator_value_column="REVENUE",
            year=2023, quarter=3, k=3, both_ends=False,
        )
        spec = QuerySpec(
            database="sports_holdings", base_table="SPORTS_FINANCIALS",
            shape=SHAPE_RATIO_DELTA_RANK, ratio_delta=params,
        )
        result = Executor(sports_profile.database).execute(build_sql(spec))
        assert len(result.rows) == 3

    def test_all_shapes_produce_parseable_sql(self, demo_db):
        specs = [
            standard(),
            standard(
                shape=SHAPE_TOPK_BOTH_ENDS, group_by=("EMP_NAME",),
                order=OrderSpec(metric_index=0, limit=1, both_ends=True),
            ),
            standard(shape=SHAPE_SHARE_OF_TOTAL, group_by=("DEPT_ID",)),
        ]
        for spec in specs:
            parse(build_sql(spec))

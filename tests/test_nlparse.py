"""Question surface-grammar tests (the simulated LLM's language competence)."""

import pytest

from repro.pipeline.nlparse import (
    KIND_AGGREGATE,
    KIND_BOTH_ENDS,
    KIND_COUNT,
    KIND_DELTA,
    KIND_GROUP_AGG,
    KIND_LISTING,
    KIND_SHARE,
    KIND_TOPK,
    canonicalize,
    parse_question,
)


class TestCanonicalize:
    @pytest.mark.parametrize("raw,expected", [
        ("What is the total revenue?", "Show me the total revenue"),
        ("Show me the total revenue", "Show me the total revenue"),
        ("How many orders are there?",
         "Show me the number of orders are there"),
        ("List the stores", "Show me the stores"),
        ("Identify our 5 teams", "Show me our 5 teams"),
        ("total revenue", "Show me total revenue"),
    ])
    def test_forms(self, raw, expected):
        assert canonicalize(raw) == expected


class TestAggregates:
    def test_simple_sum(self):
        parsed = parse_question("What is the total revenue?")
        assert parsed.kind == KIND_AGGREGATE
        assert parsed.metric_agg == "SUM"
        assert parsed.metric_phrase == "revenue"

    @pytest.mark.parametrize("word,agg", [
        ("average", "AVG"), ("highest", "MAX"), ("lowest", "MIN"),
        ("total", "SUM"),
    ])
    def test_agg_words(self, word, agg):
        parsed = parse_question(f"Show me the {word} salary")
        assert parsed.metric_agg == agg

    def test_metric_of_entity_split(self):
        parsed = parse_question(
            "What is the total revenue of our organisations?"
        )
        assert parsed.metric_phrase == "revenue"
        assert parsed.entity_phrase == "organisation"
        assert "our" in parsed.adjectives

    def test_term_metric(self):
        parsed = parse_question("What is the QoQFP?")
        assert parsed.metric_agg == "TERM"
        assert parsed.metric_phrase == "qoqfp"


class TestCounts:
    def test_count_entity(self):
        parsed = parse_question("How many orders are there?")
        assert parsed.kind == KIND_COUNT
        assert parsed.metric_agg == "COUNT"
        assert parsed.entity_phrase == "order"

    def test_trailing_copula_stripped(self):
        parsed = parse_question("How many stores are in Boston?")
        assert parsed.entity_phrase == "store"
        assert parsed.value_filters == ("Boston",)

    def test_count_distinct(self):
        parsed = parse_question("Show me the number of distinct regions")
        assert parsed.metric_agg == "COUNT_DISTINCT"
        assert parsed.metric_phrase == "regions"

    def test_adjective_extraction(self):
        parsed = parse_question("How many online orders are there?")
        assert parsed.adjectives == ("online",)
        assert parsed.entity_phrase == "order"

    def test_multiple_adjectives(self):
        parsed = parse_question("How many our online orders are there?")
        assert set(parsed.adjectives) == {"our", "online"}


class TestFilters:
    def test_bare_value(self):
        parsed = parse_question("Show me the total revenue in Canada")
        assert parsed.value_filters == ("Canada",)

    def test_multiword_value(self):
        parsed = parse_question("How many patients are in Quebec City?")
        assert parsed.value_filters == ("Quebec City",)

    def test_quarter(self):
        parsed = parse_question("Show me the total revenue for Q2 2023")
        assert parsed.quarter == (2023, 2)

    def test_year(self):
        parsed = parse_question("Show me the total revenue in 2022")
        assert parsed.year == 2022
        assert parsed.value_filters == ()

    def test_quarter_and_value(self):
        parsed = parse_question(
            "Show me the total revenue in Canada for Q1 2023"
        )
        assert parsed.quarter == (2023, 1)
        assert parsed.value_filters == ("Canada",)

    def test_eq_filter_with_column(self):
        parsed = parse_question(
            "How many orders are there where the status is returned?"
        )
        assert parsed.eq_filters == (("status", "returned"),)

    def test_two_eq_filters(self):
        parsed = parse_question(
            "How many orders are there where the status is returned "
            "and the channel is online?"
        )
        assert len(parsed.eq_filters) == 2

    @pytest.mark.parametrize("phrase,op", [
        ("above", ">"), ("below", "<"), ("at least", ">="),
        ("at most", "<="), ("over", ">"), ("under", "<"),
    ])
    def test_comparison_filters(self, phrase, op):
        parsed = parse_question(
            f"How many shipments are there with weight {phrase} 500?"
        )
        assert parsed.cmp_filters == (("weight", op, 500),)

    def test_since_year(self):
        parsed = parse_question("Show me the total amount since 2022")
        assert parsed.cmp_filters == (("__year__", ">=", 2022),)


class TestGroupedShapes:
    def test_group_aggregate(self):
        parsed = parse_question("Show me the average salary per region")
        assert parsed.kind == KIND_GROUP_AGG
        assert parsed.group_phrase == "region"

    def test_for_each_variant(self):
        parsed = parse_question("Show me the total budget for each region")
        assert parsed.kind == KIND_GROUP_AGG

    def test_count_per_group(self):
        parsed = parse_question("Show me the number of orders per channel")
        assert parsed.kind == KIND_GROUP_AGG
        assert parsed.metric_agg == "COUNT"

    def test_having(self):
        parsed = parse_question(
            "Show me the total amount per region, only groups with "
            "total amount above 100"
        )
        assert parsed.having
        assert parsed.having[0][2] == ">"
        assert parsed.having[0][3] == 100

    def test_topk(self):
        parsed = parse_question("Show me the top 5 regions by total amount")
        assert parsed.kind == KIND_TOPK
        assert parsed.k == 5
        assert parsed.group_phrase == "region"
        assert parsed.descending

    def test_bottom_k(self):
        parsed = parse_question("Show me the bottom 3 zones by total output")
        assert not parsed.descending

    def test_both_ends(self):
        parsed = parse_question(
            "Show me the 5 organisations with the best and worst total revenue"
        )
        assert parsed.kind == KIND_BOTH_ENDS
        assert parsed.both_ends and parsed.k == 5

    def test_both_ends_with_our(self):
        parsed = parse_question(
            "Identify our 5 sports organisations with the best and worst "
            "QoQFP in Canada for Q2 2023"
        )
        assert parsed.kind == KIND_BOTH_ENDS
        assert "our" in parsed.adjectives
        assert parsed.quarter == (2023, 2)
        assert parsed.metric_phrase == "qoqfp"

    def test_share(self):
        parsed = parse_question("Show me the share of total amount per region")
        assert parsed.kind == KIND_SHARE
        assert parsed.metric_agg == "SUM"

    def test_delta(self):
        parsed = parse_question(
            "Show me the 3 zones with the largest drop in total output "
            "versus the previous quarter for Q2 2023"
        )
        assert parsed.kind == KIND_DELTA
        assert parsed.delta_direction == "drop"
        assert parsed.k == 3
        assert parsed.quarter == (2023, 2)


class TestListings:
    def test_listing_with_order(self):
        parsed = parse_question(
            "Show me the store name and square feet of the stores in Boston, "
            "ordered by square feet from highest to lowest"
        )
        assert parsed.kind == KIND_LISTING
        assert parsed.projection_phrases == ("store name", "square feet")
        assert parsed.order_phrase == "square feet"
        assert parsed.descending

    def test_listing_ascending(self):
        parsed = parse_question(
            "Show me the name and salary of the employees, ordered by "
            "salary from lowest to highest"
        )
        assert not parsed.descending

    def test_single_phrase_of_entity_is_not_listing(self):
        parsed = parse_question("Show me the RPV of our organisations")
        assert parsed.kind == KIND_AGGREGATE

    def test_agg_led_phrase_is_not_listing(self):
        parsed = parse_question("Show me the total revenue of the teams")
        assert parsed.kind == KIND_AGGREGATE

"""CLI tests (the analytics-engine veneer)."""

import io

import pytest

from repro.cli import build_arg_parser, cmd_ask, cmd_knowledge, cmd_solve, main


class TestArgParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])

    def test_ask_args(self):
        args = build_arg_parser().parse_args(
            ["ask", "sports_holdings", "How many orgs?", "--trace"]
        )
        assert args.database == "sports_holdings"
        assert args.trace and not args.plan

    def test_bench_choices(self):
        args = build_arg_parser().parse_args(["bench", "table1"])
        assert args.experiment == "table1"
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["bench", "nope"])


class TestCommands:
    def test_unknown_database_exits(self):
        args = build_arg_parser().parse_args(["ask", "nope", "q"])
        with pytest.raises(SystemExit, match="Unknown database"):
            cmd_ask(args)

    def test_ask_prints_sql_and_result(self):
        out = io.StringIO()
        code = main_like(
            ["ask", "sports_holdings",
             "How many sports organisations are in Canada?"],
            out,
        )
        text = out.getvalue()
        assert code == 0
        assert "-- SQL --" in text
        assert "COUNT(*)" in text
        assert "-- result --" in text

    def test_ask_with_trace_and_plan(self):
        out = io.StringIO()
        main_like(
            ["ask", "sports_holdings", "What is the total revenue?",
             "--trace", "--plan"],
            out,
        )
        text = out.getvalue()
        assert "operator trace" in text
        assert "Step 1:" in text

    def test_knowledge_overview(self):
        out = io.StringIO()
        args = build_arg_parser().parse_args(["knowledge", "retail_chain"])
        assert cmd_knowledge(args, out=out) == 0
        text = out.getvalue()
        assert "intents:" in text
        assert "AOV" in text

    def test_solver_repl_scripted_session(self):
        out = io.StringIO()
        script = iter(
            [
                "ask What is the average outlay?",
                "feedback 'outlay' refers to the EXPENSES column in "
                "SPORTS_FINANCIALS.",
                "stage",
                "regen",
                "submit",
                "approve",
                "library",
                "badcommand",
                "quit",
            ]
        )
        args = build_arg_parser().parse_args(["solve", "sports_holdings"])
        code = cmd_solve(args, out=out, input_fn=lambda _prompt: next(script))
        text = out.getvalue()
        assert code == 0
        assert "recommended:" in text
        assert "staged 1 edit(s)" in text
        assert "AVG(EXPENSES)" in text
        assert "PASS" in text
        assert "merged" in text
        assert "unknown command" in text


def main_like(argv, out):
    """Run a CLI command with stdout captured via the out= hook."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    return args.func(args, out=out)

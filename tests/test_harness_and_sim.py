"""Harness, enterprise workload, and feedback-simulator tests."""

import pytest

from repro.bench.enterprise import build_enterprise_workload
from repro.bench.feedback_sim import _feedback_for, simulate_feedback_sessions
from repro.bench.harness import (
    evaluate_system,
    format_table,
    run_genedit,
)
from repro.bench.metrics import execution_match
from repro.pipeline import GenEditPipeline
from repro.pipeline.config import DEFAULT_CONFIG


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(
            "T", ["A", "Bee"], [("x", 1.0), ("longer", 12.345)]
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "12.35" in table  # floats rendered to 2 decimals
        assert all(
            len(line) == len(lines[1]) for line in lines[2:]
        )


class TestEvaluateSystem:
    def test_subset_evaluation(self, experiment_context):
        questions = experiment_context.workload.questions[:5]
        report = evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks, config=DEFAULT_CONFIG),
            experiment_context.workload,
            experiment_context.profiles,
            experiment_context.knowledge_sets,
            "subset",
            questions=questions,
        )
        assert len(report.outcomes) == 5
        assert all(outcome.predicted_sql is not None
                   for outcome in report.outcomes)

    def test_outcomes_carry_cost(self, experiment_context):
        questions = experiment_context.workload.questions[:2]
        report = evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks),
            experiment_context.workload,
            experiment_context.profiles,
            experiment_context.knowledge_sets,
            "subset",
            questions=questions,
        )
        assert report.total_cost_usd > 0

    def test_run_genedit_deterministic(self, experiment_context):
        first = run_genedit(
            experiment_context,
            questions=experiment_context.workload.questions[:10],
        )
        second = run_genedit(
            experiment_context,
            questions=experiment_context.workload.questions[:10],
        )
        assert [o.correct for o in first.outcomes] == [
            o.correct for o in second.outcomes
        ]


class TestEnterpriseWorkload:
    def test_gold_sql_executes(self, experiment_context):
        workload = build_enterprise_workload()
        database = experiment_context.profiles["sports_holdings"].database
        from repro.engine import Executor

        for question in workload.questions:
            Executor(database).execute(question.gold_sql)

    def test_genedit_dominates_enterprise(self, experiment_context):
        workload = build_enterprise_workload()
        report = evaluate_system(
            lambda db, ks: GenEditPipeline(db, ks),
            workload,
            experiment_context.profiles,
            experiment_context.knowledge_sets,
            "GenEdit",
            questions=workload.questions,
        )
        assert report.accuracy() >= 70.0

    def test_ratio_questions_multi_cte(self):
        workload = build_enterprise_workload()
        ratio = [
            question for question in workload.questions
            if "kind:ratio-delta" in question.features
        ]
        assert all("WITH" in question.gold_sql for question in ratio)
        assert all(
            "NULLIF" in question.gold_sql for question in ratio
        )


class TestFeedbackSimulator:
    def test_feedback_text_for_vague_trap(self, experiment_context):
        question = next(
            q for q in experiment_context.workload.questions
            if "trap:vague" in q.features
        )
        rounds = _feedback_for(question, session_number=1)
        assert rounds
        assert "refers to the" in rounds[-1]

    def test_feedback_for_unknown_adjective(self, experiment_context):
        question = next(
            q for q in experiment_context.workload.questions
            if "trap:unknown-adjective" in q.features
        )
        rounds = _feedback_for(question)
        assert rounds and "filter" in rounds[0]

    def test_feedback_for_pattern_gap(self, experiment_context):
        question = next(
            q for q in experiment_context.workload.questions
            if q.difficulty == "challenging"
            and any(f.startswith("needs:pattern:share") for f in q.features)
        )
        rounds = _feedback_for(question)
        assert rounds and "idiom" in rounds[0]

    def test_plain_failures_have_no_scripted_feedback(
        self, experiment_context
    ):
        question = next(
            q for q in experiment_context.workload.questions
            if not any(f.startswith(("trap:", "needs:")) for f in q.features)
        )
        assert _feedback_for(question) is None

    def test_limited_simulation(self, experiment_context):
        summary = simulate_feedback_sessions(
            context=experiment_context, limit=4
        )
        assert summary.sessions == 4
        assert summary.recommended >= 4
        assert len(summary.details) == 4

    def test_simulation_leaves_live_knowledge_untouched(
        self, experiment_context
    ):
        before = experiment_context.knowledge_sets[
            "sports_holdings"
        ].stats()
        simulate_feedback_sessions(context=experiment_context, limit=3)
        after = experiment_context.knowledge_sets["sports_holdings"].stats()
        assert before == after


class TestEngineStatsIsolation:
    """reset_engine_stats() at profile boundaries: back-to-back runs must
    not leak predicate-cache or operator counters into the next payload."""

    COUNTERS = (
        "columnar_selects", "row_fallback_selects", "error_reruns",
        "hash_joins", "loop_joins",
    )

    def _run_workload(self, demo_db):
        from repro.engine import Executor

        executor = Executor(demo_db)
        executor.execute(
            "SELECT EMP_NAME FROM EMP WHERE SALARY > 100"
        )
        executor.execute(
            "SELECT DEPT_NAME, BUDGET FROM DEPT WHERE REGION = 'West'"
        )

    def test_reset_zeroes_counters_and_predicate_cache(self, demo_db):
        from repro.engine import (
            engine_snapshot,
            reset_engine_stats,
        )

        reset_engine_stats()
        self._run_workload(demo_db)
        polluted = engine_snapshot()
        assert sum(polluted[key] for key in self.COUNTERS) > 0
        reset_engine_stats()
        clean = engine_snapshot()
        assert all(clean[key] == 0 for key in self.COUNTERS)
        assert clean["rewrite_s"] == 0.0 and clean["compile_s"] == 0.0
        assert clean["predicate_cache"]["entries"] == 0
        assert clean["predicate_cache"]["hits"] == 0

    def test_back_to_back_runs_have_identical_counters(self, demo_db):
        from repro.engine import (
            engine_snapshot,
            reset_engine_stats,
        )

        reset_engine_stats()
        self._run_workload(demo_db)
        first = engine_snapshot()
        reset_engine_stats()
        self._run_workload(demo_db)
        second = engine_snapshot()
        assert [second[key] for key in self.COUNTERS] == [
            first[key] for key in self.COUNTERS
        ]
        assert second["predicate_cache"] == first["predicate_cache"]

    def test_profile_payload_does_not_inherit_pollution(
        self, demo_db, experiment_context
    ):
        from repro.bench.harness import profile
        from repro.engine import engine_snapshot

        # Pollute the process-global counters, then take an empty profile:
        # its engine payload must reflect the reset boundary, not ours.
        self._run_workload(demo_db)
        assert sum(
            engine_snapshot()[key] for key in self.COUNTERS
        ) > 0
        payload = profile(
            context=experiment_context, limit=0, verbose=False
        )
        engine = payload["engine"]
        assert all(engine[key] == 0 for key in self.COUNTERS)
        assert engine["predicate_cache"]["entries"] == 0

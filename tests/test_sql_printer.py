"""Printer tests: compact and pretty rendering, round-trip stability."""

import pytest

from repro.sql.parser import parse, parse_expression
from repro.sql.printer import format_sql, to_sql


def round_trip(sql):
    """Render, re-parse, re-render: second render must be a fixpoint."""
    first = to_sql(parse(sql))
    second = to_sql(parse(first))
    assert first == second
    return first


class TestExpressionRendering:
    @pytest.mark.parametrize("sql,expected", [
        ("1 + 2", "1 + 2"),
        ("1 + 2 * 3", "1 + 2 * 3"),
        ("(1 + 2) * 3", "(1 + 2) * 3"),
        ("-x", "-x"),
        ("NOT a = 1", "NOT a = 1"),
        ("a <> b", "a <> b"),
        ("x IS NOT NULL", "x IS NOT NULL"),
        ("x BETWEEN 1 AND 2", "x BETWEEN 1 AND 2"),
        ("x NOT IN (1, 2)", "x NOT IN (1, 2)"),
        ("name LIKE 'A%'", "name LIKE 'A%'"),
        ("a || b", "a || b"),
        ("COUNT(*)", "COUNT(*)"),
        ("COUNT(DISTINCT x)", "COUNT(DISTINCT x)"),
        ("CAST(x AS FLOAT)", "CAST(x AS FLOAT)"),
    ])
    def test_expression_forms(self, sql, expected):
        assert to_sql(parse_expression(sql)) == expected

    def test_string_literal_escaping(self):
        assert to_sql(parse_expression("'it''s'")) == "'it''s'"

    def test_null_true_false(self):
        assert to_sql(parse_expression("NULL")) == "NULL"
        assert to_sql(parse_expression("TRUE")) == "TRUE"

    def test_float_integer_valued(self):
        assert to_sql(parse_expression("1.0")) == "1.0"

    def test_case_rendering(self):
        sql = "CASE WHEN x > 0 THEN 'p' ELSE 'n' END"
        assert to_sql(parse_expression(sql)) == sql

    def test_window_rendering(self):
        sql = "ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC)"
        assert to_sql(parse_expression(sql)) == sql

    def test_not_over_boolean_parenthesised(self):
        rendered = to_sql(parse_expression("NOT (a = 1 AND b = 2)"))
        assert rendered == "NOT (a = 1 AND b = 2)"


class TestQueryRoundTrips:
    @pytest.mark.parametrize("sql", [
        "SELECT 1",
        "SELECT DISTINCT a, b FROM t",
        "SELECT a AS x FROM t AS s WHERE x > 1",
        "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2",
        "SELECT a FROM t ORDER BY a DESC NULLS LAST LIMIT 3 OFFSET 1",
        "SELECT a FROM t JOIN u ON t.i = u.i LEFT JOIN v ON u.j = v.j",
        "SELECT a FROM t CROSS JOIN u",
        "WITH c AS (SELECT 1) SELECT * FROM c",
        "WITH c(x) AS (SELECT 1) SELECT x FROM c",
        "SELECT a FROM t UNION ALL SELECT b FROM u",
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.i = t.i)",
        "SELECT (SELECT MAX(x) FROM u) AS m FROM t",
        "SELECT a FROM (SELECT a FROM t) AS s",
        "SELECT SUM(CASE WHEN q = 1 THEN v ELSE 0 END) AS p FROM t",
    ])
    def test_round_trip_fixpoint(self, sql):
        round_trip(sql)

    def test_appendix_style_query_round_trips(self):
        sql = (
            "WITH F AS (SELECT ORG, SUM(CASE WHEN TO_CHAR(M, 'YYYY\"Q\"Q') "
            "= '2023Q2' THEN R ELSE 0 END) AS R2 FROM T GROUP BY ORG) "
            "SELECT ORG, R2, ROW_NUMBER() OVER (ORDER BY R2 DESC) AS RNK "
            "FROM F WHERE R2 > 0 ORDER BY RNK"
        )
        round_trip(sql)


class TestPrettyPrinter:
    def test_clause_per_line(self):
        text = format_sql(parse("SELECT a, b FROM t WHERE a > 1 ORDER BY b"))
        lines = text.splitlines()
        assert lines[0] == "SELECT"
        assert any(line.startswith("FROM") for line in lines)
        assert any(line.startswith("WHERE") for line in lines)

    def test_cte_indentation(self):
        text = format_sql(parse("WITH c AS (SELECT 1) SELECT * FROM c"))
        assert text.splitlines()[0] == "WITH"
        assert "c AS (" in text

    def test_pretty_output_reparses(self):
        sql = (
            "WITH c AS (SELECT a, SUM(b) AS s FROM t GROUP BY a) "
            "SELECT * FROM c WHERE s > 10 ORDER BY s DESC LIMIT 5"
        )
        pretty = format_sql(parse(sql))
        assert to_sql(parse(pretty)) == to_sql(parse(sql))

    def test_set_operation_pretty(self):
        text = format_sql(parse("SELECT 1 UNION ALL SELECT 2"))
        assert "UNION ALL" in text

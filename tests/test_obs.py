"""Unit tests for the observability layer (`repro.obs`)."""

import threading

import pytest

from repro.llm.interface import (
    CallMeter,
    GPT_4O,
    GPT_4O_MINI,
    normalize_model_name,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.render import (
    build_forest,
    render_span_tree,
    rollup_by_name,
)
from repro.obs.tracing import SpanEvent, Tracer, current_span


class TestTracer:
    def test_span_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_finished_spans_start_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # 'b' finishes first, but start order puts 'a' first.
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["a", "b"]

    def test_durations_and_timing_fields(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.duration_ms >= inner.duration_ms >= 0.0
        assert inner.start_ms >= outer.start_ms

    def test_exception_marks_status_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        assert span.status == "error"
        assert span.error == "ValueError: nope"
        # The stack is popped even on error.
        assert current_span() is None

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("s") as span:
            assert current_span() is span
        assert current_span() is None

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            event = tracer.add_event("op", "did a thing", {"k": 1})
        assert span.events == [event]
        assert str(event) == "[op] did a thing"

    def test_orphan_events_kept(self):
        tracer = Tracer()
        event = tracer.add_event("op", "standalone")
        assert tracer.orphan_events == [event]
        assert tracer.iter_events() == [event]

    def test_iter_events_in_recording_order(self):
        tracer = Tracer()
        tracer.add_event("pre", "first")
        with tracer.span("op"):
            tracer.add_event("op", "second")
        tracer.add_event("post", "third")
        assert [e.summary for e in tracer.iter_events()] == [
            "first", "second", "third"
        ]

    def test_span_ids_unique_across_tracers(self):
        spans = []
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("x") as span:
                spans.append(span)
        assert spans[0].span_id != spans[1].span_id

    def test_thread_local_stacks_are_independent(self):
        """Two threads nest independently — the parallel harness invariant."""
        tracer = Tracer()
        barrier = threading.Barrier(2)
        roots = {}

        def work(label):
            with tracer.span(f"root-{label}") as root:
                barrier.wait()  # both roots open simultaneously
                with tracer.span(f"child-{label}") as child:
                    pass
                roots[label] = (root, child)

        threads = [
            threading.Thread(target=work, args=(label,)) for label in "ab"
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for label in "ab":
            root, child = roots[label]
            assert root.parent_id is None
            assert child.parent_id == root.span_id

    def test_to_records_schema(self):
        tracer = Tracer()
        with tracer.span("root", question="q") as root:
            root.inc_attr("llm.calls", 1)
            tracer.add_event("root", "hello")
        (record,) = tracer.to_records()
        assert record["type"] == "span"
        assert record["v"] == 1
        assert record["name"] == "root"
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["attributes"] == {"question": "q", "llm.calls": 1}
        assert record["events"] == [{"operator": "root", "summary": "hello"}]


class TestTraceEventAlias:
    def test_alias_is_span_event(self):
        from repro.pipeline.base import TraceEvent

        assert TraceEvent is SpanEvent
        event = TraceEvent(operator="op", summary="s", detail={"a": 1})
        assert str(event) == "[op] s"
        assert event.detail == {"a": 1}


class TestHistogram:
    def test_exact_bucket_edge_lands_in_bucket(self):
        histogram = Histogram(bounds=(10.0, 20.0, 30.0))
        histogram.observe(10.0)   # exactly on the first boundary
        assert histogram.counts == [1, 0, 0]
        histogram.observe(10.0001)
        assert histogram.counts == [1, 1, 0]

    def test_quantiles_at_bucket_edges(self):
        histogram = Histogram(bounds=(10.0, 20.0, 30.0))
        for value in (5.0, 15.0, 25.0, 25.0):
            histogram.observe(value)
        # ranks: p50 -> rank 2 (bucket <=20), p99 -> rank 4 (bucket <=30)
        assert histogram.quantile(0.50) == 20.0
        assert histogram.quantile(0.25) == 10.0
        assert histogram.quantile(0.99) == 30.0

    def test_overflow_reports_observed_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5)
        histogram.observe(42.0)
        assert histogram.overflow == 1
        assert histogram.quantile(0.99) == 42.0

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_snapshot_fields(self):
        histogram = Histogram(bounds=(10.0,))
        histogram.observe(4.0)
        snapshot = histogram.snapshot()
        assert snapshot == {
            "count": 1, "sum": 4.0, "min": 4.0, "max": 4.0,
            "p50": 10.0, "p90": 10.0, "p99": 10.0,
            "buckets": [["10", 1], ["+Inf", 1]],
        }

    def test_snapshot_buckets_are_cumulative_with_inf(self):
        """The +Inf bucket equals the total count (Prometheus contract)."""
        histogram = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0, 100.0):
            histogram.observe(value)
        assert histogram.snapshot()["buckets"] == [
            ["1", 1], ["2", 2], ["+Inf", 4]
        ]

    def test_empty_snapshot_has_well_formed_buckets(self):
        """Empty histograms export zero buckets, never NaN or errors."""
        snapshot = Histogram(bounds=(1.0,)).snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p99"] == 0.0
        assert snapshot["buckets"] == [["1", 0], ["+Inf", 0]]

    def test_quantile_above_top_bucket_is_observed_max(self):
        """Values beyond the top bound report the true max, not +Inf."""
        histogram = Histogram(bounds=(1.0,))
        for value in (50.0, 60.0, 70.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 70.0
        assert histogram.quantile(0.99) == 70.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10.0, 10.0))

    def test_memory_is_bounded(self):
        histogram = Histogram()
        for value in range(10_000):
            histogram.observe(float(value))
        assert len(histogram.counts) == len(DEFAULT_BUCKETS_MS)
        assert histogram.count == 10_000


class TestMetricsRegistry:
    def test_counters_with_labels(self):
        registry = MetricsRegistry()
        registry.inc("calls", operator="plan")
        registry.inc("calls", 2, operator="plan")
        registry.inc("calls", operator="generate")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["calls{operator=plan}"] == 3
        assert snapshot["counters"]["calls{operator=generate}"] == 1

    def test_gauges_and_histograms(self):
        registry = MetricsRegistry()
        registry.set_gauge("rate", 12.5)
        registry.observe("latency", 3.0, buckets=(5.0, 10.0))
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["rate"] == 12.5
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["schema_version"] == 2

    def test_rebucketing_an_existing_histogram_raises(self):
        """Conflicting custom buckets are an error, never silently ignored."""
        registry = MetricsRegistry()
        registry.observe("latency", 3.0, buckets=(5.0, 10.0))
        with pytest.raises(ValueError, match="latency"):
            registry.observe("latency", 4.0, buckets=(1.0, 2.0))
        # Same bounds re-passed is fine (call sites carry their spec)...
        registry.observe("latency", 4.0, buckets=(5.0, 10.0))
        # ...as is omitting the bounds once the histogram exists.
        registry.observe("latency", 5.0)
        assert registry.histogram("latency").count == 3

    def test_rebucketing_conflict_is_scoped_by_labels(self):
        registry = MetricsRegistry()
        registry.observe("latency", 3.0, buckets=(5.0,), op="a")
        # A different label set is a different histogram: no conflict.
        registry.observe("latency", 3.0, buckets=(7.0,), op="b")
        with pytest.raises(ValueError):
            registry.observe("latency", 3.0, buckets=(9.0,), op="a")

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert not snapshot["counters"]
        assert not snapshot["histograms"]

    def test_thread_safe_increments(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.inc("n")
                registry.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("n") == 4000
        assert registry.histogram("h").count == 4000

    def test_global_registry_is_shared(self):
        assert get_metrics() is get_metrics()


class TestModelNaming:
    def test_normalize_model_name(self):
        class DuckSpec:
            name = "duck-1"

        assert normalize_model_name(GPT_4O) == "gpt-4o"
        assert normalize_model_name("gpt-4o-mini") == "gpt-4o-mini"
        assert normalize_model_name(DuckSpec()) == "duck-1"

    def test_meter_records_one_canonical_name(self):
        meter = CallMeter()
        meter.record("op", GPT_4O_MINI, "prompt", "out")
        meter.record("op", "gpt-4o-mini", "prompt", "out")
        assert {call.model for call in meter.calls} == {"gpt-4o-mini"}

    def test_meter_attaches_tokens_to_enclosing_span(self):
        tracer = Tracer()
        meter = CallMeter()
        with tracer.span("op") as span:
            call = meter.record("op", GPT_4O, "x" * 40, "y" * 8)
        assert span.attributes["llm.calls"] == 1
        assert span.attributes["llm.input_tokens"] == call.input_tokens
        assert span.attributes["llm.output_tokens"] == call.output_tokens
        assert span.attributes["llm.cost_usd"] == pytest.approx(call.cost_usd)
        assert span.attributes["llm.model"] == "gpt-4o"


class TestRender:
    def _records(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.inc_attr("llm.input_tokens", 10)
            with tracer.span("fast"):
                pass
            with tracer.span("slow") as slow:
                pass
            slow.duration_ms = 100.0  # deterministic for the filter test
        return tracer.to_records()

    def test_forest_and_tree(self):
        records = self._records()
        roots, children = build_forest(records)
        assert [span["name"] for span in roots] == ["root"]
        kids = children[roots[0]["span_id"]]
        assert [span["name"] for span in kids] == ["fast", "slow"]
        tree = render_span_tree(records)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  fast")
        assert lines[2].startswith("  slow")

    def test_slow_filter_keeps_ancestors(self):
        records = self._records()
        tree = render_span_tree(records, slow_ms=50.0)
        assert "slow" in tree
        assert "root" in tree      # ancestor of the slow span
        assert "fast" not in tree

    def test_orphan_parent_renders_as_root(self):
        records = self._records()[1:]  # drop the root record
        roots, _children = build_forest(records)
        assert {span["name"] for span in roots} == {"fast", "slow"}

    def test_rollup_aggregates_tokens(self):
        rollup = rollup_by_name(self._records())
        assert rollup["root"]["input_tokens"] == 10
        assert rollup["fast"]["count"] == 1

"""Knowledge-set serialization and EXPLAIN tests."""

import datetime
import json

import pytest

from repro.engine import explain
from repro.knowledge import from_json, load, mine_knowledge_set, save, to_json
from repro.knowledge.mining import LoggedQuery


@pytest.fixture()
def mined(demo_db):
    log = [
        LoggedQuery(
            "q1", "Show me total salary per dept",
            "SELECT DEPT_ID, SUM(SALARY) FROM EMP GROUP BY DEPT_ID",
            "hr",
        )
    ]
    return mine_knowledge_set(demo_db, log, [])


class TestSerialization:
    def test_round_trip_preserves_stats(self, mined):
        rebuilt = from_json(to_json(mined))
        assert rebuilt.stats() == mined.stats()
        assert rebuilt.name == mined.name

    def test_round_trip_preserves_components(self, mined):
        rebuilt = from_json(to_json(mined))
        for example in mined.examples():
            twin = rebuilt.example(example.example_id)
            assert twin.sql == example.sql
            assert twin.pattern == example.pattern
            assert twin.provenance.source_kind == example.provenance.source_kind
        for element in mined.schema_elements():
            twin = rebuilt.schema_element(element.element_id)
            assert twin.top_values == element.top_values
            assert twin.data_type == element.data_type

    def test_retrieval_works_after_round_trip(self, mined):
        rebuilt = from_json(to_json(mined))
        hits = rebuilt.search_examples("total salary", k=2)
        assert hits

    def test_date_top_values_survive(self, mined):
        payload = to_json(mined)
        text = json.dumps(payload)  # must be JSON-safe
        rebuilt = from_json(json.loads(text))
        hired = next(
            element for element in rebuilt.schema_elements()
            if element.column == "HIRED"
        )
        assert all(
            isinstance(value, datetime.date) for value in hired.top_values
        )

    def test_file_round_trip(self, mined, tmp_path):
        path = tmp_path / "knowledge.json"
        save(mined, path)
        rebuilt = load(path)
        assert rebuilt.stats() == mined.stats()

    def test_version_check(self, mined):
        payload = to_json(mined)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            from_json(payload)


class TestExplain:
    def test_scan_filter_project(self):
        plan = explain("SELECT EMP_NAME FROM EMP WHERE SALARY > 100")
        lines = plan.splitlines()
        assert lines[0] == "SCAN EMP"
        assert lines[1].startswith("FILTER")
        assert lines[2].startswith("PROJECT")

    def test_group_by_stage(self):
        plan = explain("SELECT DEPT_ID, COUNT(*) FROM EMP GROUP BY DEPT_ID")
        assert "GROUP BY DEPT_ID" in plan

    def test_global_aggregate_stage(self):
        plan = explain("SELECT SUM(SALARY) FROM EMP")
        assert "AGGREGATE (single group)" in plan

    def test_join_tree_indented(self):
        plan = explain(
            "SELECT 1 FROM EMP e JOIN DEPT d ON e.DEPT_ID = d.DEPT_ID"
        )
        assert plan.splitlines()[0].startswith("INNER JOIN")
        assert "  SCAN EMP AS e" in plan
        assert "  SCAN DEPT AS d" in plan

    def test_cte_materialisation(self):
        plan = explain(
            "WITH c AS (SELECT 1 AS x) SELECT x FROM c"
        )
        assert plan.splitlines()[0] == "MATERIALIZE CTE c"

    def test_window_stage(self):
        plan = explain(
            "SELECT ROW_NUMBER() OVER (ORDER BY SALARY) FROM EMP"
        )
        assert "WINDOW ROW_NUMBER()" in plan

    def test_set_operation(self):
        plan = explain("SELECT 1 UNION ALL SELECT 2")
        assert plan.splitlines()[0] == "UNION ALL"

    def test_derived_table(self):
        plan = explain("SELECT s FROM (SELECT SUM(SALARY) AS s FROM EMP) t")
        assert "DERIVED t" in plan

    def test_limit_offset(self):
        plan = explain("SELECT EMP_ID FROM EMP ORDER BY 1 LIMIT 5 OFFSET 2")
        assert "LIMIT 5 OFFSET 2" in plan

    def test_having_stage(self):
        plan = explain(
            "SELECT DEPT_ID FROM EMP GROUP BY DEPT_ID HAVING COUNT(*) > 1"
        )
        assert "FILTER GROUPS COUNT(*) > 1" in plan

"""Property-based tests (hypothesis) on the core substrates."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Column, Database, Executor
from repro.engine.values import (
    arithmetic,
    cast_value,
    comparable_cell,
    compare,
    logical_and,
    logical_not,
    logical_or,
    sort_key,
)
from repro.sql.parser import parse, parse_expression
from repro.sql.printer import to_sql
from repro.sql.tokens import TokenType, tokenize
from repro.text.normalize import normalize, stem
from repro.text.similarity import cosine
from repro.text.vectorize import TfIdfVectorizer

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() not in {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
        "OUTER", "CROSS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
        "BETWEEN", "EXISTS", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST",
        "WITH", "UNION", "ALL", "INTERSECT", "EXCEPT", "DISTINCT", "ASC",
        "DESC", "OVER", "PARTITION", "TRUE", "FALSE", "NULLS", "FIRST",
        "LAST", "ROWS", "CURRENT", "ROW", "PRECEDING", "FOLLOWING",
        "UNBOUNDED", "VALUES", "INSERT", "INTO", "CREATE", "TABLE",
        "PRIMARY", "KEY", "REFERENCES", "FOREIGN", "INT", "INTEGER",
        "FLOAT", "TEXT", "DATE", "BOOLEAN",
    }
)

sql_values = st.one_of(
    st.none(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=12,
    ),
    st.booleans(),
    st.dates(
        min_value=datetime.date(1990, 1, 1),
        max_value=datetime.date(2030, 12, 31),
    ),
)

numbers = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(
        allow_nan=False, allow_infinity=False,
        min_value=-1e6, max_value=1e6,
    ),
)

maybe_bool = st.one_of(st.none(), st.booleans())


# ---------------------------------------------------------------------------
# tokenizer / parser / printer
# ---------------------------------------------------------------------------


@given(identifiers, identifiers)
@settings(max_examples=60)
def test_identifier_tokenization_round_trip(a, b):
    tokens = tokenize(f"{a} {b}")
    assert [t.value for t in tokens[:-1]] == [
        (x.upper() if x.upper() in ("MON",) else x) for x in (a, b)
    ] or tokens[0].type in (TokenType.KEYWORD, TokenType.IDENTIFIER)


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=20))
@settings(max_examples=80)
def test_string_literal_round_trip(text):
    escaped = text.replace("'", "''")
    expr = parse_expression(f"'{escaped}'")
    assert expr.value == text
    # printing and reparsing preserves the value
    assert parse_expression(to_sql(expr)).value == text


@given(st.integers(min_value=0, max_value=10**12))
@settings(max_examples=50)
def test_integer_literal_round_trip(number):
    expr = parse_expression(str(number))
    assert expr.value == number
    assert parse_expression(to_sql(expr)).value == number


@given(
    identifiers, identifiers, st.integers(min_value=0, max_value=999),
    st.booleans(),
)
@settings(max_examples=60)
def test_query_print_parse_fixpoint(table, column, limit, descending):
    direction = "DESC" if descending else "ASC"
    sql = (
        f"SELECT {column} FROM {table} WHERE {column} > {limit} "
        f"ORDER BY {column} {direction} LIMIT {limit + 1}"
    )
    rendered = to_sql(parse(sql))
    assert to_sql(parse(rendered)) == rendered


# ---------------------------------------------------------------------------
# value semantics
# ---------------------------------------------------------------------------


@given(maybe_bool, maybe_bool)
def test_logic_commutativity(a, b):
    assert logical_and(a, b) == logical_and(b, a)
    assert logical_or(a, b) == logical_or(b, a)


@given(maybe_bool, maybe_bool)
def test_de_morgan(a, b):
    assert logical_not(logical_and(a, b)) == logical_or(
        logical_not(a), logical_not(b)
    )


@given(numbers, numbers)
def test_compare_antisymmetry(a, b):
    assert compare(a, b) == -compare(b, a)


@given(numbers)
def test_compare_reflexive(a):
    assert compare(a, a) == 0


@given(numbers, numbers)
def test_addition_commutes(a, b):
    assert arithmetic("+", a, b) == pytest.approx(arithmetic("+", b, a))


@given(numbers)
def test_null_propagation(a):
    for op in ("+", "-", "*", "/"):
        assert arithmetic(op, a, None) is None
        assert arithmetic(op, None, a) is None


@given(st.integers(min_value=-10**6, max_value=10**6))
def test_cast_int_text_round_trip(number):
    assert cast_value(cast_value(number, "TEXT"), "INTEGER") == number


@given(st.lists(st.one_of(st.none(), numbers), max_size=12), st.booleans())
def test_sort_key_total_order(values, ascending):
    ordered = sorted(values, key=lambda v: sort_key(v, ascending))
    nulls = [v for v in ordered if v is None]
    present = [v for v in ordered if v is not None]
    if ascending:
        assert ordered == present + nulls
        assert present == sorted(present)
    else:
        assert ordered == nulls + present
        assert present == sorted(present, reverse=True)


@given(sql_values)
def test_comparable_cell_idempotent(value):
    once = comparable_cell(value)
    assert comparable_cell(once) == once


# ---------------------------------------------------------------------------
# executor invariants
# ---------------------------------------------------------------------------


@st.composite
def integer_tables(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.one_of(st.none(), st.integers(-100, 100)),
            ),
            min_size=0, max_size=25,
        )
    )
    return rows


@given(integer_tables())
@settings(max_examples=40, deadline=None)
def test_group_by_partitions_rows(rows):
    db = Database("p")
    db.create_table(
        "T", [Column("G", "INTEGER"), Column("V", "INTEGER")], rows=rows
    )
    executor = Executor(db)
    grouped = executor.execute(
        "SELECT G, COUNT(*) AS n FROM T GROUP BY G"
    )
    assert sum(row[1] for row in grouped.rows) == len(rows)
    total = executor.execute("SELECT SUM(V) FROM T").rows[0][0]
    per_group = executor.execute("SELECT SUM(V) FROM T GROUP BY G").rows
    group_total = sum(row[0] for row in per_group if row[0] is not None)
    assert (total or 0) == group_total


@given(integer_tables(), st.integers(min_value=0, max_value=10))
@settings(max_examples=40, deadline=None)
def test_limit_never_exceeds(rows, limit):
    db = Database("p")
    db.create_table(
        "T", [Column("G", "INTEGER"), Column("V", "INTEGER")], rows=rows
    )
    result = Executor(db).execute(f"SELECT G FROM T LIMIT {limit}")
    assert len(result.rows) <= limit


@given(integer_tables())
@settings(max_examples=40, deadline=None)
def test_where_partition_is_complete(rows):
    db = Database("p")
    db.create_table(
        "T", [Column("G", "INTEGER"), Column("V", "INTEGER")], rows=rows
    )
    executor = Executor(db)
    low = executor.execute("SELECT 1 FROM T WHERE V < 0").rows
    high = executor.execute("SELECT 1 FROM T WHERE V >= 0").rows
    nulls = executor.execute("SELECT 1 FROM T WHERE V IS NULL").rows
    assert len(low) + len(high) + len(nulls) == len(rows)


@given(integer_tables())
@settings(max_examples=30, deadline=None)
def test_union_all_counts_add(rows):
    db = Database("p")
    db.create_table(
        "T", [Column("G", "INTEGER"), Column("V", "INTEGER")], rows=rows
    )
    result = Executor(db).execute(
        "SELECT G FROM T UNION ALL SELECT G FROM T"
    )
    assert len(result.rows) == 2 * len(rows)


@given(integer_tables())
@settings(max_examples=30, deadline=None)
def test_distinct_is_subset_and_unique(rows):
    db = Database("p")
    db.create_table(
        "T", [Column("G", "INTEGER"), Column("V", "INTEGER")], rows=rows
    )
    result = Executor(db).execute("SELECT DISTINCT G FROM T")
    values = [row[0] for row in result.rows]
    assert len(values) == len(set(values))
    assert set(values) == {row[0] for row in rows}


# ---------------------------------------------------------------------------
# text substrate
# ---------------------------------------------------------------------------


@given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
               min_size=1, max_size=15))
def test_stem_idempotent_enough(word):
    # stemming twice equals stemming... at most shrinks further but never errors
    once = stem(word)
    twice = stem(once)
    assert len(twice) <= len(once) <= len(word)


@given(st.lists(
    st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=3, max_size=8),
    min_size=1, max_size=6,
))
def test_cosine_self_similarity_is_max(words):
    text = " ".join(words)
    vectorizer = TfIdfVectorizer().fit([text, "other document entirely"])
    vector = vectorizer.transform(text)
    if vector:
        assert cosine(vector, vector) == pytest.approx(1.0)
        other = vectorizer.transform("unrelated stuff qq zz")
        assert cosine(vector, other) <= 1.0 + 1e-9


@given(st.text(max_size=60))
def test_normalize_never_crashes(text):
    tokens = normalize(text)
    assert all(isinstance(token, str) for token in tokens)

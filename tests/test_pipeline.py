"""Pipeline operator and end-to-end generation tests."""

import pytest

from repro.bench.metrics import execution_match
from repro.pipeline import (
    DEFAULT_CONFIG,
    GenEditPipeline,
    PipelineConfig,
)
from repro.pipeline.planning import build_plan_steps
from repro.pipeline.spec import (
    MetricSpec,
    OrderSpec,
    QuerySpec,
    RatioDeltaSpec,
    SHAPE_RATIO_DELTA_RANK,
)


class TestConfig:
    def test_defaults(self):
        assert DEFAULT_CONFIG.use_schema_linking
        assert DEFAULT_CONFIG.max_retries >= 1

    @pytest.mark.parametrize("name,flag", [
        ("schema_linking", "use_schema_linking"),
        ("instructions", "use_instructions"),
        ("examples", "use_examples"),
        ("pseudo_sql", "use_pseudo_sql"),
        ("decomposition", "use_decomposition"),
    ])
    def test_without(self, name, flag):
        config = DEFAULT_CONFIG.without(name)
        assert getattr(config, flag) is False
        assert getattr(DEFAULT_CONFIG, flag) is True  # original untouched

    def test_without_unknown_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.without("nonsense")


class TestPlanSteps:
    def test_standard_plan_mentions_table_and_metric(self):
        spec = QuerySpec(
            database="d", base_table="EMP",
            metrics=(MetricSpec("SUM", column="SALARY"),),
        )
        steps = build_plan_steps(spec)
        text = "\n".join(step.render() for step in steps)
        assert "EMP" in text and "SUM(SALARY)" in text

    def test_pseudo_sql_toggle(self):
        spec = QuerySpec(
            database="d", base_table="EMP",
            metrics=(MetricSpec("SUM", column="SALARY"),),
        )
        with_pseudo = build_plan_steps(spec, use_pseudo_sql=True)
        without = build_plan_steps(spec, use_pseudo_sql=False)
        assert any(step.pseudo_sql for step in with_pseudo)
        assert not any(step.pseudo_sql for step in without)

    def test_pseudo_sql_wrapped_in_dots(self):
        spec = QuerySpec(
            database="d", base_table="EMP",
            metrics=(MetricSpec("COUNT"),),
        )
        steps = [s for s in build_plan_steps(spec) if s.pseudo_sql]
        assert all(
            step.pseudo_sql.startswith("... ") and step.pseudo_sql.endswith(" ...")
            for step in steps
        )

    def test_ratio_plan_has_pivot_and_rank_steps(self):
        spec = QuerySpec(
            database="d", base_table="F",
            shape=SHAPE_RATIO_DELTA_RANK,
            ratio_delta=RatioDeltaSpec(
                entity_column="ORG", numerator_table="F",
                numerator_date_column="M", numerator_value_column="R",
                year=2023, quarter=2,
                denominator_table="V", denominator_date_column="M2",
                denominator_value_column="W", negate=True,
            ),
        )
        text = "\n".join(step.render() for step in build_plan_steps(spec))
        assert "Pivot" in text
        assert "-1 multiplier" in text
        assert "ROW_NUMBER" in text

    def test_order_step_describes_limit(self):
        spec = QuerySpec(
            database="d", base_table="T",
            projection=("G",),
            metrics=(MetricSpec("SUM", column="X"),),
            group_by=("G",),
            order=OrderSpec(metric_index=0, descending=True, limit=5),
        )
        text = "\n".join(step.description for step in build_plan_steps(spec))
        assert "first 5" in text


class TestEndToEnd:
    def test_simple_generation_succeeds(self, sports_pipeline):
        result = sports_pipeline.generate(
            "How many sports organisations are in Canada?"
        )
        assert result.success
        gold = (
            "SELECT COUNT(*) FROM SPORTS_ORGS WHERE COUNTRY = 'Canada'"
        )
        assert execution_match(
            sports_pipeline.database, result.sql, gold
        )

    def test_trace_names_every_operator(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total revenue?")
        operators = {event.operator for event in result.trace}
        assert {
            "reformulate", "classify_intents", "select_examples",
            "select_instructions", "link_schema", "plan", "generate_sql",
        } <= operators

    def test_plan_carries_spec_and_issues(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total gibberish?")
        assert result.plan is not None
        assert result.plan.issues  # unresolved metric recorded

    def test_cost_and_latency_accounted(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total revenue?")
        assert result.cost_usd > 0
        assert result.latency_ms > 0

    def test_two_model_calls_plus_retrieval(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total revenue?")
        operators = [call.operator for call in result.context.meter.calls]
        assert "plan" in operators and "generate_sql" in operators

    def test_schema_linking_uses_mini_model(self, sports_pipeline):
        result = sports_pipeline.generate("What is the total revenue?")
        linking_calls = [
            call for call in result.context.meter.calls
            if call.operator == "link_schema"
        ]
        assert linking_calls[0].model == "gpt-4o-mini"

    def test_qoqfp_flagship_query(self, sports_pipeline):
        result = sports_pipeline.generate(
            "Identify our 5 sports organisations with the best and worst "
            "QoQFP in Canada for Q2 2023"
        )
        assert result.success
        assert "WITH" in result.sql
        assert "NULLIF" in result.sql
        assert "-1 *" in result.sql
        assert "WORST_RANK" in result.sql

    def test_generated_sql_always_executes_or_flags(self, sports_pipeline):
        for question in [
            "What is the average expenses in 2023?",
            "Show me the top 3 leagues by total arena capacity",
            "How many sponsorship deals are there?",
        ]:
            result = sports_pipeline.generate(question)
            if result.success:
                sports_pipeline.execute(result.sql)
            else:
                assert result.error

    def test_ablation_configs_still_generate(self, experiment_context):
        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        for component in (
            "schema_linking", "instructions", "examples", "pseudo_sql"
        ):
            pipeline = GenEditPipeline(
                profile.database, knowledge,
                config=DEFAULT_CONFIG.without(component),
            )
            result = pipeline.generate("What is the total revenue?")
            assert result.sql

    def test_intent_disabled_pipeline(self, experiment_context):
        profile = experiment_context.profiles["sports_holdings"]
        knowledge = experiment_context.knowledge_sets["sports_holdings"]
        pipeline = GenEditPipeline(
            profile.database, knowledge,
            config=PipelineConfig(use_intent_classification=False),
        )
        result = pipeline.generate("How many sports organisations are there?")
        assert result.success

"""Cost/quality frontier: budget-parametrized pipelines (§5 extension).

The paper's related work proposes "specifying a dollar cost and
parametrizing GenEdit pipelines differently". This bench runs the three
configuration tiers over the dev sample and reports the measured EX /
cost / latency frontier: quality should dominate EX, economy should
dominate cost, and the frontier should be monotone (paying more never
hurts accuracy).
"""

from __future__ import annotations

from repro.bench.harness import evaluate_system, format_table
from repro.pipeline import GenEditPipeline
from repro.pipeline.tuning import TIERS


def _run_tiers(context):
    reports = {}
    for tier in TIERS:
        reports[tier.name] = evaluate_system(
            lambda db, ks, cfg=tier.config: GenEditPipeline(
                db, ks, config=cfg
            ),
            context.workload,
            context.profiles,
            context.knowledge_sets,
            tier.name,
        )
    return reports


def test_cost_frontier(benchmark, context):
    reports = benchmark.pedantic(
        lambda: _run_tiers(context), rounds=1, iterations=1
    )
    quality = reports["quality"]
    balanced = reports["balanced"]
    economy = reports["economy"]

    # Paying more never hurts accuracy; the economy tier is cheapest.
    assert quality.accuracy() >= balanced.accuracy() >= economy.accuracy()
    assert economy.total_cost_usd < balanced.total_cost_usd
    assert balanced.total_cost_usd <= quality.total_cost_usd

    # The economy tier still answers most simple questions.
    assert economy.accuracy("simple") >= 50.0

    rows = []
    for name, report in reports.items():
        questions = len(report.outcomes)
        rows.append(
            (
                name,
                report.accuracy(),
                report.total_cost_usd / questions * 1000,
                sum(o.latency_ms for o in report.outcomes) / questions / 1000,
            )
        )
    print()
    print(
        format_table(
            "Cost/quality frontier (reproduced, §5 extension)",
            ["Tier", "EX", "Cost/question (m$)", "Latency/question (s)"],
            rows,
        )
    )

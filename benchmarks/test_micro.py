"""Micro-benchmarks of the substrates (timed over many rounds).

Not a paper table — these keep the substrate performance honest: SQL
parsing, the Appendix-A-shaped query execution, knowledge retrieval, and a
full single-question pipeline pass; plus the evaluation fast path
(cached ``execution_match``, norm-precomputed retrieval), each asserted
against an inline replica of the seed implementation.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.bench.cache import EvaluationCache
from repro.bench.metrics import execution_match
from repro.engine import Executor
from repro.pipeline import GenEditPipeline
from repro.sql.parser import parse, parse_cached
from repro.sql.printer import to_sql
from repro.text.index import RetrievalIndex

APPENDIX_STYLE = (
    "WITH NUMER AS (SELECT ORG_NAME, "
    "SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q1' "
    "THEN REVENUE ELSE 0 END) AS PREV_VALUE, "
    "SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' "
    "THEN REVENUE ELSE 0 END) AS CUR_VALUE "
    "FROM SPORTS_FINANCIALS WHERE TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') IN "
    "('2023Q1', '2023Q2') GROUP BY ORG_NAME), "
    "DENOM AS (SELECT ORG_NAME, "
    "SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY\"Q\"Q') = '2023Q1' "
    "THEN VIEWS ELSE 0 END) AS PREV_VALUE, "
    "SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY\"Q\"Q') = '2023Q2' "
    "THEN VIEWS ELSE 0 END) AS CUR_VALUE "
    "FROM SPORTS_VIEWERSHIP WHERE TO_CHAR(VIEW_MONTH, 'YYYY\"Q\"Q') IN "
    "('2023Q1', '2023Q2') GROUP BY ORG_NAME), "
    "DELTA AS (SELECT n.ORG_NAME AS ORG_NAME, "
    "CAST(n.CUR_VALUE AS FLOAT) / NULLIF(d.CUR_VALUE, 0) AS CURRENT_METRIC, "
    "CAST(n.PREV_VALUE AS FLOAT) / NULLIF(d.PREV_VALUE, 0) AS PREVIOUS_METRIC, "
    "ROW_NUMBER() OVER (ORDER BY CAST(n.CUR_VALUE AS FLOAT) / "
    "NULLIF(d.CUR_VALUE, 0) DESC) AS BEST_RANK "
    "FROM NUMER n JOIN DENOM d ON n.ORG_NAME = d.ORG_NAME) "
    "SELECT ORG_NAME, CURRENT_METRIC, BEST_RANK FROM DELTA "
    "WHERE BEST_RANK <= 5 ORDER BY BEST_RANK"
)


def test_parse_appendix_query(benchmark):
    query = benchmark(parse, APPENDIX_STYLE)
    assert len(query.ctes) == 3


def test_print_round_trip(benchmark):
    query = parse(APPENDIX_STYLE)
    rendered = benchmark(to_sql, query)
    assert "WITH NUMER AS" in rendered


def test_execute_appendix_query(benchmark, context):
    database = context.profiles["sports_holdings"].database
    executor = Executor(database)
    result = benchmark(executor.execute, APPENDIX_STYLE)
    assert len(result.rows) == 5


def test_knowledge_retrieval(benchmark, context):
    knowledge = context.knowledge_sets["sports_holdings"]
    hits = benchmark(
        knowledge.search_examples,
        "best and worst revenue per viewer in Canada", 8,
    )
    assert hits


def test_full_pipeline_single_question(benchmark, context):
    profile = context.profiles["sports_holdings"]
    knowledge = context.knowledge_sets["sports_holdings"]
    pipeline = GenEditPipeline(profile.database, knowledge)
    result = benchmark(
        pipeline.generate, "What is the total revenue in Canada for Q2 2023?"
    )
    assert result.success


# -- evaluation fast path ----------------------------------------------------

def _seed_execution_match(database, predicted_sql, gold_sql):
    """The seed implementation: fresh executor, cold parse, no memoization."""
    executor = Executor(database)
    gold = executor.execute(parse(gold_sql))
    if not predicted_sql:
        return False
    try:
        predicted = executor.execute(parse(predicted_sql))
    except Exception:
        return False
    return predicted.comparable() == gold.comparable()


def _seed_cosine(left, right):
    """The seed cosine: recomputes both norms on every candidate pair."""
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = sum(value * right.get(term, 0.0) for term, value in left.items())
    left_norm = math.sqrt(sum(value * value for value in left.values()))
    right_norm = math.sqrt(sum(value * value for value in right.values()))
    if left_norm == 0 or right_norm == 0:
        return 0.0
    return dot / (left_norm * right_norm)


def _seed_index_search(index, query, k):
    """The seed RetrievalIndex.search: re-embed the query on every call and
    recompute both norms per candidate (the inverted-index pre-filter was
    already present in the seed, so it is reused here for fairness)."""
    index._refresh()
    query_vector = index._vectorizer.transform(query)
    hits = []
    for doc_id in index._candidate_pool(query, None):
        document = index._documents[doc_id]
        hits.append((-_seed_cosine(query_vector, document.vector), doc_id))
    hits.sort()
    return hits[:k]


def _timed(fn, rounds):
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return time.perf_counter() - started


def test_execution_match_cached(benchmark, context):
    """Pretty numbers for the cached EX check (steady-state: all hits)."""
    question = context.workload.questions[0]
    database = context.profiles[question.database].database
    cache = EvaluationCache()
    execution_match(database, question.gold_sql, question.gold_sql,
                    cache=cache)  # warm
    assert benchmark(
        execution_match, database, question.gold_sql, question.gold_sql,
        cache=cache,
    )


def test_execution_match_cached_vs_seed_speedup(context):
    """Repeated EX checks through the cache must beat the seed path >=2x.

    This is the Table 1 access pattern: every system re-checks the same
    (gold, predicted) statements on the same database.
    """
    questions = context.workload.questions[:6]
    pairs = [
        (context.profiles[q.database].database, q.gold_sql)
        for q in questions
    ]
    rounds = 10
    seed_s = _timed(
        lambda: [_seed_execution_match(db, sql, sql) for db, sql in pairs],
        rounds,
    )
    cache = EvaluationCache()
    fast_s = _timed(
        lambda: [
            execution_match(db, sql, sql, cache=cache) for db, sql in pairs
        ],
        rounds,
    )
    assert fast_s * 2 < seed_s, (
        f"cached execution_match not >=2x faster: seed {seed_s:.4f}s "
        f"vs cached {fast_s:.4f}s"
    )


def test_retrieval_search_cached(benchmark, context):
    """Pretty numbers for norm-precomputed, query-cached index search."""
    knowledge = context.knowledge_sets["sports_holdings"]
    index = knowledge._example_index
    index.search("revenue per viewer by organisation", k=8)  # warm
    hits = benchmark(
        index.search, "revenue per viewer by organisation", 8,
    )
    assert hits


def test_vector_index_search_vs_seed_speedup(context):
    """Repeated index searches must beat the seed implementation >=1.5x.

    The harness re-ranks the same expanded query against the same
    collection once per component and per system; precomputed document
    norms and the memoized query transform carry the win.
    """
    knowledge = context.knowledge_sets["sports_holdings"]
    source = knowledge._example_index
    index = RetrievalIndex()
    for document in source.documents():
        index.add(document.doc_id, document.text, document.metadata)
    queries = [
        "best and worst revenue per viewer in Canada",
        "quarter over quarter financial performance by organisation",
        "total sponsorship value per league",
    ]
    rounds = 20
    seed_s = _timed(
        lambda: [_seed_index_search(index, query, 8) for query in queries],
        rounds,
    )
    fast_s = _timed(
        lambda: [index.search(query, k=8) for query in queries],
        rounds,
    )
    assert fast_s * 1.5 < seed_s, (
        f"index.search not >=1.5x faster: seed {seed_s:.4f}s "
        f"vs fast {fast_s:.4f}s"
    )


def test_parse_cached_appendix_query(benchmark):
    parse_cached(APPENDIX_STYLE)  # warm
    query = benchmark(parse_cached, APPENDIX_STYLE)
    assert len(query.ctes) == 3

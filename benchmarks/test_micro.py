"""Micro-benchmarks of the substrates (timed over many rounds).

Not a paper table — these keep the substrate performance honest: SQL
parsing, the Appendix-A-shaped query execution, knowledge retrieval, and a
full single-question pipeline pass.
"""

from __future__ import annotations

import pytest

from repro.engine import Executor
from repro.pipeline import GenEditPipeline
from repro.sql.parser import parse
from repro.sql.printer import to_sql

APPENDIX_STYLE = (
    "WITH NUMER AS (SELECT ORG_NAME, "
    "SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q1' "
    "THEN REVENUE ELSE 0 END) AS PREV_VALUE, "
    "SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') = '2023Q2' "
    "THEN REVENUE ELSE 0 END) AS CUR_VALUE "
    "FROM SPORTS_FINANCIALS WHERE TO_CHAR(FIN_MONTH, 'YYYY\"Q\"Q') IN "
    "('2023Q1', '2023Q2') GROUP BY ORG_NAME), "
    "DENOM AS (SELECT ORG_NAME, "
    "SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY\"Q\"Q') = '2023Q1' "
    "THEN VIEWS ELSE 0 END) AS PREV_VALUE, "
    "SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY\"Q\"Q') = '2023Q2' "
    "THEN VIEWS ELSE 0 END) AS CUR_VALUE "
    "FROM SPORTS_VIEWERSHIP WHERE TO_CHAR(VIEW_MONTH, 'YYYY\"Q\"Q') IN "
    "('2023Q1', '2023Q2') GROUP BY ORG_NAME), "
    "DELTA AS (SELECT n.ORG_NAME AS ORG_NAME, "
    "CAST(n.CUR_VALUE AS FLOAT) / NULLIF(d.CUR_VALUE, 0) AS CURRENT_METRIC, "
    "CAST(n.PREV_VALUE AS FLOAT) / NULLIF(d.PREV_VALUE, 0) AS PREVIOUS_METRIC, "
    "ROW_NUMBER() OVER (ORDER BY CAST(n.CUR_VALUE AS FLOAT) / "
    "NULLIF(d.CUR_VALUE, 0) DESC) AS BEST_RANK "
    "FROM NUMER n JOIN DENOM d ON n.ORG_NAME = d.ORG_NAME) "
    "SELECT ORG_NAME, CURRENT_METRIC, BEST_RANK FROM DELTA "
    "WHERE BEST_RANK <= 5 ORDER BY BEST_RANK"
)


def test_parse_appendix_query(benchmark):
    query = benchmark(parse, APPENDIX_STYLE)
    assert len(query.ctes) == 3


def test_print_round_trip(benchmark):
    query = parse(APPENDIX_STYLE)
    rendered = benchmark(to_sql, query)
    assert "WITH NUMER AS" in rendered


def test_execute_appendix_query(benchmark, context):
    database = context.profiles["sports_holdings"].database
    executor = Executor(database)
    result = benchmark(executor.execute, APPENDIX_STYLE)
    assert len(result.rows) == 5


def test_knowledge_retrieval(benchmark, context):
    knowledge = context.knowledge_sets["sports_holdings"]
    hits = benchmark(
        knowledge.search_examples,
        "best and worst revenue per viewer in Canada", 8,
    )
    assert hits


def test_full_pipeline_single_question(benchmark, context):
    profile = context.profiles["sports_holdings"]
    knowledge = context.knowledge_sets["sports_holdings"]
    pipeline = GenEditPipeline(profile.database, knowledge)
    result = benchmark(
        pipeline.generate, "What is the total revenue in Canada for Q2 2023?"
    )
    assert result.success

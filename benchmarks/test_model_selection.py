"""§3.3.3: the schema-linking model choice.

"We use GPT-4o across all operators, except for schema linking, where we
instead employ GPT-4o-mini to reduce primarily cost and then latency."

Reproduction target: swapping the linking model to the small one changes
no answers (EX identical) while cutting simulated dollar cost and
per-question latency — the deployment rationale.
"""

from __future__ import annotations

from repro.bench.harness import format_table, model_selection


def test_model_selection(benchmark, context):
    reports = benchmark.pedantic(
        lambda: model_selection(context, verbose=False),
        rounds=1, iterations=1,
    )
    mini = reports["gpt-4o-mini linking (deployed)"]
    big = reports["gpt-4o linking"]

    # Accuracy is unchanged: linking quality does not need the big model.
    assert mini.accuracy() == big.accuracy()
    # Cost drops by a meaningful factor; latency drops too.
    assert mini.total_cost_usd < big.total_cost_usd * 0.9
    mini_latency = sum(o.latency_ms for o in mini.outcomes)
    big_latency = sum(o.latency_ms for o in big.outcomes)
    assert mini_latency < big_latency

    print()
    print(
        format_table(
            "Model selection (reproduced, §3.3.3)",
            ["Configuration", "EX", "Cost ($)", "Latency (s total)"],
            [
                ("gpt-4o-mini linking", mini.accuracy(),
                 mini.total_cost_usd, mini_latency / 1000),
                ("gpt-4o linking", big.accuracy(),
                 big.total_cost_usd, big_latency / 1000),
            ],
        )
    )

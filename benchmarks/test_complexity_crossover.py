"""§3.3.4 crossover: the schema-maximal fine-tuned comparator.

Paper finding: the simpler fine-tuned approach scores *higher* on BIRD
(67.21 vs GenEdit's 60.61) yet GenEdit is what ships, because the other
approach "can't handle the same query complexity" of enterprise workloads.

Reproduction targets: SchemaMaximal >= GenEdit on the BIRD-like sample,
GenEdit far ahead on the enterprise (Q_fin-perf-style) workload.
"""

from __future__ import annotations

from repro.bench.harness import crossover, format_table


def test_crossover(benchmark, context):
    reports = benchmark.pedantic(
        lambda: crossover(context, verbose=False), rounds=1, iterations=1
    )
    genedit_dev, genedit_enterprise = reports["GenEdit"]
    maximal_dev, maximal_enterprise = reports["SchemaMaximal"]

    # On the public-benchmark-like sample the fine-tuned comparator wins.
    assert maximal_dev.accuracy() >= genedit_dev.accuracy()

    # On enterprise complexity GenEdit dominates by a wide margin.
    assert genedit_enterprise.accuracy() >= (
        maximal_enterprise.accuracy() + 20.0
    )
    assert genedit_enterprise.accuracy() >= 70.0

    # The comparator's failures concentrate exactly on the multi-CTE ratio
    # shape (the complexity ceiling).
    ratio_failures = [
        outcome for outcome in maximal_enterprise.failures()
        if "kind:ratio-delta" in outcome.features
    ]
    assert len(ratio_failures) >= 10

    print()
    print(
        format_table(
            "Crossover (reproduced)",
            ["Method", "BIRD-like", "Enterprise"],
            [
                ("GenEdit", genedit_dev.accuracy(),
                 genedit_enterprise.accuracy()),
                ("SchemaMaximal", maximal_dev.accuracy(),
                 maximal_enterprise.accuracy()),
            ],
        )
    )

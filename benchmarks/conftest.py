"""Shared experiment context for the benchmark suite.

Built once per session: the six databases, the 132-question dev sample,
the training logs, and the mined knowledge sets.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentContext


@pytest.fixture(scope="session")
def context():
    experiment_context = ExperimentContext()
    experiment_context.workload
    experiment_context.knowledge_sets
    return experiment_context

"""Fig. 2: the retrieved-knowledge + CoT-plan prompt for Q_fin-perf.

The paper's figure shows the prompt GenEdit assembles for the running
example: decomposed examples with pseudo-SQL, instructions (the -1
multiplier and conditional-aggregation rules), the linked schema, and a
multi-step plan whose steps pair natural language with pseudo-SQL. This
bench regenerates that artifact and checks its structure.
"""

from __future__ import annotations

from repro.pipeline import GenEditPipeline

QUESTION = (
    "Identify our 5 sports organisations with the best and worst QoQFP "
    "in Canada for Q2 2023"
)


def _generate(context):
    profile = context.profiles["sports_holdings"]
    knowledge = context.knowledge_sets["sports_holdings"]
    pipeline = GenEditPipeline(profile.database, knowledge)
    return pipeline, pipeline.generate(QUESTION)


def test_fig2_prompt_and_plan(benchmark, context):
    pipeline, result = benchmark.pedantic(
        lambda: _generate(context), rounds=1, iterations=1
    )

    # The plan is a multi-step CoT with pseudo-SQL fragments (Fig. 2 shows
    # 24 steps for the production query; ours is proportionally smaller).
    assert result.plan is not None
    assert len(result.plan.steps) >= 6
    pseudo_steps = [step for step in result.plan.steps if step.pseudo_sql]
    assert pseudo_steps
    assert all(
        step.pseudo_sql.startswith("... ") and step.pseudo_sql.endswith(" ...")
        for step in pseudo_steps
    )
    plan_text = result.plan.render()
    assert "Begin by looking at the data from the SPORTS_FINANCIALS" in (
        plan_text
    )
    assert "-1 multiplier" in plan_text

    # Retrieved knowledge covers all three component kinds.
    assert result.context.instructions
    assert result.context.examples
    assert result.context.schema_elements
    terms = {
        instruction.term for instruction in result.context.instructions
    }
    assert "QoQFP" in terms

    # The generated SQL is the appendix shape: pivot CTEs, safe ratio,
    # dual ranking, executable.
    assert result.success
    sql = result.sql
    for marker in ("WITH", "NULLIF", "ROW_NUMBER", "WORST_RANK", "'Canada'"):
        assert marker in sql
    rows = pipeline.execute(sql).rows
    assert rows

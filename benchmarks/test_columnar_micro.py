"""Columnar-engine micro-ops: before/after ratios against the row oracle.

Four operator-level benchmarks — vectorized filter, hash equi-join, hash
group-by, and batched top-k retrieval — each timed twice over the same
inputs: "before" through the frozen row-at-a-time path (the
:class:`~repro.engine.reference.ReferenceExecutor` oracle, or the
per-document cosine loop for retrieval) and "after" through the columnar
executor / postings-batched index. The ratios are printed with
:func:`~repro.bench.harness.format_table` and the executor ops are gated
at >=1.5x so a regression in the columnar fast paths fails ``make
perf-smoke`` (part of ``make lint``) instead of silently eating the
speedup. Timings take the best of several repeats, so the gate tolerates
a noisy machine; the margin on a quiet one is far above 1.5x.
"""

from __future__ import annotations

import datetime
import time

from repro.bench.harness import format_table
from repro.engine import Column, Database, Executor
from repro.engine.reference import ReferenceExecutor
from repro.text.index import RetrievalIndex
from repro.text.similarity import cosine_with_norms

#: Minimum before/after speedup for the executor micro-ops.
EXECUTOR_GATE = 1.5

_ROWS = 2400
_REGIONS = ("north", "south", "east", "west")


def _micro_db():
    db = Database("micro_bench")
    db.create_table(
        "DIM",
        [
            Column("DIM_ID", "INTEGER", "Key."),
            Column("REGION", "TEXT", "Region."),
            Column("WEIGHT", "FLOAT", "Weight."),
        ],
        rows=[
            (n, _REGIONS[n % len(_REGIONS)], float(n % 7) + 0.5)
            for n in range(48)
        ],
        description="Dimension table.",
    )
    db.create_table(
        "FACT",
        [
            Column("FACT_ID", "INTEGER", "Key."),
            Column("DIM_ID", "INTEGER", "Foreign key to DIM."),
            Column("AMOUNT", "FLOAT", "Measure."),
            Column("SEEN", "DATE", "Event date."),
        ],
        rows=[
            (
                n,
                n % 48,
                float((n * 37) % 1000) / 10.0,
                datetime.date(2023, 1 + n % 12, 1 + n % 28),
            )
            for n in range(_ROWS)
        ],
        description="Fact table.",
    )
    return db


def _best_of(fn, repeats=5, rounds=3):
    """Best wall-clock of ``repeats`` batches of ``rounds`` calls."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(rounds):
            fn()
        best = min(best, time.perf_counter() - started)
    return best / rounds


def _ratio_row(name, before_fn, after_fn, check=None):
    if check is not None:
        check(before_fn(), after_fn())
    before_s = _best_of(before_fn)
    after_s = _best_of(after_fn)
    return (name, before_s * 1e3, after_s * 1e3, before_s / after_s)


def _check_results(before, after):
    assert before.comparable() == after.comparable()
    assert before.rows, "micro-op query returned no rows"


FILTER_SQL = (
    "SELECT FACT_ID, AMOUNT FROM FACT"
    " WHERE AMOUNT > 25.0 AND AMOUNT < 90.0 AND DIM_ID <> 7"
)
JOIN_SQL = (
    "SELECT F.FACT_ID, D.REGION FROM FACT F JOIN DIM D"
    " ON F.DIM_ID = D.DIM_ID WHERE D.WEIGHT > 2.0"
)
GROUP_SQL = (
    "SELECT DIM_ID, COUNT(*), SUM(AMOUNT), MAX(SEEN) FROM FACT"
    " GROUP BY DIM_ID HAVING COUNT(*) > 10"
)


def test_columnar_micro_ops_beat_row_oracle():
    db = _micro_db()
    columnar = Executor(db)
    reference = ReferenceExecutor(db)

    rows = [
        _ratio_row(
            name,
            lambda sql=sql: reference.execute(sql),
            lambda sql=sql: columnar.execute(sql),
            check=_check_results,
        )
        for name, sql in (
            ("filter", FILTER_SQL),
            ("hash join", JOIN_SQL),
            ("group-by", GROUP_SQL),
        )
    ]
    rows.append(_retrieval_row())

    print()
    print(format_table(
        "Columnar micro-ops (best-of-5, ms per op)",
        ["op", "before_ms", "after_ms", "ratio"],
        rows,
    ))

    for name, _before, _after, ratio in rows[:3]:
        assert ratio >= EXECUTOR_GATE, (
            f"{name}: columnar path only {ratio:.2f}x over the row oracle "
            f"(gate {EXECUTOR_GATE}x)"
        )


def _retrieval_row():
    """Top-k retrieval: per-document cosine loop vs batched search."""
    index = RetrievalIndex()
    for n in range(600):
        region = _REGIONS[n % len(_REGIONS)]
        index.add(
            f"doc{n}",
            f"quarterly revenue report {region} region period {n % 12} "
            f"metric {n % 37} viewership trend {'up' if n % 3 else 'down'}",
        )
    index._refresh()
    query = "revenue trend for the west region this quarter"
    query_vector, query_norm, _terms = index._embed_query(query)

    def before():
        hits = []
        for doc_id, document in index._documents.items():
            score = cosine_with_norms(
                query_vector, document.vector, query_norm, document.norm
            )
            hits.append((-score, doc_id))
        hits.sort()
        return [(doc_id, -negated) for negated, doc_id in hits[:8]]

    def after():
        return [(hit.doc_id, hit.score) for hit in index.search(query, k=8)]

    assert before() == after()
    return _ratio_row("top-k retrieval", before, after)

"""Compounding-retrieval design ablations (§3.1.1).

The paper's core retrieval insight is that the operators *compound*: intent
classification keys the candidate pools, and each component's selection
expands the query used to re-rank the next ("context expansion"). This
bench switches each design choice off independently — the extension
experiments DESIGN.md calls out beyond the paper's Table 2.
"""

from __future__ import annotations

from repro.bench.harness import format_table, retrieval_ablation


def test_retrieval_ablation(benchmark, context):
    reports = benchmark.pedantic(
        lambda: retrieval_ablation(context, verbose=False),
        rounds=1, iterations=1,
    )
    by_name = {report.system: report for report in reports}
    full = by_name["GenEdit (full)"]

    # Context expansion carries the moderate bucket: without it the
    # instruction re-ranking loses the example signal.
    no_expansion = by_name["w/o Context Expansion"]
    assert no_expansion.accuracy("moderate") < full.accuracy("moderate")

    # Intent classification carries the challenging bucket: without the
    # intent-keyed pools the pattern-bearing fragments are not retrieved.
    no_intent = by_name["w/o Intent Classification"]
    assert no_intent.accuracy("challenging") < full.accuracy("challenging")

    # Flat retrieval (both off) is the weakest variant overall.
    flat = by_name["flat retrieval (w/o both)"]
    assert flat.accuracy() == min(report.accuracy() for report in reports)
    assert full.accuracy() == max(report.accuracy() for report in reports)

    print()
    print(
        format_table(
            "Retrieval design ablations (reproduced)",
            ["Variant", "Simple", "Moderate", "Challenging", "All"],
            [(report.system, *report.row()) for report in reports],
        )
    )

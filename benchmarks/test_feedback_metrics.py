"""§4.2.3: edits-recommendation metrics in (simulated) production.

The paper evaluates the module on (i) how many suggested edits are accepted
as-is and (ii) how many after re-using the solver or manual edits. The
simulator plays the SME over every fixable GenEdit failure on the dev
sample: colloquial feedback first for half the sessions, precise feedback
on iteration — mirroring real usage.
"""

from __future__ import annotations

from repro.bench.feedback_sim import simulate_feedback_sessions
from repro.bench.harness import format_table


def test_feedback_metrics(benchmark, context):
    summary = benchmark.pedantic(
        lambda: simulate_feedback_sessions(context=context),
        rounds=1, iterations=1,
    )
    assert summary.sessions >= 25
    assert summary.recommended >= summary.sessions  # >=1 edit per session
    # The module fixes the majority of fixable failures.
    assert summary.fixed >= summary.sessions * 0.5
    # Both acceptance modes occur: some edits land as-is, some after the
    # SME iterates with more precise feedback.
    assert summary.accepted_as_is > 0
    assert summary.accepted_after_iteration > 0
    # Every session is accounted for, and fixed generations can only come
    # from sessions whose regeneration actually matched the gold result.
    assert len(summary.details) == summary.sessions
    regenerated_ok = sum(
        1 for _qid, fixed, _iters in summary.details if fixed
    )
    assert summary.fixed <= regenerated_ok
    print()
    print(
        format_table(
            "Feedback metrics (reproduced, §4.2.3)",
            ["Metric", "Value"],
            [
                ("sessions", summary.sessions),
                ("edits recommended", summary.recommended),
                ("accepted as-is", summary.accepted_as_is),
                ("accepted after iteration", summary.accepted_after_iteration),
                ("rejected", summary.rejected),
                ("fixed generations", summary.fixed),
            ],
        )
    )

"""Table 1: GenEdit vs prior systems on the BIRD-like dev sample.

Regenerates the paper's main comparison. Paper values (10% BIRD-dev):

    CHESS 64.62 | GenEdit 60.61 | MAC-SQL 59.39 | TA-SQL 56.19 |
    DAIL-SQL 54.3 | C3-SQL 50.2   (All-bucket EX)

The reproduction targets the *shape*: GenEdit and CHESS lead, the
no-knowledge prompting baselines trail, C3 is last, and GenEdit has the
best Simple bucket. The printed table is the artifact.
"""

from __future__ import annotations

from repro.bench.harness import format_table, run_genedit, table1


def test_table1_genedit_row(benchmark, context):
    """Benchmark the full GenEdit dev-sample evaluation (132 questions)."""
    report = benchmark.pedantic(
        lambda: run_genedit(context), rounds=1, iterations=1
    )
    simple, moderate, challenging, total = report.row()
    # Paper row: 69.89 / 39.29 / 36.36 / 60.61.
    assert round(simple, 2) == 69.89   # 65/93, the paper's exact value
    assert round(challenging, 2) == 36.36  # 4/11, the paper's exact value
    assert 55.0 <= total <= 70.0
    # difficulty gradient holds
    assert simple > moderate > challenging


def test_table1_full_comparison(benchmark, context):
    reports = benchmark.pedantic(
        lambda: table1(context, verbose=False), rounds=1, iterations=1
    )
    by_name = {report.system: report for report in reports}
    ranking = [report.system for report in reports]

    # GenEdit and CHESS are the two knowledge-retrieval systems — they lead.
    assert set(ranking[:2]) == {"GenEdit", "CHESS"}
    # C3 (zero-shot, no knowledge, no linking) is last.
    assert ranking[-1] == "C3-SQL"
    # GenEdit has the best Simple bucket (paper: 69.89, first place).
    genedit_simple = by_name["GenEdit"].accuracy("simple")
    assert all(
        genedit_simple >= report.accuracy("simple") for report in reports
    )
    # Knowledge access separates the field on term/guideline questions.
    assert by_name["GenEdit"].accuracy() - by_name["C3-SQL"].accuracy() >= 10
    # GenEdit leads every baseline on the Challenging bucket (decomposed
    # pattern evidence is what unlocks the multi-CTE idioms).
    genedit_challenging = by_name["GenEdit"].accuracy("challenging")
    assert all(
        genedit_challenging >= report.accuracy("challenging")
        for report in reports
    )
    print()
    print(
        format_table(
            "Table 1 (reproduced)",
            ["Method", "Simple", "Moderate", "Challenging", "All"],
            [(report.system, *report.row()) for report in reports],
        )
    )

"""Table 2: operator ablation study.

Paper deltas (All-bucket EX vs full GenEdit):

    w/o Schema Linking  -2.28   (Challenging collapses 36.36 -> 18.18)
    w/o Instructions   -10.61   (largest drop)
    w/o Examples        -1.52   (smallest drop)
    w/o Pseudo-SQL      -9.85
    w/o Decomposition   -2.28

Reproduction targets: instructions are the most valuable component,
examples the least; removing pseudo-SQL or decomposition destroys the
challenging bucket; removing schema linking hurts challenging hardest.
"""

from __future__ import annotations

from repro.bench.harness import format_table, table2


def test_table2_ablations(benchmark, context):
    reports = benchmark.pedantic(
        lambda: table2(context, verbose=False), rounds=1, iterations=1
    )
    by_name = {report.system: report for report in reports}
    full = by_name["GenEdit"]

    def delta(name):
        return by_name[name].accuracy() - full.accuracy()

    # Instructions give the most benefit (paper: -10.61, the largest drop).
    drops = {
        name: delta(name) for name in by_name if name != "GenEdit"
    }
    assert min(drops, key=drops.get) == "w/o Instructions"
    assert delta("w/o Instructions") <= -6.0

    # Examples give the least direct benefit (paper: -1.52).
    assert abs(delta("w/o Examples")) <= 2.0

    # Pseudo-SQL and decomposition carry the challenging bucket: without
    # either, the multi-CTE idioms are out of reach.
    assert by_name["w/o Pseudo-SQL"].accuracy("challenging") == 0.0
    assert by_name["w/o Decomposition"].accuracy("challenging") == 0.0

    # Schema linking: moderate total drop, challenging crash (paper 18.18).
    assert -6.0 <= delta("w/o Schema Linking") <= -1.0
    assert by_name["w/o Schema Linking"].accuracy("challenging") < (
        full.accuracy("challenging")
    )

    print()
    print(
        format_table(
            "Table 2 (reproduced)",
            ["Method", "Simple", "Moderate", "Challenging", "All"],
            [(report.system, *report.row()) for report in reports],
        )
    )

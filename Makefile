# CI entry points for the GenEdit reproduction.
#
#   make lint     - the full lint job: bytecode-compile everything, run the
#                   tier-1 test suite, then gate on the known-bad SQL corpus
#                   (fails on any rule-coverage regression)
#   make compile  - python -m compileall over src/
#   make test     - tier-1 pytest suite
#   make lint-corpus - diagnostics corpus + CLI smoke only
#   make bench    - regenerate the paper tables

PYTHON ?= python

.PHONY: lint compile test lint-corpus bench

lint: compile test lint-corpus

compile:
	$(PYTHON) -m compileall -q src

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint-corpus:
	$(PYTHON) scripts/lint_corpus.py

bench:
	PYTHONPATH=src $(PYTHON) -m repro bench all

# CI entry points for the GenEdit reproduction.
#
#   make lint     - the full lint job: bytecode-compile everything, run the
#                   tier-1 test suite, then gate on the known-bad SQL corpus
#                   (fails on any rule-coverage regression)
#   make compile  - python -m compileall over src/
#   make test     - tier-1 pytest suite
#   make lint-corpus - diagnostics corpus + CLI smoke only
#   make knowledge-lint - seeded knowledge sets must lint free of errors;
#                   a planted stale-column fixture must fail the linter
#   make trace-smoke - export one traced run, render it, check the root span
#   make chaos-smoke - run Table 1 under fault injection; every question
#                   must still produce an outcome and retries must register
#   make ledger-smoke - record the same bench run twice into a scratch
#                   ledger; repro diff must find zero flips (determinism)
#   make telemetry-smoke - stream Prometheus telemetry from a short bench
#                   run (output must pass the promtext linter), then
#                   repro watch over a fresh two-run ledger must report
#                   zero level shifts
#   make perf-smoke - columnar micro-ops vs the row oracle; fails if any
#                   executor op drops below the 1.5x speedup gate
#   make serve-smoke - boot the HTTP service in-process on an ephemeral
#                   port, drive a loadgen burst + backpressure probe
#                   (all non-probe traffic 2xx, probe must see a 429),
#                   check the telemetry flush, then sweep the workload at
#                   concurrency 1 and 8: repro diff must find zero flips
#   make debug-smoke - boot the service in-process, round-trip a caller
#                   traceparent through /debug/traces/{id}, scrape
#                   /metrics through the promtext linter, force one
#                   failing request and reconstruct it from /debug/errors
#   make bench    - regenerate the paper tables

PYTHON ?= python

.PHONY: lint compile test lint-corpus knowledge-lint trace-smoke \
	chaos-smoke ledger-smoke telemetry-smoke perf-smoke serve-smoke \
	debug-smoke bench

lint: compile test lint-corpus knowledge-lint trace-smoke chaos-smoke \
	ledger-smoke telemetry-smoke perf-smoke serve-smoke debug-smoke

compile:
	$(PYTHON) -m compileall -q src

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

lint-corpus:
	$(PYTHON) scripts/lint_corpus.py

knowledge-lint:
	PYTHONPATH=src $(PYTHON) -m repro lint-knowledge
	! PYTHONPATH=src $(PYTHON) -m repro lint-knowledge \
		--db sports_holdings \
		--knowledge tests/fixtures/knowledge_corpus/stale_column_sports.json \
		> /dev/null

trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro ask sports_holdings \
		"How many teams are there?" \
		--trace-out /tmp/repro-trace-smoke.jsonl > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro trace /tmp/repro-trace-smoke.jsonl \
		> /tmp/repro-trace-smoke.txt
	grep -q "^generate " /tmp/repro-trace-smoke.txt
	grep -q -- "-- metrics snapshot" /tmp/repro-trace-smoke.txt

chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bench table1 --faults 0.2:7 --metrics \
		> /tmp/repro-chaos-smoke.txt
	grep -q "GenEdit" /tmp/repro-chaos-smoke.txt
	grep -q "resilience.retries" /tmp/repro-chaos-smoke.txt

ledger-smoke:
	rm -rf /tmp/repro-ledger-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench table1 \
		--ledger-dir /tmp/repro-ledger-smoke > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro bench table1 \
		--ledger-dir /tmp/repro-ledger-smoke > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro diff --latest \
		--ledger-dir /tmp/repro-ledger-smoke > /tmp/repro-ledger-smoke.txt
	grep -q "total: 0 flip(s)" /tmp/repro-ledger-smoke.txt

telemetry-smoke:
	rm -rf /tmp/repro-telemetry-smoke
	mkdir -p /tmp/repro-telemetry-smoke
	PYTHONPATH=src $(PYTHON) -m repro bench table1 --limit 3 \
		--telemetry-out /tmp/repro-telemetry-smoke/metrics.prom \
		--ledger-dir /tmp/repro-telemetry-smoke/runs > /dev/null
	PYTHONPATH=src $(PYTHON) scripts/check_promtext.py \
		/tmp/repro-telemetry-smoke/metrics.prom
	PYTHONPATH=src $(PYTHON) -m repro bench table1 --limit 3 \
		--ledger-dir /tmp/repro-telemetry-smoke/runs > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro watch --json \
		--ledger-dir /tmp/repro-telemetry-smoke/runs \
		> /tmp/repro-telemetry-smoke/watch.json
	grep -q '"alerts": \[\]' /tmp/repro-telemetry-smoke/watch.json
	PYTHONPATH=src $(PYTHON) -m repro slo examples/slo.yaml \
		--ledger-dir /tmp/repro-telemetry-smoke/runs > /dev/null

perf-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_columnar_micro.py \
		-q -s -p no:cacheprovider

serve-smoke:
	rm -rf /tmp/repro-serve-smoke
	mkdir -p /tmp/repro-serve-smoke
	PYTHONPATH=src $(PYTHON) -m repro loadgen --self --check --probe \
		--requests 30 --concurrency 4 --workers 2 --queue-depth 2 \
		--telemetry-out /tmp/repro-serve-smoke/metrics.prom \
		energy_grid sports_holdings > /tmp/repro-serve-smoke/burst.txt
	grep -q "p99" /tmp/repro-serve-smoke/burst.txt
	PYTHONPATH=src $(PYTHON) scripts/check_promtext.py \
		/tmp/repro-serve-smoke/metrics.prom
	PYTHONPATH=src $(PYTHON) -m repro loadgen --self --check --sweep \
		--concurrency 1 --ledger-dir /tmp/repro-serve-smoke/runs \
		energy_grid sports_holdings > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro loadgen --self --check --sweep \
		--concurrency 8 --ledger-dir /tmp/repro-serve-smoke/runs \
		energy_grid sports_holdings > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro diff --latest \
		--ledger-dir /tmp/repro-serve-smoke/runs \
		> /tmp/repro-serve-smoke/diff.txt
	grep -q "total: 0 flip(s)" /tmp/repro-serve-smoke/diff.txt

debug-smoke:
	rm -rf /tmp/repro-debug-smoke
	mkdir -p /tmp/repro-debug-smoke
	$(PYTHON) scripts/debug_smoke.py /tmp/repro-debug-smoke/metrics.prom
	PYTHONPATH=src $(PYTHON) scripts/check_promtext.py \
		/tmp/repro-debug-smoke/metrics.prom

bench:
	PYTHONPATH=src $(PYTHON) -m repro bench all

"""Deterministic fault injection for chaos testing.

A :class:`FaultInjector` decides, per call site and occurrence, whether to
inject a fault and of which kind. Decisions are a pure function of
``(seed, scope, site, occurrence)`` via :func:`~.policy.stable_unit`, so a
chaos run replays bit-identically — including under the parallel harness,
where each per-database pipeline owns its own injector (scoped by database
name) and the per-site occurrence counters never race across questions.

Fault kinds, carved out of the configured overall ``rate``:

* ``error``   — a :class:`~.policy.TransientLLMError` before the call;
* ``timeout`` — an :class:`~.policy.LLMTimeoutError` (the call "hung"
  past the policy deadline);
* ``garble``  — the call succeeds but its output is truncated/garbled;
* ``latency`` — a recorded latency spike (metrics only; nothing sleeps).

:class:`FaultyLLM` applies the injector to the simulated LLM's operator
methods; :class:`FaultyExecutor` applies it to the execution engine, where
an injected fault surfaces as :class:`InjectedExecutionError` — a regular
:class:`~repro.engine.errors.ExecutionError`, so the self-correction
operator and the final check handle it like any runtime failure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..engine.errors import ExecutionError
from ..obs.metrics import get_metrics
from .policy import LLMTimeoutError, TransientLLMError, stable_unit

FAULT_ERROR = "error"
FAULT_TIMEOUT = "timeout"
FAULT_GARBLE = "garble"
FAULT_LATENCY = "latency"


class InjectedExecutionError(ExecutionError):
    """An injected engine failure (subclass so normal handling applies)."""


@dataclass(frozen=True)
class FaultConfig:
    """Overall fault rate, seed, and how the rate splits across kinds.

    The shares partition the faulted band ``[0, rate)``; they are
    normalised, so only their proportions matter.
    """

    rate: float = 0.0
    seed: int = 0
    error_share: float = 0.45
    timeout_share: float = 0.25
    garble_share: float = 0.20
    latency_share: float = 0.10
    latency_ms: float = 250.0

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    @classmethod
    def parse(cls, text):
        """Parse the harness flag form ``RATE`` or ``RATE:SEED``."""
        rate_text, _, seed_text = str(text).partition(":")
        try:
            rate = float(rate_text)
            seed = int(seed_text) if seed_text else 0
        except ValueError as error:
            raise ValueError(
                f"--faults expects RATE[:SEED], got {text!r}"
            ) from error
        return cls(rate=rate, seed=seed)

    def kind_for(self, unit):
        """Map a ``[0, 1)`` sample to a fault kind, or None for no fault."""
        if unit >= self.rate or self.rate <= 0.0:
            return None
        shares = (
            (FAULT_ERROR, self.error_share),
            (FAULT_TIMEOUT, self.timeout_share),
            (FAULT_GARBLE, self.garble_share),
            (FAULT_LATENCY, self.latency_share),
        )
        total = sum(share for _kind, share in shares) or 1.0
        band = unit / self.rate
        cumulative = 0.0
        for kind, share in shares:
            cumulative += share / total
            if band < cumulative:
                return kind
        return FAULT_LATENCY


class FaultInjector:
    """Seed-deterministic fault decisions for one pipeline's call sites."""

    def __init__(self, config, scope=""):
        self.config = config
        self.scope = scope
        self._lock = threading.Lock()
        self._counts = {}
        self.injected = {}          # kind -> count, for assertions/tests

    def decide(self, site):
        """The fault kind for this occurrence of ``site`` (or None)."""
        with self._lock:
            occurrence = self._counts[site] = self._counts.get(site, 0) + 1
        unit = stable_unit(self.config.seed, self.scope, site, occurrence)
        kind = self.config.kind_for(unit)
        if kind is not None:
            with self._lock:
                self.injected[kind] = self.injected.get(kind, 0) + 1
            get_metrics().inc("faults.injected", kind=kind, site=site)
        return kind

    def before_llm_call(self, site):
        """Raise the decided fault (if raising); return the kind otherwise."""
        kind = self.decide(site)
        if kind == FAULT_ERROR:
            raise TransientLLMError(
                f"injected transient failure in {site} ({self.scope})"
            )
        if kind == FAULT_TIMEOUT:
            raise LLMTimeoutError(
                f"injected timeout in {site} ({self.scope})"
            )
        if kind == FAULT_LATENCY:
            get_metrics().observe(
                "faults.injected_latency_ms", self.config.latency_ms,
                site=site,
            )
        return kind

    def garble(self, value):
        """Truncate/garble an output the way a cut-off response would."""
        if isinstance(value, str):
            return value[: max(len(value) // 2, 1)] + " ##TRUNCATED##"
        if isinstance(value, list):
            return value[: len(value) // 2]
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[1], list)
            and value[1]
        ):
            # The understand() shape: (parsed, candidates) — drop the
            # alternate candidates, keeping the call well-formed.
            return (value[0], value[1][:1])
        return value


#: LLM methods whose outputs survive garbling structurally intact enough
#: for the pipeline to keep running (chaos tests exercise the fallout).
_GARBLE_SAFE = ("reformulate", "classify_intents", "link_schema",
                "understand")


class FaultyLLM:
    """Wraps a (simulated) LLM, injecting faults before/after each call."""

    def __init__(self, llm, injector):
        self.inner = llm
        self.injector = injector

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _call(self, site, *args, **kwargs):
        kind = self.injector.before_llm_call(site)
        result = getattr(self.inner, site)(*args, **kwargs)
        if kind == FAULT_GARBLE and site in _GARBLE_SAFE:
            return self.injector.garble(result)
        return result

    def reformulate(self, *args, **kwargs):
        return self._call("reformulate", *args, **kwargs)

    def classify_intents(self, *args, **kwargs):
        return self._call("classify_intents", *args, **kwargs)

    def link_schema(self, *args, **kwargs):
        return self._call("link_schema", *args, **kwargs)

    def understand(self, *args, **kwargs):
        return self._call("understand", *args, **kwargs)


class FaultyExecutor:
    """Wraps an :class:`~repro.engine.executor.Executor` with faults.

    Injected error/timeout kinds surface as
    :class:`InjectedExecutionError`; garble and latency kinds are no-ops
    beyond their metrics (a result set cannot be half-returned here).
    """

    def __init__(self, executor, injector, site="execute"):
        self.inner = executor
        self.injector = injector
        self.site = site

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def execute(self, query):
        kind = self.injector.decide(self.site)
        if kind in (FAULT_ERROR, FAULT_TIMEOUT):
            raise InjectedExecutionError(
                f"injected {kind} in {self.site} ({self.injector.scope})"
            )
        return self.inner.execute(query)

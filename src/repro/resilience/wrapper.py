"""The retrying LLM wrapper: policy applied around every operator method.

:class:`ResilientLLM` is transparent when nothing fails — same arguments,
same return values, attribute access (``model``, ``linking_model``...)
passes through — so wrapping the simulated LLM never perturbs a healthy
run. On failure it classifies the error (:func:`~.policy.classify_error`),
retries retryable ones up to the policy bound with deterministic backoff,
feeds the circuit breaker when one is configured, and annotates both the
enclosing span and the process-wide metrics registry with what happened.
"""

from __future__ import annotations

import time

from ..obs.metrics import get_metrics
from ..obs.tracing import current_span
from .policy import (
    FATAL,
    CircuitOpenError,
    LLMTimeoutError,
    RetriesExhaustedError,
    RetryPolicy,
    classify_error,
)

#: The operator-facing methods of :class:`~repro.llm.simulated.SimulatedLLM`
#: that the wrapper guards. Anything else passes through untouched.
WRAPPED_LLM_METHODS = (
    "reformulate", "classify_intents", "link_schema", "understand",
)


def unwrap_llm(llm):
    """The innermost LLM under any resilience/fault wrappers."""
    seen = set()
    while hasattr(llm, "inner") and id(llm) not in seen:
        seen.add(id(llm))
        llm = llm.inner
    return llm


class ResilientLLM:
    """Retry/backoff/timeout/breaker wrapper around an LLM's operators."""

    def __init__(self, llm, policy=None, breaker=None):
        self.inner = llm
        self.policy = policy or RetryPolicy()
        self.breaker = breaker if breaker is not None \
            else self.policy.make_breaker()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def reformulate(self, *args, **kwargs):
        return self._call("reformulate", *args, **kwargs)

    def classify_intents(self, *args, **kwargs):
        return self._call("classify_intents", *args, **kwargs)

    def link_schema(self, *args, **kwargs):
        return self._call("link_schema", *args, **kwargs)

    def understand(self, *args, **kwargs):
        return self._call("understand", *args, **kwargs)

    # -- machinery -------------------------------------------------------

    def _call(self, site, *args, **kwargs):
        policy = self.policy
        metrics = get_metrics()
        function = getattr(self.inner, site)
        last_error = None
        for attempt in range(1, max(policy.max_attempts, 1) + 1):
            if self.breaker is not None and not self.breaker.allow(site):
                metrics.inc("resilience.circuit_open", operator=site)
                self._annotate_span("resilience.circuit_open", 1)
                raise CircuitOpenError(f"circuit open for {site}")
            started = time.perf_counter()
            try:
                result = function(*args, **kwargs)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                if elapsed_ms > policy.timeout_ms:
                    # Soft deadline: a synchronous stack cannot preempt the
                    # call, but a call observed past the budget is treated
                    # exactly like one that timed out remotely.
                    raise LLMTimeoutError(
                        f"{site} took {elapsed_ms:.0f}ms "
                        f"(deadline {policy.timeout_ms:.0f}ms)"
                    )
            except Exception as error:
                if classify_error(error) is FATAL:
                    if self.breaker is not None:
                        self.breaker.record_failure(site)
                    metrics.inc("resilience.fatal", operator=site)
                    raise
                last_error = error
                if self.breaker is not None:
                    self.breaker.record_failure(site)
                if attempt >= policy.max_attempts:
                    break
                backoff_ms = policy.backoff_ms(attempt, site)
                metrics.inc("resilience.retries", operator=site)
                metrics.observe("resilience.backoff_ms", backoff_ms,
                                operator=site)
                self._annotate_span("resilience.retries", 1)
                self._annotate_span("resilience.backoff_ms", backoff_ms)
                if policy.sleep and backoff_ms > 0:
                    time.sleep(backoff_ms / 1000.0)
                continue
            if self.breaker is not None:
                self.breaker.record_success(site)
            if attempt > 1:
                metrics.inc("resilience.recoveries", operator=site)
                span = current_span()
                if span is not None:
                    span.set_attr("resilience.recovered_attempt", attempt)
            return result
        metrics.inc("resilience.exhausted", operator=site)
        self._annotate_span("resilience.exhausted", 1)
        raise RetriesExhaustedError(site, policy.max_attempts, last_error)

    @staticmethod
    def _annotate_span(key, value):
        span = current_span()
        if span is not None:
            span.inc_attr(key, value)

"""Retry policy, error classification, and the circuit breaker.

Everything here is deterministic by construction: backoff jitter comes
from a stable hash of ``(seed, site, attempt)`` rather than a shared RNG,
and the circuit breaker counts *calls* (not wall-clock time) through its
cooldown, so a chaos run replays identically under any thread scheduling.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass


def stable_unit(*parts):
    """A deterministic sample in ``[0, 1)`` from the hash of ``parts``.

    Used for backoff jitter and fault sampling: unlike a sequential RNG the
    value depends only on the identifying parts, never on how many draws
    other threads made first — chaos runs replay identically under the
    parallel harness.
    """
    text = "|".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


# -- error taxonomy ---------------------------------------------------------


class ResilienceError(Exception):
    """Base of the resilience layer's own error types."""


class TransientError(ResilienceError):
    """A failure worth retrying (network blip, throttle, flaky backend)."""


class TransientLLMError(TransientError):
    """A retryable failure of a (simulated) model call."""


class LLMTimeoutError(TransientError):
    """A model call exceeded the policy's per-call deadline."""


class FatalLLMError(ResilienceError):
    """A model-call failure retrying cannot fix (bad request, auth)."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open for this call site; call not attempted."""


class RetriesExhaustedError(ResilienceError):
    """Every allowed attempt failed; carries the last underlying error."""

    def __init__(self, site, attempts, last_error):
        self.site = site
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"{site} failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )


RETRYABLE = "retryable"
FATAL = "fatal"


def classify_error(error, extra_retryable=()):
    """Classify ``error`` as :data:`RETRYABLE` or :data:`FATAL`.

    The layer's own transient types are retryable; so are the stdlib
    shapes a real inference stack produces (timeouts, connection resets).
    Everything else — including :class:`FatalLLMError`,
    :class:`CircuitOpenError`, and arbitrary programming errors — is fatal:
    retrying a deterministic failure only burns budget.
    """
    if isinstance(error, (FatalLLMError, CircuitOpenError)):
        return FATAL
    if isinstance(error, TransientError):
        return RETRYABLE
    if isinstance(error, (TimeoutError, ConnectionError, BrokenPipeError)):
        return RETRYABLE
    if extra_retryable and isinstance(error, tuple(extra_retryable)):
        return RETRYABLE
    return FATAL


#: Failure-triage categories keyed by rendered exception type name. This is
#: the text-side mirror of :func:`classify_error` for consumers that only
#: have a recorded outcome's ``error`` string (the run ledger's ``python -m
#: repro triage``): outcome errors are rendered as ``Type: message`` by the
#: harness and ``operator: Type: message`` by the pipeline's required-
#: operator failure path.
FAILURE_CATEGORIES = {
    "TransientLLMError": "llm-transient",
    "ConnectionError": "llm-transient",
    "BrokenPipeError": "llm-transient",
    "LLMTimeoutError": "llm-timeout",
    "TimeoutError": "llm-timeout",
    "FatalLLMError": "llm-fatal",
    "CircuitOpenError": "circuit-open",
    "RetriesExhaustedError": "retries-exhausted",
    "InjectedExecutionError": "execution",
    "ExecutionError": "execution",
    "SqlError": "sql-invalid",
    "ParseError": "sql-invalid",
    "AssertionError": "harness",
}


def categorize_failure(error_text):
    """Map an outcome's rendered ``error`` onto the resilience taxonomy.

    Recognised shapes: ``"result mismatch"`` / ``"no SQL generated"`` /
    ``"generation failed"`` (the harness's clean-failure texts),
    ``"Type: message"`` (worker exceptions),
    ``"operator: Type: message"`` (required-operator failures, where the
    type name is the second segment), and the bare parser/executor
    messages the final check records without a type name (``"Unknown
    column ..."``, ``"Expected ..."``, ...). Anything else falls into
    ``"other"``. Empty text (a correct outcome) maps to ``"none"``.
    """
    text = (error_text or "").strip()
    if not text:
        return "none"
    if text == "result mismatch":
        return "wrong-result"
    if text in ("no SQL generated", "generation failed"):
        return "no-sql"
    for segment in text.split(": ", 2)[:2]:
        category = FAILURE_CATEGORIES.get(segment)
        if category is not None:
            return category
    # Final-check errors carry only the message, not the exception type:
    # recognise the parser's and executor's well-known openings.
    if text.startswith(("Expected ", "Unexpected ", "Unterminated ")):
        return "sql-invalid"
    if text.startswith(("Unknown ", "Ambiguous ", "Aggregate ", "Division ")):
        return "execution"
    return "other"


# -- retry policy -----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and backoff for one class of calls.

    ``backoff_ms(attempt, site)`` grows exponentially from
    ``backoff_base_ms`` and is capped at ``backoff_max_ms``; the seeded
    jitter adds up to ``jitter_ratio`` of the raw backoff, deterministically
    per ``(seed, site, attempt)``. ``timeout_ms`` is a soft per-call
    deadline: a call observed (or simulated) to run past it is treated as a
    retryable timeout. ``sleep=False`` (the default for the simulated
    stack) accounts the backoff in metrics without actually sleeping.

    ``breaker_threshold`` consecutive failures at one site open the
    breaker for ``breaker_cooldown`` subsequent calls (0 disables it).
    """

    max_attempts: int = 3
    backoff_base_ms: float = 50.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 2000.0
    jitter_ratio: float = 0.25
    seed: int = 0
    timeout_ms: float = 30_000.0
    sleep: bool = False
    breaker_threshold: int = 0
    breaker_cooldown: int = 8

    def backoff_ms(self, attempt, site=""):
        """Backoff before retry number ``attempt`` (1-based) at ``site``."""
        raw = min(
            self.backoff_base_ms * self.backoff_multiplier ** max(
                attempt - 1, 0
            ),
            self.backoff_max_ms,
        )
        jitter = raw * self.jitter_ratio * stable_unit(
            self.seed, site, attempt
        )
        return raw + jitter

    def make_breaker(self):
        """A :class:`CircuitBreaker` per this policy, or None if disabled."""
        if self.breaker_threshold <= 0:
            return None
        return CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)


DEFAULT_RETRY_POLICY = RetryPolicy()


# -- circuit breaker --------------------------------------------------------


class _SiteState:
    __slots__ = ("failures", "open_remaining", "half_open", "trial_pending")

    def __init__(self):
        self.failures = 0
        self.open_remaining = 0
        self.half_open = False
        self.trial_pending = False


class CircuitBreaker:
    """Per-site breaker counted in calls, so behaviour is deterministic.

    ``threshold`` consecutive failures open the circuit; the next
    ``cooldown`` calls are rejected without reaching the backend; the call
    after that is a half-open trial — success closes the circuit, failure
    re-opens it for another cooldown.

    Every transition happens under one lock, and the half-open trial is a
    single-winner token (``trial_pending``): with N threads racing
    ``allow()`` after the cooldown, exactly one wins the trial and the
    rest are rejected until the trial resolves. Without the token, every
    concurrent caller would "be" the trial — a thundering herd onto a
    backend the breaker exists to protect — and two failures recorded in
    the same tick could double-open the circuit.
    """

    def __init__(self, threshold, cooldown):
        if threshold <= 0:
            raise ValueError("breaker threshold must be positive")
        self.threshold = threshold
        self.cooldown = max(int(cooldown), 1)
        self._lock = threading.Lock()
        self._sites = {}

    def _state(self, site):
        state = self._sites.get(site)
        if state is None:
            state = self._sites[site] = _SiteState()
        return state

    def allow(self, site):
        """Whether a call at ``site`` may proceed (counts one rejection)."""
        with self._lock:
            state = self._state(site)
            if state.open_remaining > 0:
                state.open_remaining -= 1
                if state.open_remaining == 0:
                    state.half_open = True
                return False
            if state.half_open:
                if state.trial_pending:
                    return False
                state.trial_pending = True
                return True
            return True

    def record_success(self, site):
        with self._lock:
            state = self._state(site)
            state.failures = 0
            state.half_open = False
            state.trial_pending = False

    def record_failure(self, site):
        with self._lock:
            state = self._state(site)
            state.failures += 1
            if (
                state.trial_pending
                or state.half_open
                or state.failures >= self.threshold
            ):
                state.open_remaining = self.cooldown
                state.half_open = False
                state.trial_pending = False
                state.failures = 0

    def is_open(self, site):
        with self._lock:
            return self._state(site).open_remaining > 0

"""Resilience layer: retries, fault injection, and graceful degradation.

The paper's pipeline already budgets for *semantic* failure (up to ``k``
self-correction retries, §2.1); this package supplies the *operational*
half an enterprise deployment needs. :class:`RetryPolicy` bounds attempts
with exponential backoff (deterministic seeded jitter) and a per-call
deadline; :class:`ResilientLLM` applies the policy around every simulated
LLM operator method, classifying errors as retryable or fatal and
optionally tripping a :class:`CircuitBreaker`. :class:`FaultInjector`
wraps the LLM (:class:`FaultyLLM`) and the execution engine
(:class:`FaultyExecutor`) with seed-deterministic fault rates — transient
errors, timeouts, truncated/garbled outputs, latency spikes — so chaos
behaviour is reproducible in tests and benchmarks (``--faults RATE[:SEED]``
on the harness, ``make chaos-smoke`` in CI). See DESIGN.md §6c.
"""

from .faults import (
    FAULT_ERROR,
    FAULT_GARBLE,
    FAULT_LATENCY,
    FAULT_TIMEOUT,
    FaultConfig,
    FaultInjector,
    FaultyExecutor,
    FaultyLLM,
    InjectedExecutionError,
)
from .policy import (
    DEFAULT_RETRY_POLICY,
    FAILURE_CATEGORIES,
    FATAL,
    RETRYABLE,
    CircuitBreaker,
    CircuitOpenError,
    FatalLLMError,
    LLMTimeoutError,
    ResilienceError,
    RetriesExhaustedError,
    RetryPolicy,
    TransientError,
    TransientLLMError,
    categorize_failure,
    classify_error,
    stable_unit,
)
from .wrapper import WRAPPED_LLM_METHODS, ResilientLLM, unwrap_llm

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_RETRY_POLICY",
    "FAILURE_CATEGORIES",
    "FATAL",
    "FAULT_ERROR",
    "FAULT_GARBLE",
    "FAULT_LATENCY",
    "FAULT_TIMEOUT",
    "FatalLLMError",
    "FaultConfig",
    "FaultInjector",
    "FaultyExecutor",
    "FaultyLLM",
    "InjectedExecutionError",
    "LLMTimeoutError",
    "RETRYABLE",
    "ResilienceError",
    "ResilientLLM",
    "RetriesExhaustedError",
    "RetryPolicy",
    "TransientError",
    "TransientLLMError",
    "WRAPPED_LLM_METHODS",
    "categorize_failure",
    "classify_error",
    "stable_unit",
    "unwrap_llm",
]

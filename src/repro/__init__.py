"""GenEdit reproduction: enterprise Text-to-SQL with compounding operators
and continuous improvement (CIDR 2025).

Public API quick map:

* :class:`repro.GenEditPipeline` — the SQL generation pipeline (Fig. 1);
* :func:`repro.mine_knowledge_set` — pre-processing: logs + documents →
  knowledge set;
* :class:`repro.FeedbackSolver` — the continuous-improvement session
  (feedback → recommended edits → staging → regeneration → submission);
* :class:`repro.Database` / :class:`repro.Executor` — the SQL substrate;
* :mod:`repro.bench` — the BIRD-like benchmark and experiment harness;
* :mod:`repro.obs` — tracing (timed spans, JSONL export) and the
  process-wide metrics registry behind ``python -m repro trace``.
"""

from .engine import Column, Database, Executor, Result, execute_sql
from .feedback import (
    ApprovalQueue,
    FeedbackSolver,
    GoldenQuery,
    run_regression,
)
from .knowledge import (
    DecomposedExample,
    DomainDocument,
    GlossaryEntry,
    GuidelineEntry,
    Instruction,
    KnowledgeLibrary,
    KnowledgeSet,
    KnowledgeSetHistory,
    LoggedQuery,
    mine_knowledge_set,
)
from .pipeline import (
    DEFAULT_CONFIG,
    GenEditPipeline,
    GenerationResult,
    PipelineConfig,
)
from .obs import MetricsRegistry, Tracer, get_metrics
from .sql import format_sql, parse, to_sql

__version__ = "1.0.0"

__all__ = [
    "ApprovalQueue",
    "Column",
    "DEFAULT_CONFIG",
    "Database",
    "DecomposedExample",
    "DomainDocument",
    "Executor",
    "FeedbackSolver",
    "GenEditPipeline",
    "GenerationResult",
    "GlossaryEntry",
    "GoldenQuery",
    "GuidelineEntry",
    "Instruction",
    "KnowledgeLibrary",
    "KnowledgeSet",
    "KnowledgeSetHistory",
    "LoggedQuery",
    "MetricsRegistry",
    "PipelineConfig",
    "Result",
    "Tracer",
    "execute_sql",
    "format_sql",
    "get_metrics",
    "mine_knowledge_set",
    "parse",
    "run_regression",
    "to_sql",
    "__version__",
]

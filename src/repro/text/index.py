"""Retrieval index combining an inverted index with TF-IDF re-ranking.

:class:`RetrievalIndex` is the workhorse behind every knowledge-set
retrieval operator: documents (examples, instructions, schema elements) are
added with an id, text, and optional metadata; queries return the top-k ids
by cosine similarity, optionally restricted to a candidate subset (which is
how intent-keyed retrieval composes with similarity re-ranking).

The index pays its embedding cost once per refresh: each document's vector
*and* L2 norm are precomputed, the per-document token list is normalised a
single time (shared by the vectorizer fit, the document vector, and the
inverted index), and query-vector transforms are memoized until the next
mutation — so context-expansion re-ranks that reuse the same expanded query
text never re-embed it.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from .normalize import normalize
from .similarity import cosine_with_norms, l2_norm
from .vectorize import TfIdfVectorizer

logger = logging.getLogger(__name__)

#: Above this collection size, an empty inverted-index pre-filter no longer
#: falls back to scanning *every* document: the scan is capped (and logged)
#: so a single no-overlap query can't go quadratic on a large index.
FALLBACK_SCAN_CAP = 512

#: Memoized query transforms kept per index between mutations.
QUERY_CACHE_SIZE = 256


@dataclass
class Document:
    """An indexed document."""

    doc_id: str
    text: str
    metadata: dict = field(default_factory=dict)
    vector: dict = field(default_factory=dict)
    norm: float = 0.0


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result."""

    doc_id: str
    score: float
    document: Document


class RetrievalIndex:
    """Inverted index + vector re-ranking over a document collection."""

    def __init__(self):
        self._documents = {}
        self._inverted = {}
        self._vectorizer = TfIdfVectorizer()
        self._query_cache = {}
        self._dirty = False

    def __len__(self):
        return len(self._documents)

    def __contains__(self, doc_id):
        return doc_id in self._documents

    def add(self, doc_id, text, metadata=None):
        """Add (or replace) a document. Vectors refresh lazily on search."""
        self._documents[doc_id] = Document(
            doc_id=doc_id, text=text, metadata=dict(metadata or {})
        )
        self._dirty = True

    def remove(self, doc_id):
        self._documents.pop(doc_id, None)
        self._dirty = True

    def get(self, doc_id):
        return self._documents.get(doc_id)

    def documents(self):
        return list(self._documents.values())

    # -- search ----------------------------------------------------------

    def search(self, query, k=10, candidates=None, extra_text=""):
        """Top-k documents for ``query`` by cosine similarity.

        ``candidates`` restricts scoring to those ids (used for intent-keyed
        retrieval followed by re-ranking). ``extra_text`` is appended to the
        query before embedding — this implements the paper's *context
        expansion*, where previously selected knowledge (e.g. the chosen
        examples) expands the query used to re-rank the next component.
        """
        self._refresh()
        query_text = query if not extra_text else f"{query}\n{extra_text}"
        query_vector, query_norm = self._embed_query(query_text)
        pool = self._candidate_pool(query_text, candidates)
        hits = []
        for doc_id in pool:
            document = self._documents[doc_id]
            score = cosine_with_norms(
                query_vector, document.vector, query_norm, document.norm
            )
            hits.append(SearchHit(doc_id, score, document))
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:k]

    def score(self, query, doc_id):
        """Similarity of one document to ``query``."""
        self._refresh()
        document = self._documents.get(doc_id)
        if document is None:
            return 0.0
        query_vector, query_norm = self._embed_query(query)
        return cosine_with_norms(
            query_vector, document.vector, query_norm, document.norm
        )

    def _embed_query(self, query_text):
        """Memoized ``(vector, norm)`` for a query; valid until mutation."""
        cached = self._query_cache.get(query_text)
        if cached is not None:
            return cached
        vector = self._vectorizer.transform(query_text)
        entry = (vector, l2_norm(vector))
        if len(self._query_cache) >= QUERY_CACHE_SIZE:
            self._query_cache.clear()
        self._query_cache[query_text] = entry
        return entry

    def _candidate_pool(self, query_text, candidates):
        if candidates is not None:
            return [doc_id for doc_id in candidates if doc_id in self._documents]
        # Inverted-index pre-filter: documents sharing at least one term.
        terms = set(normalize(query_text))
        pool = set()
        for term in terms:
            pool.update(self._inverted.get(term, ()))
        if not pool:
            # Fall back to scanning the collection, but never unboundedly:
            # on a large index a no-overlap query would otherwise score
            # every document only to find nothing better than noise.
            if len(self._documents) > FALLBACK_SCAN_CAP:
                logger.warning(
                    "empty pre-filter for query %r: capping fallback scan "
                    "at %d of %d documents",
                    query_text[:80], FALLBACK_SCAN_CAP, len(self._documents),
                )
                return list(self._documents)[:FALLBACK_SCAN_CAP]
            return list(self._documents)
        return sorted(pool)

    def _refresh(self):
        if not self._dirty:
            return
        # One normalisation pass per document, shared by the vectorizer fit,
        # the document embedding, and the inverted index.
        tokens_by_doc = {
            doc_id: normalize(document.text)
            for doc_id, document in self._documents.items()
        }
        self._vectorizer = TfIdfVectorizer()
        for doc_id, document in self._documents.items():
            self._vectorizer.fit_one(document.text, tokens=tokens_by_doc[doc_id])
        self._inverted = {}
        for doc_id, document in self._documents.items():
            document.vector = self._vectorizer.transform(
                document.text, tokens=tokens_by_doc[doc_id]
            )
            document.norm = l2_norm(document.vector)
            for term in set(tokens_by_doc[doc_id]):
                self._inverted.setdefault(term, set()).add(doc_id)
        self._query_cache = {}
        self._dirty = False

"""Retrieval index combining an inverted index with TF-IDF re-ranking.

:class:`RetrievalIndex` is the workhorse behind every knowledge-set
retrieval operator: documents (examples, instructions, schema elements) are
added with an id, text, and optional metadata; queries return the top-k ids
by cosine similarity, optionally restricted to a candidate subset (which is
how intent-keyed retrieval composes with similarity re-ranking).

The index pays its embedding cost once per refresh: each document's vector
*and* L2 norm are precomputed, the per-document token and term lists are
normalised a single time and cached on the document (so refreshes after an
``add`` only re-tokenize the new documents), and query-vector transforms are
memoized until the next mutation — so context-expansion re-ranks that reuse
the same expanded query text never re-embed it.

Scoring is batched: a refresh also packs every document vector into a
term -> [(doc_id, weight)] postings table, and a search accumulates dot
products for the whole candidate pool in one pass over the query's terms
instead of one sparse-dict intersection per document. The accumulation
visits exactly the nonzero terms the per-document cosine would, in the same
order, so scores are bit-identical to :func:`cosine_with_norms` — documents
with fewer terms than the query (where that helper iterates the document
side instead) are scored individually the legacy way.
"""

from __future__ import annotations

import logging
import threading
from collections import Counter
from dataclasses import dataclass, field

from .normalize import normalize
from .similarity import cosine_with_norms, l2_norm
from .vectorize import TfIdfVectorizer

logger = logging.getLogger(__name__)

#: Above this collection size, an empty inverted-index pre-filter no longer
#: falls back to scanning *every* document: the scan is capped (and logged)
#: so a single no-overlap query can't go quadratic on a large index.
FALLBACK_SCAN_CAP = 512

#: Memoized query transforms kept per index between mutations.
QUERY_CACHE_SIZE = 256

#: Serialises lazy refreshes. Module-level (not per-instance) so indexes
#: cloned via ``KnowledgeSet.clone()``/snapshot-restore need no lock
#: plumbing; refreshes are rare (warmup and post-edit), so one process-wide
#: lock costs nothing while guaranteeing two concurrent first searches
#: can't both rebuild and interleave partially-built postings tables.
_REFRESH_LOCK = threading.Lock()


@dataclass
class Document:
    """An indexed document."""

    doc_id: str
    text: str
    metadata: dict = field(default_factory=dict)
    vector: dict = field(default_factory=dict)
    norm: float = 0.0
    tokens: list = None
    terms: list = None
    term_counts: dict = None


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result."""

    doc_id: str
    score: float
    document: Document


class RetrievalIndex:
    """Inverted index + vector re-ranking over a document collection."""

    def __init__(self):
        self._documents = {}
        self._inverted = {}
        self._postings = {}
        self._vectorizer = TfIdfVectorizer()
        self._query_cache = {}
        self._dirty = False
        self._fallback_warned = False

    def __len__(self):
        return len(self._documents)

    def __contains__(self, doc_id):
        return doc_id in self._documents

    def add(self, doc_id, text, metadata=None):
        """Add (or replace) a document. Vectors refresh lazily on search."""
        self._documents[doc_id] = Document(
            doc_id=doc_id, text=text, metadata=dict(metadata or {})
        )
        self._dirty = True

    def remove(self, doc_id):
        self._documents.pop(doc_id, None)
        self._dirty = True

    def get(self, doc_id):
        return self._documents.get(doc_id)

    def documents(self):
        return list(self._documents.values())

    # -- search ----------------------------------------------------------

    def search(self, query, k=10, candidates=None, extra_text=""):
        """Top-k documents for ``query`` by cosine similarity.

        ``candidates`` restricts scoring to those ids (used for intent-keyed
        retrieval followed by re-ranking). ``extra_text`` is appended to the
        query before embedding — this implements the paper's *context
        expansion*, where previously selected knowledge (e.g. the chosen
        examples) expands the query used to re-rank the next component.
        """
        self._refresh()
        query_text = query if not extra_text else f"{query}\n{extra_text}"
        query_vector, query_norm, query_terms = self._embed_query(query_text)
        pool = self._candidate_pool(query_text, candidates, query_terms)
        scores = self._batched_scores(query_vector, query_norm, pool)
        # Rank plain (−score, id) tuples and only build SearchHit objects
        # for the k survivors — the pool is often much larger than k.
        ranked = sorted((-scores[doc_id], doc_id) for doc_id in pool)
        return [
            SearchHit(doc_id, -negated, self._documents[doc_id])
            for negated, doc_id in ranked[:k]
        ]

    def score(self, query, doc_id):
        """Similarity of one document to ``query``."""
        self._refresh()
        document = self._documents.get(doc_id)
        if document is None:
            return 0.0
        query_vector, query_norm, _terms = self._embed_query(query)
        return cosine_with_norms(
            query_vector, document.vector, query_norm, document.norm
        )

    def _batched_scores(self, query_vector, query_norm, pool):
        """Cosine scores for every doc in ``pool``, one postings pass.

        Bit-identical to per-document :func:`cosine_with_norms`: that
        helper iterates the smaller of the two sparse dicts, so documents
        at least as large as the query accumulate query-term order dot
        products here (skipped zero terms contribute exactly ``+0.0``),
        and strictly smaller documents fall back to the per-document call.
        """
        scores = {}
        accumulating = {}
        query_len = len(query_vector)
        for doc_id in pool:
            document = self._documents[doc_id]
            if (
                not query_vector
                or not document.vector
                or query_norm == 0
                or document.norm == 0
            ):
                scores[doc_id] = 0.0
            elif len(document.vector) < query_len:
                scores[doc_id] = cosine_with_norms(
                    query_vector, document.vector, query_norm, document.norm
                )
            else:
                accumulating[doc_id] = 0
        if accumulating:
            if len(accumulating) <= 24:
                # Candidate-restricted pools: a postings pass would touch
                # every indexed document sharing a query term, almost all
                # outside the pool. Per-document products in query-term
                # order accumulate identically (each skipped posting is an
                # exact ``+0.0``), so this is the same score bit-for-bit.
                for doc_id in accumulating:
                    document = self._documents[doc_id]
                    get = document.vector.get
                    dot = sum([
                        query_weight * get(term, 0.0)
                        for term, query_weight in query_vector.items()
                    ])
                    scores[doc_id] = dot / (query_norm * document.norm)
            else:
                postings = self._postings
                for term, query_weight in query_vector.items():
                    for doc_id, doc_weight in postings.get(term, ()):
                        if doc_id in accumulating:
                            accumulating[doc_id] += query_weight * doc_weight
                for doc_id, dot in accumulating.items():
                    scores[doc_id] = dot / (
                        query_norm * self._documents[doc_id].norm
                    )
        return scores

    def _embed_query(self, query_text):
        """Memoized ``(vector, norm, term set)``; valid until mutation."""
        cached = self._query_cache.get(query_text)
        if cached is not None:
            return cached
        tokens = normalize(query_text)
        vector = self._vectorizer.transform(query_text, tokens=tokens)
        entry = (vector, l2_norm(vector), set(tokens))
        if len(self._query_cache) >= QUERY_CACHE_SIZE:
            self._query_cache.clear()
        self._query_cache[query_text] = entry
        return entry

    def _candidate_pool(self, query_text, candidates, query_terms=None):
        if candidates is not None:
            return [doc_id for doc_id in candidates if doc_id in self._documents]
        # Inverted-index pre-filter: documents sharing at least one term.
        if query_terms is None:
            query_terms = set(normalize(query_text))
        pool = set()
        for term in query_terms:
            pool.update(self._inverted.get(term, ()))
        if not pool:
            # Fall back to scanning the collection, but never unboundedly:
            # on a large index a no-overlap query would otherwise score
            # every document only to find nothing better than noise.
            if len(self._documents) > FALLBACK_SCAN_CAP:
                if not self._fallback_warned:
                    self._fallback_warned = True
                    logger.warning(
                        "empty pre-filter for query %r: capping fallback "
                        "scan at %d of %d documents (repeats suppressed "
                        "until the next index refresh)",
                        query_text[:80], FALLBACK_SCAN_CAP,
                        len(self._documents),
                    )
                return list(self._documents)[:FALLBACK_SCAN_CAP]
            return list(self._documents)
        return sorted(pool)

    def _refresh(self):
        if not self._dirty:
            return
        with _REFRESH_LOCK:
            # Double-check: a concurrent searcher may have finished the
            # rebuild while this thread waited on the lock.
            if not self._dirty:
                return
            self._do_refresh()

    def _do_refresh(self):
        # One normalisation pass per document, cached on the document so a
        # refresh triggered by adding a handful of documents only pays to
        # tokenize those; the token list is shared by the vectorizer fit,
        # the document embedding, and the inverted index. Built into
        # locals and published by attribute assignment, so readers that
        # raced past the dirty check see either the old complete tables or
        # the new ones — never a half-built postings list.
        vectorizer = TfIdfVectorizer()
        for document in self._documents.values():
            if document.tokens is None:
                document.tokens = normalize(document.text)
                document.terms = vectorizer.terms_for(
                    document.text, tokens=document.tokens
                )
                document.term_counts = Counter(document.terms)
            vectorizer.fit_one(document.text, terms=document.terms)
        inverted = {}
        postings = {}
        for doc_id, document in self._documents.items():
            document.vector = vectorizer.transform(
                document.text, counts=document.term_counts
            )
            document.norm = l2_norm(document.vector)
            for term in set(document.tokens):
                inverted.setdefault(term, set()).add(doc_id)
            for term, weight in document.vector.items():
                postings.setdefault(term, []).append((doc_id, weight))
        self._vectorizer = vectorizer
        self._inverted = inverted
        self._postings = postings
        self._query_cache = {}
        self._dirty = False
        self._fallback_warned = False

"""Retrieval index combining an inverted index with TF-IDF re-ranking.

:class:`RetrievalIndex` is the workhorse behind every knowledge-set
retrieval operator: documents (examples, instructions, schema elements) are
added with an id, text, and optional metadata; queries return the top-k ids
by cosine similarity, optionally restricted to a candidate subset (which is
how intent-keyed retrieval composes with similarity re-ranking).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .normalize import normalize
from .similarity import cosine
from .vectorize import TfIdfVectorizer


@dataclass
class Document:
    """An indexed document."""

    doc_id: str
    text: str
    metadata: dict = field(default_factory=dict)
    vector: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result."""

    doc_id: str
    score: float
    document: Document


class RetrievalIndex:
    """Inverted index + vector re-ranking over a document collection."""

    def __init__(self):
        self._documents = {}
        self._inverted = {}
        self._vectorizer = TfIdfVectorizer()
        self._dirty = False

    def __len__(self):
        return len(self._documents)

    def __contains__(self, doc_id):
        return doc_id in self._documents

    def add(self, doc_id, text, metadata=None):
        """Add (or replace) a document. Vectors refresh lazily on search."""
        self._documents[doc_id] = Document(
            doc_id=doc_id, text=text, metadata=dict(metadata or {})
        )
        self._dirty = True

    def remove(self, doc_id):
        self._documents.pop(doc_id, None)
        self._dirty = True

    def get(self, doc_id):
        return self._documents.get(doc_id)

    def documents(self):
        return list(self._documents.values())

    # -- search ----------------------------------------------------------

    def search(self, query, k=10, candidates=None, extra_text=""):
        """Top-k documents for ``query`` by cosine similarity.

        ``candidates`` restricts scoring to those ids (used for intent-keyed
        retrieval followed by re-ranking). ``extra_text`` is appended to the
        query before embedding — this implements the paper's *context
        expansion*, where previously selected knowledge (e.g. the chosen
        examples) expands the query used to re-rank the next component.
        """
        self._refresh()
        query_text = query if not extra_text else f"{query}\n{extra_text}"
        query_vector = self._vectorizer.transform(query_text)
        pool = self._candidate_pool(query_text, candidates)
        hits = []
        for doc_id in pool:
            document = self._documents[doc_id]
            score = cosine(query_vector, document.vector)
            hits.append(SearchHit(doc_id, score, document))
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:k]

    def score(self, query, doc_id):
        """Similarity of one document to ``query``."""
        self._refresh()
        document = self._documents.get(doc_id)
        if document is None:
            return 0.0
        return cosine(self._vectorizer.transform(query), document.vector)

    def _candidate_pool(self, query_text, candidates):
        if candidates is not None:
            return [doc_id for doc_id in candidates if doc_id in self._documents]
        # Inverted-index pre-filter: documents sharing at least one term.
        terms = set(normalize(query_text))
        pool = set()
        for term in terms:
            pool.update(self._inverted.get(term, ()))
        if not pool:  # fall back to scanning everything (small collections)
            return list(self._documents)
        return sorted(pool)

    def _refresh(self):
        if not self._dirty:
            return
        self._vectorizer = TfIdfVectorizer()
        self._vectorizer.fit(
            document.text for document in self._documents.values()
        )
        self._inverted = {}
        for doc_id, document in self._documents.items():
            document.vector = self._vectorizer.transform(document.text)
            for term in set(normalize(document.text)):
                self._inverted.setdefault(term, set()).add(doc_id)
        self._dirty = False

"""Similarity measures over sparse vectors and token sets."""

from __future__ import annotations

import math


def l2_norm(vector):
    """Euclidean norm of a sparse dict (0.0 when empty)."""
    # sum() over a list is faster than over a generator and adds in the
    # same order, so the result is bit-identical.
    return math.sqrt(sum([value * value for value in vector.values()]))


def cosine(left, right):
    """Cosine similarity of two sparse dicts (0.0 when either is empty)."""
    if not left or not right:
        return 0.0
    # Vectors from TfIdfVectorizer.transform are already L2-normalised, but
    # recompute defensively so raw count dicts also work.
    return cosine_with_norms(left, right, l2_norm(left), l2_norm(right))


def cosine_with_norms(left, right, left_norm, right_norm):
    """Cosine similarity with both norms supplied by the caller.

    The norm of an indexed document never changes between refreshes, and a
    query's norm is fixed for the whole candidate scan — precomputing both
    turns the per-candidate cost into a single sparse dot product.
    """
    if not left or not right or left_norm == 0 or right_norm == 0:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    get = right.get
    dot = sum([value * get(term, 0.0) for term, value in left.items()])
    return dot / (left_norm * right_norm)


def jaccard(left, right):
    """Jaccard similarity of two iterables treated as sets."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 0.0
    union = left_set | right_set
    return len(left_set & right_set) / len(union)


def overlap_coefficient(left, right):
    """Szymkiewicz–Simpson overlap: |A∩B| / min(|A|,|B|)."""
    left_set, right_set = set(left), set(right)
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / min(len(left_set), len(right_set))

"""Natural-language normalisation: tokenisation, stopwords, light stemming.

This feeds the retrieval substrate (TF-IDF vectors, inverted index). The
stemmer is a deliberately small suffix-stripper — enough to unify
"organizations"/"organization" and "viewers"/"viewer" for cosine re-ranking
without dragging in a full Porter implementation.
"""

from __future__ import annotations

import re

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9_%']+")

#: Common English stopwords plus query-boilerplate words that carry no
#: retrieval signal in Text-to-SQL questions ("show", "me", "please").
STOPWORDS = frozenset(
    """
    a an and are as at be but by for from had has have i in into is it its
    me my of on or please s show so than that the their them then there
    these they this to was we were what when where which who will with you
    your give list find tell display
    """.split()
)

_SUFFIXES = ("ations", "ation", "ingly", "ities", "ying", "ies", "ing",
             "ers", "edly", "ed", "es", "ly", "s")


def tokenize_text(text):
    """Lower-case word tokens of ``text`` (apostrophes kept inside words)."""
    return [match.group(0).lower() for match in _TOKEN_PATTERN.finditer(text)]


_ES_PLURAL = re.compile(r"(ss|x|z|ch|sh)es$")

#: Word -> stem memo. The vocabulary across questions, documents, and schema
#: texts is small and heavily repeated, while stemming walks a suffix table
#: per call — cache the verdict per distinct word.
_STEM_CACHE = {}
_STEM_CACHE_CAP = 16384


def stem(token):
    """Strip one common suffix, keeping at least 3 leading characters."""
    cached = _STEM_CACHE.get(token)
    if cached is not None:
        return cached
    stemmed = _stem_uncached(token)
    if len(_STEM_CACHE) >= _STEM_CACHE_CAP:
        _STEM_CACHE.clear()
    _STEM_CACHE[token] = stemmed
    return stemmed


def _stem_uncached(token):
    if token.endswith("uses") and len(token) >= 6:
        return token[:-2]  # statuses -> status, campuses -> campus
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            if suffix == "es" and not _ES_PLURAL.search(token):
                # 'leagues' -> 'league' (plain plural), not 'leagu'.
                continue
            if suffix == "s" and token.endswith("us"):
                continue  # 'status' is not a plural
            base = token[: len(token) - len(suffix)]
            if suffix in ("ies", "ying"):
                base += "y"
            return base
    return token


#: Memoized normalisations. normalize() is pure and its callers hammer the
#: same texts (every schema element per question, every indexed document per
#: refresh), so the token pipeline runs once per distinct text. Values are
#: tuples; callers get a fresh list each time so mutation stays safe.
_NORMALIZE_CACHE = {}
_NORMALIZE_CACHE_CAP = 8192


def normalize(text, remove_stopwords=True, apply_stem=True):
    """Full pipeline: tokenize, drop stopwords, stem. Returns token list."""
    key = (text, remove_stopwords, apply_stem)
    cached = _NORMALIZE_CACHE.get(key)
    if cached is not None:
        return list(cached)
    tokens = tokenize_text(text)
    if remove_stopwords:
        tokens = [token for token in tokens if token not in STOPWORDS]
    if apply_stem:
        tokens = [stem(token) for token in tokens]
    if len(_NORMALIZE_CACHE) >= _NORMALIZE_CACHE_CAP:
        _NORMALIZE_CACHE.clear()
    _NORMALIZE_CACHE[key] = tuple(tokens)
    return tokens


def ngrams(tokens, n=2):
    """Contiguous n-grams of a token list (joined with underscores)."""
    if len(tokens) < n:
        return []
    return [
        "_".join(tokens[index:index + n])
        for index in range(len(tokens) - n + 1)
    ]


def char_ngrams(text, n=3):
    """Character n-grams of the squashed text; robust to word-form noise."""
    squashed = re.sub(r"\s+", " ", text.lower()).strip()
    if len(squashed) < n:
        return [squashed] if squashed else []
    return [squashed[index:index + n] for index in range(len(squashed) - n + 1)]

"""Sparse TF-IDF vectorisation.

This is the reproduction's stand-in for the embedding model behind the
paper's cosine-similarity re-ranking (§3.1.1). Vectors are sparse dicts
(term -> weight) combining word unigrams, word bigrams, and character
trigrams, so both lexical and fuzzy matches contribute. The vectoriser is
fit once over a corpus (the knowledge set) and then embeds queries against
that corpus's document frequencies — mirroring how a fixed embedding model
is applied to both sides.
"""

from __future__ import annotations

import math
import threading
from collections import Counter

from .normalize import char_ngrams, ngrams, normalize

#: Memoized term lists keyed by (text, bigram flag, char-ngram flag). Term
#: extraction is pure and the same text crosses several vectorizers (one
#: question embeds against the example, instruction, and schema indexes; a
#: mined document is fit and then transformed), so share the expansion.
#: Values are tuples — treat them as immutable. Lock-free reads are safe
#: (dict.get is atomic and values never mutate); the insert path takes
#: _TERMS_LOCK so a cap-triggered clear can't interleave with a store.
_TERMS_CACHE = {}
_TERMS_CACHE_CAP = 8192
_TERMS_LOCK = threading.Lock()


class TfIdfVectorizer:
    """Fit on a corpus of texts; transform texts to sparse weight dicts."""

    def __init__(self, use_bigrams=True, use_char_ngrams=True):
        self.use_bigrams = use_bigrams
        self.use_char_ngrams = use_char_ngrams
        self._document_frequency = Counter()
        self._document_count = 0
        self._idf_by_frequency = {}

    # -- fitting ----------------------------------------------------------

    def fit(self, texts):
        """Accumulate document frequencies from ``texts``. Returns self."""
        for text in texts:
            self.fit_one(text)
        return self

    def fit_one(self, text, tokens=None, terms=None):
        """Accumulate document frequencies from one text. Returns self.

        ``tokens`` is an optional precomputed ``normalize(text)`` result so
        callers that already tokenized the text (the retrieval index does,
        for its inverted index) don't pay for normalisation twice; ``terms``
        goes further and supplies the full term list (tokens + n-grams).
        """
        self._document_count += 1
        self._idf_by_frequency = {}
        for term in set(self._terms(text, tokens, terms)):
            self._document_frequency[term] += 1
        return self

    @property
    def is_fitted(self):
        return self._document_count > 0

    # -- transforming ----------------------------------------------------------

    def transform(self, text, tokens=None, terms=None, counts=None):
        """Embed ``text`` as a sparse, L2-normalised TF-IDF dict.

        ``tokens`` optionally carries a precomputed ``normalize(text)``;
        ``terms`` a precomputed full term list; ``counts`` a precomputed
        ``Counter`` of that term list (re-transforms after a refresh reuse
        it — only the IDF side changes between refreshes).
        """
        if counts is None:
            counts = Counter(self._terms(text, tokens, terms))
        if not counts:
            return {}
        # Inlined :meth:`_idf` — transform dominates refresh cost and the
        # method-call overhead is measurable at ~100 weights per document.
        # ``count == 1`` (the common case) makes the TF factor exactly 1.0,
        # so the weight is the IDF itself, bit-for-bit.
        document_frequency = self._document_frequency
        idf_by_frequency = self._idf_by_frequency
        log = math.log
        numerator = 1 + self._document_count
        vector = {}
        for term, count in counts.items():
            frequency = document_frequency.get(term, 0)
            idf = idf_by_frequency.get(frequency)
            if idf is None:
                idf = log(numerator / (1 + frequency)) + 1.0
                idf_by_frequency[frequency] = idf
            weight = idf if count == 1 else (1.0 + log(count)) * idf
            if weight > 0:
                vector[term] = weight
        norm = math.sqrt(sum([value * value for value in vector.values()]))
        if norm == 0:
            return {}
        # Normalise in place: ``vector`` is freshly built above, so no
        # caller-visible dict is mutated and each division is the same
        # ``value / norm`` the rebuild would compute.
        for term in vector:
            vector[term] /= norm
        return vector

    def _idf(self, term):
        # Smoothed IDF; unseen terms get the maximum weight so novel
        # domain words (e.g. 'qoqfp') dominate similarity when present.
        # Only the document frequency varies per term, so the log is
        # computed once per distinct frequency (reset whenever fitting
        # another document changes the count).
        frequency = self._document_frequency.get(term, 0)
        weight = self._idf_by_frequency.get(frequency)
        if weight is None:
            weight = math.log(
                (1 + self._document_count) / (1 + frequency)
            ) + 1.0
            self._idf_by_frequency[frequency] = weight
        return weight

    def terms_for(self, text, tokens=None):
        """The full term list (tokens + n-grams) this vectorizer would use.

        Callers that index many documents cache this per document and feed
        it back through ``fit_one(terms=...)`` / ``transform(terms=...)``.
        """
        return self._terms(text, tokens)

    def _terms(self, text, tokens=None, terms=None):
        if terms is not None:
            return terms
        key = (text, self.use_bigrams, self.use_char_ngrams)
        cached = _TERMS_CACHE.get(key)
        if cached is not None:
            return cached
        if tokens is None:
            tokens = normalize(text)
        terms = list(tokens)
        if self.use_bigrams:
            terms.extend(ngrams(tokens, 2))
        if self.use_char_ngrams:
            terms.extend(char_ngrams(text, 3))
        with _TERMS_LOCK:
            if len(_TERMS_CACHE) >= _TERMS_CACHE_CAP:
                _TERMS_CACHE.clear()
            _TERMS_CACHE[key] = tuple(terms)
        return terms

"""Sparse TF-IDF vectorisation.

This is the reproduction's stand-in for the embedding model behind the
paper's cosine-similarity re-ranking (§3.1.1). Vectors are sparse dicts
(term -> weight) combining word unigrams, word bigrams, and character
trigrams, so both lexical and fuzzy matches contribute. The vectoriser is
fit once over a corpus (the knowledge set) and then embeds queries against
that corpus's document frequencies — mirroring how a fixed embedding model
is applied to both sides.
"""

from __future__ import annotations

import math
from collections import Counter

from .normalize import char_ngrams, ngrams, normalize


class TfIdfVectorizer:
    """Fit on a corpus of texts; transform texts to sparse weight dicts."""

    def __init__(self, use_bigrams=True, use_char_ngrams=True):
        self.use_bigrams = use_bigrams
        self.use_char_ngrams = use_char_ngrams
        self._document_frequency = Counter()
        self._document_count = 0

    # -- fitting ----------------------------------------------------------

    def fit(self, texts):
        """Accumulate document frequencies from ``texts``. Returns self."""
        for text in texts:
            self.fit_one(text)
        return self

    def fit_one(self, text, tokens=None):
        """Accumulate document frequencies from one text. Returns self.

        ``tokens`` is an optional precomputed ``normalize(text)`` result so
        callers that already tokenized the text (the retrieval index does,
        for its inverted index) don't pay for normalisation twice.
        """
        self._document_count += 1
        for term in set(self._terms(text, tokens)):
            self._document_frequency[term] += 1
        return self

    @property
    def is_fitted(self):
        return self._document_count > 0

    # -- transforming ----------------------------------------------------------

    def transform(self, text, tokens=None):
        """Embed ``text`` as a sparse, L2-normalised TF-IDF dict.

        ``tokens`` optionally carries a precomputed ``normalize(text)``.
        """
        counts = Counter(self._terms(text, tokens))
        if not counts:
            return {}
        vector = {}
        for term, count in counts.items():
            weight = (1.0 + math.log(count)) * self._idf(term)
            if weight > 0:
                vector[term] = weight
        norm = math.sqrt(sum(value * value for value in vector.values()))
        if norm == 0:
            return {}
        return {term: value / norm for term, value in vector.items()}

    def _idf(self, term):
        # Smoothed IDF; unseen terms get the maximum weight so novel
        # domain words (e.g. 'qoqfp') dominate similarity when present.
        frequency = self._document_frequency.get(term, 0)
        return math.log((1 + self._document_count) / (1 + frequency)) + 1.0

    def _terms(self, text, tokens=None):
        if tokens is None:
            tokens = normalize(text)
        terms = list(tokens)
        if self.use_bigrams:
            terms.extend(ngrams(tokens, 2))
        if self.use_char_ngrams:
            terms.extend(char_ngrams(text, 3))
        return terms

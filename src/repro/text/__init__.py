"""Text substrate: normalisation, TF-IDF vectors, similarity, retrieval."""

from .index import Document, RetrievalIndex, SearchHit
from .normalize import char_ngrams, ngrams, normalize, stem, tokenize_text
from .similarity import cosine, cosine_with_norms, jaccard, l2_norm, overlap_coefficient
from .vectorize import TfIdfVectorizer

__all__ = [
    "Document",
    "RetrievalIndex",
    "SearchHit",
    "TfIdfVectorizer",
    "char_ngrams",
    "cosine",
    "cosine_with_norms",
    "jaccard",
    "l2_norm",
    "ngrams",
    "normalize",
    "overlap_coefficient",
    "stem",
    "tokenize_text",
]

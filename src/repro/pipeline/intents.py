"""Operator #2: intent classification (§3.1.1).

User intents were mined in pre-processing; this operator assigns the
question to its top intents. The classified intents key the example and
instruction retrieval that follows — the first link of the compounding
chain.
"""

from __future__ import annotations

from .base import Operator


class IntentClassificationOperator(Operator):
    name = "classify_intents"

    def __init__(self, llm):
        self._llm = llm

    def run(self, context):
        if not context.config.use_intent_classification:
            context.intent_ids = []
            context.add_trace(self.name, "disabled")
            return context
        context.intent_ids = self._llm.classify_intents(
            context.reformulated,
            context.knowledge,
            k=context.config.intent_top_k,
            meter=context.meter,
        )
        names = [
            context.knowledge.intent(intent_id).name
            for intent_id in context.intent_ids
            if context.knowledge.intent(intent_id)
        ]
        context.add_trace(self.name, f"intents: {names}")
        return context

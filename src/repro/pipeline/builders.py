"""Render a :class:`~repro.pipeline.spec.QuerySpec` to SQL.

One builder per query shape. The workload uses these to produce gold SQL;
the generation operator uses them to produce candidate SQL from the spec it
recovered. All output parses with :func:`repro.sql.parse` (enforced by the
builder tests), so any generation failure is a *meaning* failure, not a
syntax accident — unless an ablation deliberately degrades the builder
(e.g. the no-pseudo-SQL fallbacks in the generation operator).
"""

from __future__ import annotations

from .spec import (
    QuerySpec,
    SHAPE_RATIO_DELTA_RANK,
    SHAPE_SHARE_OF_TOTAL,
    SHAPE_STANDARD,
    SHAPE_TOPK_BOTH_ENDS,
    sql_literal,
)


def build_sql(spec: QuerySpec):
    """Render ``spec`` to SQL text."""
    builder = _BUILDERS.get(spec.shape)
    if builder is None:
        raise ValueError(f"Unknown query shape {spec.shape!r}")
    return builder(spec)


# ---------------------------------------------------------------------------
# shared pieces
# ---------------------------------------------------------------------------


def _from_clause(spec):
    parts = [f"FROM {spec.base_table}"]
    for join in spec.joins:
        parts.append(
            f"JOIN {join.table} ON {spec.base_table}.{join.left_column} = "
            f"{join.table}.{join.right_column}"
        )
    return " ".join(parts)


def _where_clause(spec):
    conditions = [flt.render() for flt in spec.filters]
    conditions.extend(qf.render() for qf in spec.quarter_filters)
    if not conditions:
        return ""
    return "WHERE " + " AND ".join(conditions)


def _metric_select_list(spec):
    rendered = []
    for metric in spec.metrics:
        rendered.append(f"{metric.render()} AS {metric.alias}")
    return rendered


def _group_clause(spec):
    if not spec.group_by:
        return ""
    return "GROUP BY " + ", ".join(spec.group_by)


def _having_clause(spec):
    if not spec.having:
        return ""
    conditions = []
    for having in spec.having:
        metric = spec.metrics[having.metric_index]
        conditions.append(
            f"{metric.render()} {having.op} {sql_literal(having.value)}"
        )
    return "HAVING " + " AND ".join(conditions)


def _order_clause(spec):
    order = spec.order
    if order is None:
        return ""
    if order.metric_index is not None:
        key = spec.metrics[order.metric_index].alias
    else:
        key = order.column
    direction = "DESC" if order.descending else "ASC"
    clause = f"ORDER BY {key} {direction}"
    if order.limit is not None:
        clause += f" LIMIT {order.limit}"
    return clause


def _join_parts(*parts):
    return " ".join(part for part in parts if part)


# ---------------------------------------------------------------------------
# standard shape
# ---------------------------------------------------------------------------


def build_standard(spec):
    """Plain SELECT: projection + metrics, filters, grouping, ordering."""
    select_list = list(spec.projection) + _metric_select_list(spec)
    if not select_list:
        select_list = ["*"]
    distinct = "DISTINCT " if spec.distinct else ""
    return _join_parts(
        f"SELECT {distinct}{', '.join(select_list)}",
        _from_clause(spec),
        _where_clause(spec),
        _group_clause(spec),
        _having_clause(spec),
        _order_clause(spec),
    )


# ---------------------------------------------------------------------------
# top-k both ends
# ---------------------------------------------------------------------------


def build_topk_both_ends(spec):
    """Rank groups by the first metric from both ends; keep best/worst k.

    The idiom from the paper's Appendix A final stage: two ROW_NUMBER
    rankings (DESC and ASC) with ``WHERE best <= k OR worst <= k``.
    """
    order = spec.order
    metric = spec.metrics[0]
    k = order.limit if order and order.limit else 5
    entity = ", ".join(spec.group_by)
    inner = _join_parts(
        f"SELECT {entity}, {metric.render()} AS {metric.alias}",
        _from_clause(spec),
        _where_clause(spec),
        _group_clause(spec),
        _having_clause(spec),
    )
    ranked = (
        f"SELECT {entity}, {metric.alias}, "
        f"ROW_NUMBER() OVER (ORDER BY {metric.alias} DESC) AS BEST_RANK, "
        f"ROW_NUMBER() OVER (ORDER BY {metric.alias} ASC) AS WORST_RANK "
        f"FROM GROUPED"
    )
    if order is not None and order.both_ends:
        keep = f"BEST_RANK <= {k} OR WORST_RANK <= {k}"
    elif order is not None and not order.descending:
        keep = f"WORST_RANK <= {k}"
    else:
        keep = f"BEST_RANK <= {k}"
    return (
        f"WITH GROUPED AS ({inner}), "
        f"RANKED AS ({ranked}) "
        f"SELECT {entity}, {metric.alias}, BEST_RANK FROM RANKED "
        f"WHERE {keep} ORDER BY BEST_RANK"
    )


# ---------------------------------------------------------------------------
# share of total
# ---------------------------------------------------------------------------


def build_share_of_total(spec):
    """Per-group metric plus its share of the grand total."""
    metric = spec.metrics[0]
    entity = ", ".join(spec.group_by)
    inner = _join_parts(
        f"SELECT {entity}, {metric.render()} AS {metric.alias}",
        _from_clause(spec),
        _where_clause(spec),
        _group_clause(spec),
        _having_clause(spec),
    )
    limit = ""
    if spec.order is not None and spec.order.limit is not None:
        limit = f" LIMIT {spec.order.limit}"
    return (
        f"WITH TOTALS AS ({inner}) "
        f"SELECT {entity}, {metric.alias}, "
        f"CAST({metric.alias} AS FLOAT) / "
        f"NULLIF(SUM({metric.alias}) OVER (), 0) AS SHARE "
        f"FROM TOTALS ORDER BY SHARE DESC{limit}"
    )


# ---------------------------------------------------------------------------
# ratio delta rank (the QoQFP shape, Appendix A)
# ---------------------------------------------------------------------------


def _pivot_cte(name, table, entity, date_column, value_column,
               previous_label, current_label, filters):
    mask = "'YYYY\"Q\"Q'"
    conditions = [
        f"TO_CHAR({date_column}, {mask}) IN "
        f"('{previous_label}', '{current_label}')"
    ]
    conditions.extend(flt.render() for flt in filters)
    where = " AND ".join(conditions)
    return (
        f"{name} AS (SELECT {entity}, "
        f"SUM(CASE WHEN TO_CHAR({date_column}, {mask}) = "
        f"'{previous_label}' THEN {value_column} ELSE 0 END) AS PREV_VALUE, "
        f"SUM(CASE WHEN TO_CHAR({date_column}, {mask}) = "
        f"'{current_label}' THEN {value_column} ELSE 0 END) AS CUR_VALUE "
        f"FROM {table} WHERE {where} GROUP BY {entity})"
    )


def build_ratio_delta_rank(spec):
    """The Appendix-A shape: quarter pivots, safe ratio, change, dual rank.

    With a denominator: metric = numerator/denominator per quarter (e.g.
    revenue per viewer); without: metric = the plain numerator pivot. The
    change ``current − previous`` is optionally negated (the "-1 multiplier"
    rule) and entities are ranked from both ends.
    """
    params = spec.ratio_delta
    entity = params.entity_column
    previous, current = params.previous_label, params.current_label
    ctes = [
        _pivot_cte(
            "NUMER", params.numerator_table, entity,
            params.numerator_date_column, params.numerator_value_column,
            previous, current, params.numerator_filters,
        )
    ]
    if params.denominator_table:
        ctes.append(
            _pivot_cte(
                "DENOM", params.denominator_table, entity,
                params.denominator_date_column,
                params.denominator_value_column,
                previous, current, params.denominator_filters,
            )
        )
        cur_metric = "CAST(n.CUR_VALUE AS FLOAT) / NULLIF(d.CUR_VALUE, 0)"
        prev_metric = "CAST(n.PREV_VALUE AS FLOAT) / NULLIF(d.PREV_VALUE, 0)"
        delta_from = f"FROM NUMER n JOIN DENOM d ON n.{entity} = d.{entity}"
        entity_ref = f"n.{entity}"
    else:
        cur_metric = "CAST(n.CUR_VALUE AS FLOAT)"
        prev_metric = "CAST(n.PREV_VALUE AS FLOAT)"
        delta_from = "FROM NUMER n"
        entity_ref = f"n.{entity}"
    change = f"({cur_metric}) - ({prev_metric})"
    if params.negate:
        change = f"-1 * ({change})"
    delta = (
        f"DELTA AS (SELECT {entity_ref} AS {entity}, "
        f"{cur_metric} AS CURRENT_METRIC, "
        f"{prev_metric} AS PREVIOUS_METRIC, "
        f"{change} AS METRIC_CHANGE, "
        f"ROW_NUMBER() OVER (ORDER BY {change} DESC) AS BEST_RANK, "
        f"ROW_NUMBER() OVER (ORDER BY {change} ASC) AS WORST_RANK "
        f"{delta_from})"
    )
    ctes.append(delta)
    if params.both_ends:
        keep = f"BEST_RANK <= {params.k} OR WORST_RANK <= {params.k}"
    else:
        keep = f"BEST_RANK <= {params.k}"
    return (
        "WITH " + ", ".join(ctes) + " "
        f"SELECT {entity}, CURRENT_METRIC, PREVIOUS_METRIC, METRIC_CHANGE, "
        f"BEST_RANK FROM DELTA WHERE {keep} ORDER BY BEST_RANK"
    )


_BUILDERS = {
    SHAPE_STANDARD: build_standard,
    SHAPE_TOPK_BOTH_ENDS: build_topk_both_ends,
    SHAPE_SHARE_OF_TOTAL: build_share_of_total,
    SHAPE_RATIO_DELTA_RANK: build_ratio_delta_rank,
}

"""Pipeline configuration and ablation knobs.

Each flag corresponds to a row of the paper's Table 2 ablation study; the
retrieval depths and context budget control the compounding-operator
behaviour; ``max_retries`` is the self-correction bound ``k`` from §3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the GenEdit generation pipeline."""

    # Ablation switches (Table 2).
    use_schema_linking: bool = True
    use_instructions: bool = True
    use_examples: bool = True
    use_pseudo_sql: bool = True
    use_decomposition: bool = True

    # Whether the system can profile database content (top-value lists on
    # schema elements). CHESS-style systems read the data; pure prompting
    # baselines cannot.
    use_value_profiles: bool = True

    # Compounding-retrieval behaviour.
    use_reformulation: bool = True
    use_intent_classification: bool = True
    use_context_expansion: bool = True
    example_top_k: int = 8
    instruction_top_k: int = 4
    schema_top_k: int = 24
    intent_top_k: int = 1

    # Generation behaviour.
    candidate_count: int = 2
    max_retries: int = 2
    context_budget_tokens: int = 1150

    def without(self, component):
        """Return a copy with one named ablation applied (Table 2 rows)."""
        ablations = {
            "schema_linking": {"use_schema_linking": False},
            "instructions": {"use_instructions": False},
            "examples": {"use_examples": False},
            "pseudo_sql": {"use_pseudo_sql": False},
            "decomposition": {"use_decomposition": False},
        }
        if component not in ablations:
            raise ValueError(f"Unknown ablation {component!r}")
        return replace(self, **ablations[component])


DEFAULT_CONFIG = PipelineConfig()

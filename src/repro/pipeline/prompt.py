"""Generation prompt assembly (the Fig. 2 structure) and budget fitting.

The prompt mirrors the paper's figure: retrieved instructions, decomposed
examples with their pseudo-SQL, the CoT plan, and the schema with top
values. Because the model has a finite context, the prompt is fitted to the
configured budget; sections lose entries from the end, schema first (it is
the bulkiest section). :func:`assemble_prompt` returns both the prompt and
the components that *survived* fitting — grounding only sees survivors,
which is what makes context overflow an actual failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..llm.interface import Prompt


@dataclass
class FittedPrompt:
    """A budget-fitted prompt plus the surviving retrieved components."""

    prompt: Prompt
    instructions: list = field(default_factory=list)
    examples: list = field(default_factory=list)
    schema_elements: list = field(default_factory=list)
    dropped: dict = field(default_factory=dict)


def render_instruction(instruction):
    text = instruction.text
    if instruction.sql_pattern and not instruction.sql_pattern.startswith(
        "RATIO_DELTA"
    ):
        text += f"  => {instruction.sql_pattern}"
    return f"- {text}"


def render_example(example):
    return f"- {example.description}\n  {example.pseudo_sql}"


def render_schema_element(element):
    if element.is_table:
        return f"TABLE {element.table}: {element.description}"
    entry = f"  {element.table}.{element.column} {element.data_type}"
    if element.description:
        entry += f" -- {element.description}"
    if element.top_values:
        rendered = ", ".join(str(value) for value in element.top_values)
        entry += f" [top: {rendered}]"
    return entry


def assemble_prompt(question, instructions, examples, schema_elements,
                    plan_text="", budget_tokens=None,
                    task="Generate a SQL query answering the question."):
    """Build the generation prompt and fit it to the context budget.

    Section order (later sections are truncated first): question,
    instructions, examples, plan, schema.
    """
    prompt = Prompt(task=task)
    prompt.add_section("Question", [question])
    instruction_section = prompt.add_section(
        "Instructions", [render_instruction(item) for item in instructions]
    )
    example_section = prompt.add_section(
        "Examples", [render_example(item) for item in examples]
    )
    if plan_text:
        prompt.add_section("Plan", [plan_text])
    schema_section = prompt.add_section(
        "Schema", [render_schema_element(item) for item in schema_elements]
    )
    dropped = {}
    if budget_tokens is not None:
        dropped = prompt.fit_to_budget(budget_tokens)
    return FittedPrompt(
        prompt=prompt,
        instructions=list(instructions[: len(instruction_section.entries)]),
        examples=list(examples[: len(example_section.entries)]),
        schema_elements=list(
            schema_elements[: len(schema_section.entries)]
        ),
        dropped=dropped,
    )

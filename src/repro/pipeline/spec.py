"""Grounded query specification.

A :class:`QuerySpec` is the structured meaning of a question: base table,
joins, metrics, filters, grouping, ordering, and — for complex enterprise
shapes — the parameters of a multi-CTE idiom (quarter-pivot ratio deltas,
top-k-both-ends rankings, share-of-total).

The spec plays two roles:

* the benchmark workload *generates* specs, renders them to natural
  language, and renders the gold SQL from them (``builders.build_sql``);
* the pipeline's planner *recovers* a spec from the question using the
  retrieved knowledge, and the generator renders SQL from the recovered
  spec with the same builders.

Execution accuracy therefore measures exactly how much of the meaning the
pipeline recovered — the same thing BIRD's EX measures for a real LLM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class JoinSpec:
    """INNER JOIN ``table`` ON ``base.left_column = table.right_column``."""

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class MetricSpec:
    """One metric: an aggregate over a column, or a raw SQL expression.

    ``agg`` is one of SUM/AVG/MIN/MAX/COUNT/COUNT_DISTINCT, or EXPR when
    ``expression`` holds a ready SQL expression (term definitions splice in
    this way).
    """

    agg: str
    column: str = ""
    alias: str = "METRIC_VALUE"
    expression: str = ""

    def render(self):
        if self.agg == "EXPR":
            return self.expression
        if self.agg == "COUNT" and not self.column:
            return "COUNT(*)"
        if self.agg == "COUNT_DISTINCT":
            return f"COUNT(DISTINCT {self.column})"
        return f"{self.agg}({self.column})"


@dataclass(frozen=True)
class FilterSpec:
    """One WHERE predicate: ``column op value``, or a raw condition."""

    column: str = ""
    op: str = "="
    value: object = None
    raw: str = ""

    def render(self):
        if self.raw:
            return self.raw
        return f"{self.column} {self.op} {_sql_literal(self.value)}"


@dataclass(frozen=True)
class QuarterFilter:
    """Restrict ``date_column`` to a year (quarter None) or one quarter."""

    date_column: str
    year: int
    quarter: int | None = None

    def render(self):
        if self.quarter is None:
            return f"TO_CHAR({self.date_column}, 'YYYY') = '{self.year}'"
        return (
            f"TO_CHAR({self.date_column}, 'YYYY\"Q\"Q') = "
            f"'{self.year}Q{self.quarter}'"
        )

    @property
    def label(self):
        if self.quarter is None:
            return str(self.year)
        return f"{self.year}Q{self.quarter}"


@dataclass(frozen=True)
class HavingSpec:
    """HAVING over metric ``metric_index``: ``metric op value``."""

    metric_index: int
    op: str
    value: object


@dataclass(frozen=True)
class OrderSpec:
    """Ordering/top-k: order by a metric (index) or column, with limit."""

    metric_index: int | None = None
    column: str = ""
    descending: bool = True
    limit: int | None = None
    both_ends: bool = False


@dataclass(frozen=True)
class RatioDeltaSpec:
    """Parameters of the QoQFP-style quarter-over-quarter ratio delta.

    The metric is ``numerator/denominator`` per entity per quarter (or the
    plain numerator when ``denominator_*`` is empty); the output ranks
    entities by the change from the previous quarter, optionally negated
    (the paper's "-1 multiplier" business rule) and keeping both the best
    and worst ``k``.
    """

    entity_column: str
    numerator_table: str
    numerator_date_column: str
    numerator_value_column: str
    year: int
    quarter: int
    denominator_table: str = ""
    denominator_date_column: str = ""
    denominator_value_column: str = ""
    negate: bool = False
    k: int = 5
    both_ends: bool = True
    numerator_filters: tuple = ()
    denominator_filters: tuple = ()

    @property
    def current_label(self):
        return f"{self.year}Q{self.quarter}"

    @property
    def previous_label(self):
        if self.quarter == 1:
            return f"{self.year - 1}Q4"
        return f"{self.year}Q{self.quarter - 1}"


#: Query shapes, each with a dedicated builder.
SHAPE_STANDARD = "standard"
SHAPE_TOPK_BOTH_ENDS = "topk_both_ends"
SHAPE_RATIO_DELTA_RANK = "ratio_delta_rank"
SHAPE_SHARE_OF_TOTAL = "share_of_total"

SHAPES = (
    SHAPE_STANDARD,
    SHAPE_TOPK_BOTH_ENDS,
    SHAPE_RATIO_DELTA_RANK,
    SHAPE_SHARE_OF_TOTAL,
)


@dataclass(frozen=True)
class QuerySpec:
    """The full grounded meaning of one question."""

    database: str
    base_table: str
    shape: str = SHAPE_STANDARD
    joins: tuple = ()
    projection: tuple = ()
    metrics: tuple = ()
    filters: tuple = ()
    quarter_filters: tuple = ()
    group_by: tuple = ()
    having: tuple = ()
    order: OrderSpec | None = None
    distinct: bool = False
    ratio_delta: RatioDeltaSpec | None = None

    def with_changes(self, **changes):
        return replace(self, **changes)

    @property
    def tables(self):
        names = [self.base_table]
        names.extend(join.table for join in self.joins)
        if self.ratio_delta is not None:
            for table in (
                self.ratio_delta.numerator_table,
                self.ratio_delta.denominator_table,
            ):
                if table and table not in names:
                    names.append(table)
        return tuple(names)


def _sql_literal(value):
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


sql_literal = _sql_literal

"""GenEdit generation pipeline: compounding operators over the knowledge set."""

from .base import (
    GenerationResult,
    Operator,
    PipelineContext,
    Plan,
    PlanStep,
    TraceEvent,
)
from .builders import build_sql
from .config import DEFAULT_CONFIG, PipelineConfig
from .lexicon import SchemaLexicon
from .nlparse import canonicalize, parse_question
from .pipeline import GenEditPipeline
from .planning import build_plan_steps
from .prompt import assemble_prompt
from .tuning import (
    BALANCED,
    ECONOMY,
    QUALITY,
    TIERS,
    PipelineTier,
    configure_for_budget,
    estimate_cost,
    estimate_latency,
)
from .spec import (
    FilterSpec,
    HavingSpec,
    JoinSpec,
    MetricSpec,
    OrderSpec,
    QuarterFilter,
    QuerySpec,
    RatioDeltaSpec,
    SHAPE_RATIO_DELTA_RANK,
    SHAPE_SHARE_OF_TOTAL,
    SHAPE_STANDARD,
    SHAPE_TOPK_BOTH_ENDS,
)

__all__ = [
    "BALANCED",
    "DEFAULT_CONFIG",
    "ECONOMY",
    "QUALITY",
    "TIERS",
    "PipelineTier",
    "configure_for_budget",
    "estimate_cost",
    "estimate_latency",
    "FilterSpec",
    "GenEditPipeline",
    "GenerationResult",
    "HavingSpec",
    "JoinSpec",
    "MetricSpec",
    "Operator",
    "OrderSpec",
    "PipelineConfig",
    "PipelineContext",
    "Plan",
    "PlanStep",
    "QuarterFilter",
    "QuerySpec",
    "RatioDeltaSpec",
    "SHAPE_RATIO_DELTA_RANK",
    "SHAPE_SHARE_OF_TOTAL",
    "SHAPE_STANDARD",
    "SHAPE_TOPK_BOTH_ENDS",
    "SchemaLexicon",
    "TraceEvent",
    "assemble_prompt",
    "build_plan_steps",
    "build_sql",
    "canonicalize",
    "parse_question",
]

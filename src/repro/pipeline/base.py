"""Pipeline plumbing: operators, run context, plans, and traces.

A :class:`GenEditPipeline` run threads a :class:`PipelineContext` through a
sequence of :class:`Operator` instances (Fig. 1's numbered boxes). Each
operator reads what earlier operators produced — that compounding is the
paper's core retrieval idea — and annotates the run so it is fully
inspectable: every operator executes inside a timed
:class:`~repro.obs.tracing.Span` on the context's
:class:`~repro.obs.tracing.Tracer`, and the legacy ``add_trace`` events
attach to the enclosing span (the examples print these traces to show the
architecture; ``python -m repro trace`` renders the timed tree).

:class:`TraceEvent` is kept as a back-compat alias of
:class:`~repro.obs.tracing.SpanEvent` — same fields, same ``str()`` form.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..llm.interface import CallMeter
from ..obs.tracing import SpanEvent, Tracer

#: Back-compat alias: the untimed per-operator trace record is now a span
#: event. Existing ``TraceEvent(operator=..., summary=..., detail=...)``
#: construction and ``str(event)`` rendering are unchanged.
TraceEvent = SpanEvent


@dataclass
class PlanStep:
    """One step of the CoT plan: NL description plus optional pseudo-SQL."""

    description: str
    pseudo_sql: str = ""

    def render(self):
        if self.pseudo_sql:
            return f"{self.description}\n    {self.pseudo_sql}"
        return self.description


@dataclass
class Plan:
    """The chain-of-thought plan (§3.1.2).

    ``steps`` is the ordered natural-language plan shown in prompts;
    ``spec`` is the grounded meaning the planner recovered (the structured
    content the steps describe); ``issues`` records grounding gaps the
    planner knows about (used in traces and edit recommendation).
    """

    steps: list = field(default_factory=list)
    spec: object = None
    issues: list = field(default_factory=list)

    def render(self):
        lines = []
        for number, step in enumerate(self.steps, start=1):
            lines.append(f"Step {number}: {step.render()}")
        return "\n".join(lines)

    def __len__(self):
        return len(self.steps)


@dataclass
class PipelineContext:
    """Mutable state threaded through the pipeline operators."""

    question: str
    database: object            # repro.engine.Database
    knowledge: object           # repro.knowledge.KnowledgeSet
    config: object              # PipelineConfig

    reformulated: str = ""
    intent_ids: list = field(default_factory=list)
    examples: list = field(default_factory=list)       # DecomposedExample
    example_scores: dict = field(default_factory=dict)
    instructions: list = field(default_factory=list)   # Instruction
    schema_elements: list = field(default_factory=list)
    plan: Plan | None = None
    #: GP0xx findings on the primary plan (set by the lint_plan operator).
    plan_findings: list = field(default_factory=list)
    candidates: list = field(default_factory=list)     # candidate SQL strings
    candidate_diagnostics: dict = field(default_factory=dict)  # sql -> [Diagnostic]
    #: sql -> [PlanFinding] for each candidate's grounding plan.
    candidate_plan_findings: dict = field(default_factory=dict)
    sql: str = ""
    attempts: list = field(default_factory=list)       # (sql, error) pairs
    lint_caught: int = 0        # candidates rejected by diagnostics pre-execution
    execution_caught: int = 0   # candidates rejected by actually executing
    trace: list = field(default_factory=list)
    meter: CallMeter = field(default_factory=CallMeter)
    tracer: Tracer = field(default_factory=Tracer)
    #: (operator name, reason) per optional operator that failed soft
    #: (see DESIGN.md §6c's degradation matrix).
    degraded_operators: list = field(default_factory=list)
    #: (operator name, output digest) in execution order — the ledger's
    #: first-divergence trail (see :func:`operator_output_digest`).
    operator_digests: list = field(default_factory=list)
    #: Name of the required operator whose failure ended the run ("" if
    #: the run reached the final check).
    failed_operator: str = ""
    #: ``callable(database) -> executor`` supplied by the pipeline so
    #: fault injection covers self-correction and the final check; ``None``
    #: (standalone operator tests) falls back to a plain ``Executor``.
    executor_factory: object = None

    def add_trace(self, operator, summary, **detail):
        event = self.tracer.add_event(operator, summary, detail)
        self.trace.append(event)
        return event

    def span(self, name, **attributes):
        """Open a timed span on this run's tracer (context manager)."""
        return self.tracer.span(name, **attributes)

    def render_trace(self):
        """Render the run's events, sourced from the span tree.

        Events recorded outside this context's tracer (possible only when
        an operator is driven standalone under a foreign ambient span) fall
        back to the flat list; either way the rendered text matches the
        pre-span output line for line.
        """
        events = self.tracer.iter_events()
        if len(events) < len(self.trace):
            events = self.trace
        return "\n".join(str(event) for event in events)


class Operator:
    """Base class for pipeline operators (Fig. 1 boxes)."""

    #: Human-readable operator name used in traces.
    name = "operator"

    def run(self, context: PipelineContext):
        raise NotImplementedError


#: Canonical per-operator output: the context state the operator owns, as a
#: deterministic payload. Digesting these lets the run ledger attribute a
#: run-to-run divergence to the first operator whose output changed
#: (``python -m repro diff``, DESIGN.md §6d). Unknown operator names fall
#: back to the final SQL, the one output every pipeline produces.
_DIGEST_PAYLOADS = {
    "reformulate": lambda c: c.reformulated,
    "classify_intents": lambda c: tuple(c.intent_ids),
    "select_examples": lambda c: tuple(
        getattr(example, "example_id", repr(example))
        for example in c.examples
    ),
    "select_instructions": lambda c: tuple(
        getattr(instruction, "instruction_id", repr(instruction))
        for instruction in c.instructions
    ),
    "link_schema": lambda c: tuple(
        getattr(element, "element_id", repr(element))
        for element in c.schema_elements
    ),
    "plan": lambda c: c.plan.render() if c.plan is not None else "",
    "lint_plan": lambda c: tuple(
        (finding.code, finding.step) for finding in c.plan_findings
    ),
    "generate_sql": lambda c: (tuple(c.candidates), c.sql),
    "self_correct": lambda c: (c.sql, tuple(c.attempts)),
}


def operator_output_digest(name, context):
    """12-hex-char blake2b digest of operator ``name``'s canonical output.

    Stable across processes for a deterministic run (ids, rendered plans,
    and SQL strings only — no timings, no object identities), so two run
    records can be compared digest-by-digest.
    """
    payload = _DIGEST_PAYLOADS.get(name, lambda c: (c.sql,))(context)
    return hashlib.blake2b(
        repr((name, payload)).encode("utf-8"), digest_size=6
    ).hexdigest()


@dataclass
class GenerationResult:
    """Outcome of one pipeline run."""

    question: str
    sql: str
    plan: Plan | None
    success: bool               # a candidate passed validation
    trace: list
    context: PipelineContext
    error: str = ""

    @property
    def cost_usd(self):
        return self.context.meter.total_cost_usd

    @property
    def degraded_operators(self):
        """Names of optional operators that failed soft during this run."""
        return tuple(
            name for name, _reason in self.context.degraded_operators
        )

    @property
    def failed_operator(self):
        """The required operator whose failure ended the run ("" if none)."""
        return self.context.failed_operator

    @property
    def operator_digests(self):
        """((operator, digest), ...) in execution order for run diffing."""
        return tuple(self.context.operator_digests)

    @property
    def latency_ms(self):
        return self.context.meter.total_latency_ms

    def trace_records(self):
        """One JSON-ready dict per finished span of this run (start order).

        The record schema is versioned (``v`` field, see
        :data:`repro.obs.tracing.TRACE_SCHEMA_VERSION`); write one record
        per line for the ``python -m repro trace`` inspector.
        """
        return self.context.tracer.to_records()

    def debug_payload(self):
        """The postmortem detail for one run, JSON-ready.

        This is what the serving layer's flight recorder retains for a
        failed/slow/sampled request (DESIGN.md §6i): the operator digest
        trail, the rendered plan, every candidate and repair attempt,
        diagnostics and plan-lint codes, degradations, resilience-visible
        events and LLM call accounting — enough to reconstruct *why* the
        run produced what it did without re-running the question.
        """
        context = self.context
        final_diagnostics = context.candidate_diagnostics.get(
            self.sql, ()
        )
        plan_findings = (
            context.candidate_plan_findings.get(self.sql)
            or context.plan_findings
        )
        return {
            "question": self.question,
            "reformulated": context.reformulated,
            "sql": self.sql,
            "success": bool(self.success),
            "error": self.error,
            "failed_operator": context.failed_operator,
            "plan": self.plan.render() if self.plan else "",
            "candidates": list(context.candidates),
            "attempts": [
                {"sql": sql, "error": error}
                for sql, error in context.attempts
            ],
            "degraded": [
                {"operator": name, "reason": reason}
                for name, reason in context.degraded_operators
            ],
            "operator_digests": [
                {"operator": name, "digest": digest}
                for name, digest in context.operator_digests
            ],
            "lint_codes": sorted({
                diagnostic.code for diagnostic in final_diagnostics
            }),
            "plan_codes": sorted({
                finding.code for finding in plan_findings
            }),
            "events": [str(event) for event in self.trace],
            "llm_calls": [
                {
                    "operator": call.operator,
                    "model": call.model,
                    "input_tokens": call.input_tokens,
                    "output_tokens": call.output_tokens,
                    "cost_usd": round(call.cost_usd, 10),
                }
                for call in context.meter.calls
            ],
            "cost_usd": round(self.cost_usd, 10),
            "latency_ms": self.latency_ms,
        }

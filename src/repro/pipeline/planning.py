"""CoT planning operator (§3.1.2).

Builds the generation context (prompt-fitted to the model budget), grounds
the reformulated question against it, and writes the step-by-step plan:
natural-language steps, each augmented with a ``... pseudo-SQL ...``
fragment when pseudo-SQL is enabled. The grounded spec rides on the plan —
it is the structured meaning the steps describe, and the generation
operator renders SQL from it, "minimizing the need for model reasoning".
"""

from __future__ import annotations

from ..llm.grounding import GroundingInput
from ..sql.decompose import KIND_QUERY
from .base import Operator, Plan, PlanStep
from .prompt import assemble_prompt
from .spec import (
    SHAPE_RATIO_DELTA_RANK,
    SHAPE_SHARE_OF_TOTAL,
    SHAPE_TOPK_BOTH_ENDS,
)

#: Minimum retrieval similarity for a *full-query* example to donate its
#: idiom pattern (the w/o-decomposition regime: a full example only helps
#: when the whole question is near-identical to a logged one).
FULL_QUERY_PATTERN_THRESHOLD = 0.55


class PlanningOperator(Operator):
    name = "plan"

    def __init__(self, llm):
        self._llm = llm

    def run(self, context):
        config = context.config
        prompt_examples = context.examples if config.use_examples else []
        fitted = assemble_prompt(
            context.reformulated,
            context.instructions,
            prompt_examples,
            context.schema_elements,
            budget_tokens=config.context_budget_tokens,
            task="Write a step-by-step plan for generating the SQL query.",
        )
        grounding_input = GroundingInput(
            database_name=context.database.name,
            schema_elements=fitted.schema_elements,
            instructions=fitted.instructions,
            patterns=self._available_patterns(context),
            example_columns=self._example_columns(fitted.examples, config),
        )
        parsed, candidates = self._llm.understand(
            context.reformulated,
            grounding_input,
            meter=context.meter,
            prompt=fitted.prompt,
        )
        primary = candidates[0]
        steps = build_plan_steps(primary.spec, use_pseudo_sql=config.use_pseudo_sql)
        context.plan = Plan(
            steps=steps, spec=primary.spec, issues=list(primary.issues)
        )
        context.grounding_candidates = candidates
        context.parsed_question = parsed
        if fitted.dropped:
            context.add_trace(
                self.name,
                f"context budget truncated sections: {fitted.dropped}",
            )
        context.add_trace(
            self.name,
            f"plan with {len(steps)} steps "
            f"(shape={primary.spec.shape}, issues={primary.issues})",
        )
        return context

    def _available_patterns(self, context):
        """Idiom patterns evidenced by the retrieved examples.

        Decomposed fragments donate their pattern directly; a full-query
        example (w/o-decomposition knowledge sets) only donates when its
        retrieval similarity is high — the whole logged question must be
        close to the asked one.
        """
        if not context.config.use_pseudo_sql:
            return set()
        patterns = set()
        pool = getattr(context, "example_pool", None) or context.examples
        for example in pool:
            if not example.pattern:
                continue
            if example.kind == KIND_QUERY:
                score = context.example_scores.get(example.example_id, 0.0)
                if score < FULL_QUERY_PATTERN_THRESHOLD:
                    continue
            patterns.add(example.pattern)
        return patterns

    def _example_columns(self, examples, config):
        if not config.use_examples:
            return []
        pairs = []
        for example in examples:
            for table in example.tables:
                for column in example.columns:
                    pairs.append((table, column))
        return pairs


def build_plan_steps(spec, use_pseudo_sql=True):
    """Render a grounded spec into CoT plan steps (Fig. 2 style)."""
    steps = []

    def add(description, pseudo=""):
        steps.append(
            PlanStep(
                description=description,
                pseudo_sql=f"... {pseudo} ..." if (pseudo and use_pseudo_sql)
                else "",
            )
        )

    if spec.shape == SHAPE_RATIO_DELTA_RANK and spec.ratio_delta is not None:
        params = spec.ratio_delta
        add(
            f"Begin by looking at the data from the "
            f"{params.numerator_table} table.",
            f"FROM {params.numerator_table}",
        )
        add(
            f"Pivot {params.numerator_value_column} into previous-quarter "
            f"({params.previous_label}) and current-quarter "
            f"({params.current_label}) sums per {params.entity_column}.",
            f"SUM(CASE WHEN TO_CHAR({params.numerator_date_column}, "
            f"'YYYY\"Q\"Q') = '{params.current_label}' THEN "
            f"{params.numerator_value_column} ELSE 0 END)",
        )
        for flt in params.numerator_filters:
            add(f"Restrict the data: {flt.render()}.", flt.render())
        if params.denominator_table:
            add(
                f"Build the same pivot over "
                f"{params.denominator_value_column} from the "
                f"{params.denominator_table} table.",
                f"FROM {params.denominator_table}",
            )
            add(
                "Divide the current and previous sums, guarding against "
                "zero denominators.",
                "CAST(n.CUR_VALUE AS FLOAT) / NULLIF(d.CUR_VALUE, 0)",
            )
        add(
            "Compute the change as current minus previous"
            + (" and apply the -1 multiplier." if params.negate else "."),
            ("-1 * " if params.negate else "")
            + "(CURRENT_METRIC) - (PREVIOUS_METRIC)",
        )
        add(
            f"Rank entities by the change from both ends and keep the "
            f"best and worst {params.k}."
            if params.both_ends
            else f"Rank entities by the change and keep the top {params.k}.",
            "ROW_NUMBER() OVER (ORDER BY METRIC_CHANGE DESC)",
        )
        add(
            "Assemble the CTEs and select the entity, metrics, change, "
            "and rank.",
            f"SELECT {params.entity_column}, METRIC_CHANGE, BEST_RANK",
        )
        return steps

    add(
        f"Begin by looking at the data from the {spec.base_table} table.",
        f"FROM {spec.base_table}",
    )
    for join in spec.joins:
        add(
            f"Join {join.table} on {spec.base_table}.{join.left_column} = "
            f"{join.table}.{join.right_column}.",
            f"JOIN {join.table} ON {spec.base_table}.{join.left_column} = "
            f"{join.table}.{join.right_column}",
        )
    for flt in spec.filters:
        add(f"Filter rows where {flt.render()}.", f"WHERE {flt.render()}")
    for quarter in spec.quarter_filters:
        add(
            f"Restrict to the period {quarter.label}.",
            quarter.render(),
        )
    if spec.group_by:
        rendered = ", ".join(spec.group_by)
        add(f"Group the rows by {rendered}.", f"GROUP BY {rendered}")
    for metric in spec.metrics:
        add(
            f"Compute {metric.render()} as {metric.alias}.",
            f"{metric.render()} AS {metric.alias}",
        )
    for having in spec.having:
        metric = spec.metrics[having.metric_index]
        add(
            f"Keep only groups where {metric.alias} {having.op} "
            f"{having.value}.",
            f"HAVING {metric.render()} {having.op} {having.value}",
        )
    if spec.shape == SHAPE_TOPK_BOTH_ENDS:
        add(
            "Rank the groups from both ends with ROW_NUMBER and keep the "
            "best and worst k.",
            "ROW_NUMBER() OVER (ORDER BY METRIC_VALUE DESC)",
        )
    elif spec.shape == SHAPE_SHARE_OF_TOTAL:
        add(
            "Divide each group's metric by the grand total using a window "
            "sum.",
            "METRIC_VALUE / NULLIF(SUM(METRIC_VALUE) OVER (), 0)",
        )
    elif spec.order is not None:
        direction = "descending" if spec.order.descending else "ascending"
        key = (
            spec.metrics[spec.order.metric_index].alias
            if spec.order.metric_index is not None
            else spec.order.column
        )
        description = f"Order the results by {key} {direction}"
        if spec.order.limit is not None:
            description += f" and keep the first {spec.order.limit}"
        add(description + ".", f"ORDER BY {key}")
    add("Select the final output columns.")
    return steps

"""Static analysis of CoT plans: the ``GP0xx`` rule pack.

Runs between planning and generation (the ``lint_plan`` operator) and
checks the plan's pseudo-SQL steps against the live catalog and the
linked schema subset — step-level validation catches grounding errors
earlier and cheaper than SQL-level checks (see PAPERS.md, "Interactive
Text-to-SQL Generation via Editable Step-by-Step Explanations"). Findings
feed candidate ranking (error-weighted, after the ``GE0xx`` score) and
the self-correction regeneration context the same way ``GE0xx``
diagnostics do, and error-level codes flow into ``QuestionOutcome`` and
the run ledger.

Severity policy matches DESIGN.md §6f: errors mark plans whose steps
cannot be grounded at all (unknown tables, dangling references); warnings
mark steps that are suspicious but may still generate valid SQL
(subset-escaping tables, unknown qualified columns, unresolved slots).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..obs.metrics import get_metrics
from ..obs.tracing import current_span
from ..sql.diagnostics.core import (
    Severity,
    error_count,
    severity_score,
)
from ..sql.errors import SqlError
from ..sql.parser import parse
from .base import Operator

__all__ = [
    "PLAN_RULES",
    "PlanFinding",
    "PlanLintOperator",
    "PlanRule",
    "get_rule",
    "iter_rules",
    "lint_plan",
    "plan_error_codes",
    "plan_error_score",
]


@dataclass(frozen=True)
class PlanFinding:
    """One plan lint finding, anchored to a 1-based step number."""

    code: str
    slug: str
    severity: Severity
    message: str
    step: int = 0               # 0 = plan-level finding
    suggestion: str = None

    @property
    def is_error(self):
        return self.severity is Severity.ERROR

    def render(self):
        where = f" at step {self.step}" if self.step else ""
        text = f"{self.code} {self.severity.value}{where}: {self.message}"
        if self.suggestion:
            text += f" (did you mean {self.suggestion!r}?)"
        return text


@dataclass(frozen=True)
class PlanRule:
    """A registered plan lint rule."""

    code: str
    slug: str
    severity: Severity
    summary: str

    def at(self, message, step=0, suggestion=None):
        return PlanFinding(
            code=self.code,
            slug=self.slug,
            severity=self.severity,
            message=message,
            step=step,
            suggestion=suggestion,
        )


#: All registered plan rules, keyed by code.
PLAN_RULES = {}


def _register(code, slug, severity, summary):
    if code in PLAN_RULES:  # pragma: no cover - registration bug
        raise ValueError(f"Duplicate plan rule code {code}")
    rule = PlanRule(code, slug, severity, summary)
    PLAN_RULES[code] = rule
    return rule


def get_rule(code):
    return PLAN_RULES[code]


def iter_rules():
    return [PLAN_RULES[code] for code in sorted(PLAN_RULES)]


GP001 = _register(
    "GP001", "empty-plan", Severity.ERROR,
    "Plan has no steps to generate from",
)
GP002 = _register(
    "GP002", "step-unknown-table", Severity.ERROR,
    "Step pseudo-SQL references a table absent from the catalog",
)
GP003 = _register(
    "GP003", "step-table-outside-subset", Severity.WARNING,
    "Step references a table with no linked schema element",
)
GP004 = _register(
    "GP004", "step-unknown-column", Severity.WARNING,
    "Step references a qualified column its table does not have",
)
GP005 = _register(
    "GP005", "step-unparseable-pseudo-sql", Severity.WARNING,
    "Step pseudo-SQL fragment does not parse in any fragment context",
)
GP006 = _register(
    "GP006", "dangling-metric-reference", Severity.ERROR,
    "Plan spec orders or filters on a metric index that does not exist",
)
GP007 = _register(
    "GP007", "dangling-step-reference", Severity.ERROR,
    "Step description references a step number outside the plan",
)
GP008 = _register(
    "GP008", "unresolved-literal-slot", Severity.WARNING,
    "Step pseudo-SQL carries an unexpanded or empty literal slot",
)


_TABLE_REF = re.compile(
    r"\b(?:FROM|JOIN)\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE
)
_QUALIFIED_REF = re.compile(
    r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*([A-Za-z_][A-Za-z0-9_]*)"
)
_STEP_REF = re.compile(r"\bstep\s+(\d+)", re.IGNORECASE)
_INLINE_ALIAS = re.compile(r"\bAS\s+([A-Za-z_][A-Za-z0-9_]*)", re.IGNORECASE)

#: Computed-column names the planner's pseudo-SQL uses as slots; they are
#: produced by earlier steps, not by any catalog table.
PLACEHOLDER_COLUMNS = frozenset({
    "METRIC_VALUE", "METRIC_CHANGE", "BEST_RANK", "WORST_RANK",
    "CUR_VALUE", "PREV_VALUE", "CURRENT_METRIC", "PREVIOUS_METRIC",
    "SHARE", "TOTAL_VALUE",
})


def lint_plan(plan, database=None, schema_elements=None):
    """Run all ``GP0xx`` rules over ``plan``; deterministic finding order.

    ``database`` enables catalog checks (GP002/GP004); ``schema_elements``
    — the linked subset from the pipeline context — enables GP003. Either
    may be ``None`` for standalone plan linting (fixtures, plan editors).
    """
    findings = []
    steps = list(getattr(plan, "steps", ()) or ())
    if not steps:
        findings.append(GP001.at("plan has no steps"))
        return findings
    catalog = {}
    if database is not None:
        catalog = {table.name.upper(): table for table in database.tables}
    subset_tables = None
    if schema_elements is not None:
        subset_tables = {
            element.table.upper() for element in schema_elements
        }
    spec = getattr(plan, "spec", None)
    aliases = set(PLACEHOLDER_COLUMNS)
    for metric in getattr(spec, "metrics", ()) or ():
        alias = getattr(metric, "alias", "")
        if alias:
            aliases.add(alias.upper())
    for number, step in enumerate(steps, start=1):
        pseudo = _strip_markers(getattr(step, "pseudo_sql", "") or "")
        description = getattr(step, "description", "") or ""
        aliases.update(
            match.upper() for match in _INLINE_ALIAS.findall(pseudo)
        )
        _check_step_tables(pseudo, number, catalog, subset_tables,
                           database, findings)
        _check_step_columns(pseudo, number, catalog, aliases, findings)
        _check_step_parses(pseudo, number, findings)
        _check_unresolved_slots(pseudo, number, findings)
        _check_step_references(description, number, len(steps), findings)
    _check_spec_metrics(spec, findings)
    return findings


def plan_error_codes(findings):
    """Sorted unique error-level codes in ``findings``."""
    return tuple(sorted({f.code for f in findings if f.is_error}))


def plan_error_score(findings):
    """Severity score counting only error-level plan findings.

    Candidate ranking uses this after the ``GE0xx`` score: warnings are
    advisory (mined pseudo-SQL legitimately carries placeholder slots),
    but a candidate whose plan cannot be grounded ranks behind one whose
    plan can.
    """
    return sum(100 for finding in findings if finding.is_error)


# -- step checks -------------------------------------------------------------


def _strip_markers(pseudo):
    return pseudo.strip().strip(".").strip()


def _check_step_tables(pseudo, number, catalog, subset_tables, database,
                       findings):
    if database is None:
        return
    for match in _TABLE_REF.finditer(pseudo):
        name = match.group(1)
        upper = name.upper()
        if upper == "SELECT":  # FROM ( SELECT ... ) subqueries
            continue
        if upper not in catalog:
            findings.append(GP002.at(
                f"references table {name!r} which is not in the catalog",
                step=number,
            ))
        elif subset_tables is not None and upper not in subset_tables:
            findings.append(GP003.at(
                f"references table {name!r} outside the linked schema "
                f"subset",
                step=number,
            ))


def _check_step_columns(pseudo, number, catalog, aliases, findings):
    if not catalog:
        return
    for match in _QUALIFIED_REF.finditer(pseudo):
        qualifier, column = match.group(1), match.group(2)
        table = catalog.get(qualifier.upper())
        if table is None:
            continue  # alias or CTE qualifier — not judgeable
        if table.has_column(column):
            continue
        if column.upper() in aliases:
            continue
        findings.append(GP004.at(
            f"references column {qualifier}.{column} which table "
            f"{table.name} does not have",
            step=number,
        ))


#: Fragment wrappings tried per pseudo-SQL head keyword; a step is
#: parseable when any wrapped form parses (``_K`` is a parse-only
#: placeholder relation).
def _fragment_candidates(pseudo):
    head = pseudo.split(None, 1)[0].upper() if pseudo else ""
    if head == "SELECT":
        yield pseudo
        yield f"{pseudo} FROM _K"
        return
    if head == "FROM":
        yield f"SELECT * {pseudo}"
        return
    if head in ("JOIN", "WHERE", "HAVING", "ORDER", "GROUP"):
        yield f"SELECT * FROM _K {pseudo}"
        return
    yield f"SELECT {pseudo} FROM _K"
    yield f"SELECT * FROM _K WHERE {pseudo}"


def _check_step_parses(pseudo, number, findings):
    if not pseudo:
        return
    for candidate in _fragment_candidates(pseudo):
        try:
            parse(candidate)
            return
        except SqlError:
            continue
    findings.append(GP005.at(
        f"pseudo-SQL does not parse: {pseudo!r}", step=number,
    ))


def _check_unresolved_slots(pseudo, number, findings):
    if "{" in pseudo or "}" in pseudo:
        findings.append(GP008.at(
            f"pseudo-SQL carries an unexpanded template slot: {pseudo!r}",
            step=number,
        ))
        return
    if re.search(r"=\s*''(?!')", pseudo) or re.search(
        r"=\s*None\b", pseudo
    ):
        findings.append(GP008.at(
            f"pseudo-SQL compares against an empty literal slot: "
            f"{pseudo!r}",
            step=number,
        ))


def _check_step_references(description, number, total, findings):
    for match in _STEP_REF.finditer(description):
        target = int(match.group(1))
        if target < 1 or target > total:
            findings.append(GP007.at(
                f"description references step {target} but the plan has "
                f"{total} step(s)",
                step=number,
            ))


def _check_spec_metrics(spec, findings):
    metrics = list(getattr(spec, "metrics", ()) or ())
    order = getattr(spec, "order", None)
    order_index = getattr(order, "metric_index", None)
    if order_index is not None and not (0 <= order_index < len(metrics)):
        findings.append(GP006.at(
            f"order clause references metric index {order_index} but the "
            f"spec has {len(metrics)} metric(s)",
        ))
    for having in getattr(spec, "having", ()) or ():
        having_index = getattr(having, "metric_index", None)
        if having_index is not None and not (
            0 <= having_index < len(metrics)
        ):
            findings.append(GP006.at(
                f"having clause references metric index {having_index} "
                f"but the spec has {len(metrics)} metric(s)",
            ))


class PlanLintOperator(Operator):
    """Optional operator: lint the CoT plan before generation."""

    name = "lint_plan"

    def run(self, context):
        if context.plan is None:
            context.plan_findings = []
            context.add_trace(self.name, "no plan to lint")
            return context
        findings = lint_plan(
            context.plan, context.database, context.schema_elements or None
        )
        context.plan_findings = findings
        metrics = get_metrics()
        if findings:
            metrics.inc("plan_lint.findings", len(findings))
            errors = error_count(findings)
            if errors:
                metrics.inc("plan_lint.errors", errors)
            span = current_span()
            if span is not None:
                span.set_attr("codes", " ".join(sorted(
                    {finding.code for finding in findings}
                )))
                span.set_attr("errors", errors)
        context.add_trace(
            self.name,
            f"{len(findings)} plan finding(s), "
            f"score {severity_score(findings)}",
        )
        return context

"""Self-correction operator (§2.1, §3).

Works through the candidate queue in two gates. First the diagnostics
engine lints the candidate: an error-level finding means the execution
engine would reject it anyway, so the operator skips execution outright
and feeds the diagnostic codes, messages, and suggestions into the
regeneration context. Candidates that lint clean (of errors) are then
executed; a runtime failure is carried as context the same way, up to
``k`` retries. This mirrors the execution-guided retry loop the paper
adopts from prior work, with the lint gate supplying the "perceived
error" more cheaply and precisely than execution.
"""

from __future__ import annotations

from ..engine.errors import ExecutionError
from ..engine.executor import Executor
from ..obs.metrics import get_metrics
from ..sql.diagnostics import DiagnosticsEngine
from ..sql.errors import SqlError
from .base import Operator


class SelfCorrectionOperator(Operator):
    name = "self_correct"

    def __init__(self, llm=None):
        # The pipeline passes its LLM so regeneration meter records carry
        # the configured model; standalone construction falls back to the
        # paper's default.
        self._llm = llm

    @property
    def _model(self):
        if self._llm is not None:
            return getattr(self._llm, "model", "gpt-4o")
        return "gpt-4o"

    def run(self, context):
        config = context.config
        make_executor = getattr(context, "executor_factory", None)
        executor = (
            make_executor(context.database) if make_executor
            else Executor(context.database)
        )
        engine = DiagnosticsEngine(context.database)
        metrics = get_metrics()
        attempts = []
        # Dedupe the whole queue (preserving order): duplicate candidates
        # would burn retry budget re-linting/re-executing identical SQL.
        queue = list(dict.fromkeys([context.sql] + list(context.candidates)))
        tried = 0
        for sql in queue:
            if not sql:
                continue
            if tried > config.max_retries:
                break
            tried += 1
            with context.span("attempt", index=tried) as attempt:
                diagnostics = context.candidate_diagnostics.get(sql)
                if diagnostics is None:
                    diagnostics = engine.run_sql(sql)
                    context.candidate_diagnostics[sql] = diagnostics
                errors = [diag for diag in diagnostics if diag.is_error]
                if errors:
                    # The engine would reject this candidate too — skip the
                    # execution and regenerate from the lint findings.
                    context.lint_caught += 1
                    metrics.inc("self_correct.lint_caught")
                    attempt.set_attr("outcome", "lint_caught")
                    attempt.set_attr(
                        "codes", " ".join(diag.code for diag in errors)
                    )
                    summary = "; ".join(diag.render() for diag in errors[:3])
                    attempts.append((sql, f"lint: {summary}"))
                    context.add_trace(
                        self.name,
                        f"attempt {tried} lint-rejected: {summary}",
                    )
                    findings = "\n".join(diag.render() for diag in errors)
                    plan_errors = self._plan_errors(context, sql)
                    if plan_errors:
                        attempt.set_attr(
                            "plan_codes",
                            " ".join(f.code for f in plan_errors),
                        )
                        findings += "\nPlan findings:\n" + "\n".join(
                            finding.render() for finding in plan_errors
                        )
                    context.meter.record(
                        "self_correct", self._model,
                        f"Diagnostics:\n{findings}\nRegenerate the SQL.", sql,
                    )
                    continue
                try:
                    with context.span("execute"):
                        executor.execute(sql)
                except (SqlError, ExecutionError) as error:
                    context.execution_caught += 1
                    metrics.inc("self_correct.execution_caught")
                    attempt.set_attr("outcome", "execution_caught")
                    attempts.append((sql, str(error)))
                    context.add_trace(
                        self.name,
                        f"attempt {tried} failed: {error}",
                    )
                    # The regeneration prompt would carry the error text; the
                    # next grounding candidate plays that corrected role.
                    context.meter.record(
                        "self_correct", self._model,
                        f"Error: {error}\nRegenerate the SQL.", sql,
                    )
                    continue
                attempt.set_attr("outcome", "ok")
            metrics.inc("self_correct.clean")
            context.sql = sql
            context.attempts = attempts
            context.add_trace(
                self.name,
                f"candidate executed cleanly on attempt {tried}",
            )
            return context
        context.attempts = attempts
        context.add_trace(
            self.name,
            f"no candidate executed cleanly after {tried} attempt(s)",
        )
        return context

    @staticmethod
    def _plan_errors(context, sql):
        """Error-level GP findings for this candidate's grounding plan.

        Feeds the regeneration context alongside the GE diagnostics — a
        step that cannot be grounded explains *why* the SQL lints broken,
        which the paper's regeneration prompt wants spelled out.
        """
        findings = context.candidate_plan_findings.get(sql)
        if findings is None:
            findings = context.plan_findings
        return [finding for finding in findings if finding.is_error]

"""Self-correction operator (§2.1, §3).

Executes the selected candidate; on a syntactic or semantic error it
regenerates — here by advancing to the next grounding candidate — with the
perceived error carried as context, up to ``k`` retries. This mirrors the
execution-guided retry loop the paper adopts from prior work.
"""

from __future__ import annotations

from ..engine.errors import ExecutionError
from ..engine.executor import Executor
from ..sql.errors import SqlError
from .base import Operator


class SelfCorrectionOperator(Operator):
    name = "self_correct"

    def run(self, context):
        config = context.config
        executor = Executor(context.database)
        attempts = []
        queue = [context.sql] + [
            sql for sql in context.candidates if sql != context.sql
        ]
        tried = 0
        for sql in queue:
            if not sql:
                continue
            if tried > config.max_retries:
                break
            tried += 1
            try:
                executor.execute(sql)
            except (SqlError, ExecutionError) as error:
                attempts.append((sql, str(error)))
                context.add_trace(
                    self.name,
                    f"attempt {tried} failed: {error}",
                )
                # The regeneration prompt would carry the error text; the
                # next grounding candidate plays that corrected role.
                context.meter.record(
                    "self_correct", "gpt-4o",
                    f"Error: {error}\nRegenerate the SQL.", sql,
                )
                continue
            context.sql = sql
            context.attempts = attempts
            context.add_trace(
                self.name,
                f"candidate executed cleanly on attempt {tried}",
            )
            return context
        context.attempts = attempts
        context.add_trace(
            self.name,
            f"no candidate executed cleanly after {tried} attempt(s)",
        )
        return context

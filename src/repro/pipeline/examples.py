"""Operator #3: example selection (§3.1.1).

Examples associated with the classified intents are retrieved first, the
pool is widened with query-similar examples, and everything is re-ranked by
cosine similarity with the reformulated question. Selected examples carry
the idiom patterns (their decomposed fragments) that planning later turns
into pseudo-SQL, plus the columns they reference (a small grounding boost
when examples appear in the generation prompt).
"""

from __future__ import annotations

from .base import Operator


class ExampleSelectionOperator(Operator):
    name = "select_examples"

    def run(self, context):
        knowledge = context.knowledge
        config = context.config
        intent_candidates = [
            example.example_id
            for example in knowledge.examples_for_intents(context.intent_ids)
        ]
        # Widen with query-similar examples from the whole view.
        widened = knowledge.search_examples(
            context.reformulated, k=config.example_top_k * 2
        )
        pool = list(
            dict.fromkeys(
                intent_candidates + [hit.doc_id for hit in widened]
            )
        )
        ranked_pool = knowledge.search_examples(
            context.reformulated, k=len(pool) or 1, candidates=pool
        )
        context.examples = [
            knowledge.example(hit.doc_id)
            for hit in ranked_pool[: config.example_top_k]
            if knowledge.example(hit.doc_id) is not None
        ]
        # The whole ranked pool stays visible to planning: pattern evidence
        # comes from what was *retrieved*, not just what fit in the prompt.
        context.example_pool = [
            knowledge.example(hit.doc_id)
            for hit in ranked_pool
            if knowledge.example(hit.doc_id) is not None
        ]
        context.example_scores = {hit.doc_id: hit.score for hit in ranked_pool}
        context.add_trace(
            self.name,
            f"selected {len(context.examples)} examples "
            f"(pool {len(pool)})",
            kinds=[example.kind for example in context.examples],
        )
        return context

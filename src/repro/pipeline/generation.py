"""SQL generation operator (the second model call of §3.1.2).

Renders candidate SQL from the plan's grounded spec (and the grounding
alternates) with the shared builders, validates each candidate with the
static analyzer, and picks the best one — "if more than one candidate query
is generated, GenEdit picks the 'best' one". Candidates that fail analysis
are kept for the self-correction operator to work through.
"""

from __future__ import annotations

from ..sql.analyzer import Analyzer
from ..sql.errors import SqlError
from ..sql.parser import parse_cached
from .base import Operator
from .builders import build_sql
from .prompt import assemble_prompt


class GenerationOperator(Operator):
    name = "generate_sql"

    def run(self, context):
        config = context.config
        candidates = getattr(context, "grounding_candidates", [])
        if context.plan is None or not candidates:
            context.add_trace(self.name, "no plan available")
            context.candidates = []
            return context
        prompt_examples = context.examples if config.use_examples else []
        fitted = assemble_prompt(
            context.reformulated,
            context.instructions,
            prompt_examples,
            context.schema_elements,
            plan_text=context.plan.render(),
            budget_tokens=config.context_budget_tokens,
        )
        rendered = []
        seen = set()
        # Without pseudo-SQL the plan steps carry no fragments to anchor
        # alternative groundings, so only the primary candidate is viable.
        candidate_limit = (
            max(config.candidate_count, 1) + 2
            if config.use_pseudo_sql else 1
        )
        for candidate in candidates[:candidate_limit]:
            try:
                sql = build_sql(candidate.spec)
            except Exception as error:  # malformed spec -> skip candidate
                context.add_trace(
                    self.name, f"candidate build failed: {error}"
                )
                continue
            if sql not in seen:
                seen.add(sql)
                rendered.append(sql)
        context.candidates = rendered
        context.meter.record(
            "generate_sql",
            "gpt-4o",
            fitted.prompt,
            rendered[0] if rendered else "",
        )
        analyzer = Analyzer(context.database)
        chosen = None
        for sql in rendered:
            issues = self._analyze(analyzer, sql)
            if not issues:
                chosen = sql
                break
        if chosen is None and rendered:
            chosen = rendered[0]
        context.sql = chosen or ""
        context.add_trace(
            self.name,
            f"{len(rendered)} candidate(s); selected "
            f"{'analyzer-clean' if chosen and not self._analyze(analyzer, chosen) else 'first'} candidate",
        )
        return context

    def _analyze(self, analyzer, sql):
        try:
            query = parse_cached(sql)
        except SqlError as error:
            return [str(error)]
        return analyzer.analyze(query)

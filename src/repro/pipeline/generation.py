"""SQL generation operator (the second model call of §3.1.2).

Renders candidate SQL from the plan's grounded spec (and the grounding
alternates) with the shared builders, lints every candidate with the
diagnostics engine, and picks the one with the best severity-weighted
score — "if more than one candidate query is generated, GenEdit picks the
'best' one". Each candidate's diagnostics are stashed on the context so
the self-correction operator can reuse them without re-analyzing.
"""

from __future__ import annotations

from ..sql.diagnostics import DiagnosticsEngine, severity_score
from .base import Operator, Plan
from .builders import build_sql
from .plan_lint import lint_plan, plan_error_score
from .planning import build_plan_steps
from .prompt import assemble_prompt


class GenerationOperator(Operator):
    name = "generate_sql"

    def __init__(self, llm=None):
        # Same model-threading contract as SelfCorrectionOperator: meter
        # records follow the pipeline's configured model.
        self._llm = llm

    @property
    def _model(self):
        if self._llm is not None:
            return getattr(self._llm, "model", "gpt-4o")
        return "gpt-4o"

    def run(self, context):
        config = context.config
        candidates = getattr(context, "grounding_candidates", [])
        if context.plan is None or not candidates:
            context.add_trace(self.name, "no plan available")
            context.candidates = []
            return context
        prompt_examples = context.examples if config.use_examples else []
        fitted = assemble_prompt(
            context.reformulated,
            context.instructions,
            prompt_examples,
            context.schema_elements,
            plan_text=context.plan.render(),
            budget_tokens=config.context_budget_tokens,
        )
        rendered = []
        seen = set()
        spec_by_sql = {}
        # Without pseudo-SQL the plan steps carry no fragments to anchor
        # alternative groundings, so only the primary candidate is viable.
        candidate_limit = (
            max(config.candidate_count, 1) + 2
            if config.use_pseudo_sql else 1
        )
        for candidate in candidates[:candidate_limit]:
            try:
                sql = build_sql(candidate.spec)
            except Exception as error:  # malformed spec -> skip candidate
                context.add_trace(
                    self.name, f"candidate build failed: {error}"
                )
                continue
            if sql not in seen:
                seen.add(sql)
                rendered.append(sql)
                spec_by_sql[sql] = candidate.spec
        context.candidates = rendered
        context.meter.record(
            "generate_sql",
            self._model,
            fitted.prompt,
            rendered[0] if rendered else "",
        )
        # Lint once per candidate; selection and the trace reuse the same
        # diagnostics (previously the chosen candidate was analyzed twice).
        engine = DiagnosticsEngine(context.database)
        scored = []
        for index, sql in enumerate(rendered):
            diagnostics = engine.run_sql(sql)
            context.candidate_diagnostics[sql] = diagnostics
            plan_findings = self._plan_findings(context, spec_by_sql[sql])
            context.candidate_plan_findings[sql] = plan_findings
            scored.append((
                severity_score(diagnostics),
                plan_error_score(plan_findings),
                index,
                sql,
            ))
        if scored:
            best_score, best_plan_score, best_index, chosen = min(scored)
            context.sql = chosen
            summary = (
                f"{len(rendered)} candidate(s); selected #{best_index + 1} "
                f"with lint score {best_score}"
            )
            if best_plan_score:
                summary += f", plan score {best_plan_score}"
            context.add_trace(self.name, summary)
        else:
            context.sql = ""
            context.add_trace(self.name, "0 candidate(s); nothing selected")
        return context

    def _plan_findings(self, context, spec):
        """GP0xx findings for the plan a candidate spec renders to.

        The primary candidate's plan is the context plan the ``lint_plan``
        operator already checked; alternates get a plan built from their
        own spec so grounding errors rank them behind the primary.
        """
        plan = context.plan
        if plan is not None and spec is plan.spec:
            return list(context.plan_findings)
        try:
            steps = build_plan_steps(
                spec, use_pseudo_sql=context.config.use_pseudo_sql
            )
        except Exception:  # malformed spec — the build above caught worse
            return []
        return lint_plan(
            Plan(steps=steps, spec=spec),
            context.database,
            context.schema_elements or None,
        )

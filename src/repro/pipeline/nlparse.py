"""Surface analysis of natural-language questions.

:func:`parse_question` performs context-free *surface* parsing: it slices a
question into metric / grouping / filter / ranking phrases without knowing
anything about the schema. Grounding those phrases against the retrieved
knowledge (columns, terms, patterns) happens later in the simulated LLM —
that split mirrors how an actual LLM's language competence is separate from
the context it is given, and it concentrates all accuracy-relevant failure
modes in grounding, where the knowledge set can help or hurt.

The grammar covers the workload's closed question language (see
``repro.bench.workloads``): aggregates, counts, group-bys with HAVING,
top-k (one- and both-ended), share-of-total, listings, quarter-over-quarter
deltas, and term-metric questions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

KIND_AGGREGATE = "aggregate"
KIND_COUNT = "count"
KIND_GROUP_AGG = "group_aggregate"
KIND_TOPK = "topk"
KIND_BOTH_ENDS = "both_ends"
KIND_SHARE = "share_of_total"
KIND_LISTING = "listing"
KIND_DELTA = "quarter_delta"

_AGG_WORDS = {
    "total": "SUM",
    "average": "AVG",
    "mean": "AVG",
    "highest": "MAX",
    "maximum": "MAX",
    "lowest": "MIN",
    "minimum": "MIN",
}

_CMP_WORDS = {
    "above": ">",
    "over": ">",
    "below": "<",
    "under": "<",
    "at least": ">=",
    "at most": "<=",
}


@dataclass
class ParsedQuestion:
    """Structured surface form of one question."""

    kind: str = KIND_AGGREGATE
    metric_agg: str = ""          # SUM/AVG/MAX/MIN/COUNT/COUNT_DISTINCT/TERM
    metric_phrase: str = ""       # column phrase or term surface
    group_phrase: str = ""
    entity_phrase: str = ""
    adjectives: tuple = ()        # guideline adjectives ("online", "our", ...)
    eq_filters: tuple = ()        # ((column phrase, value text), ...)
    value_filters: tuple = ()     # bare values ("Canada", ...)
    cmp_filters: tuple = ()       # ((column phrase, op, number), ...)
    having: tuple = ()            # ((agg, column phrase, op, number), ...)
    quarter: tuple = ()           # (year, quarter) or ()
    year: int | None = None
    k: int | None = None
    both_ends: bool = False
    descending: bool = True
    delta_direction: str = ""     # "increase" | "drop" for quarter deltas
    projection_phrases: tuple = ()
    order_phrase: str = ""
    leftover: str = ""            # unconsumed text (diagnostics)
    raw: str = ""


_CANONICAL_PREFIX = re.compile(
    r"^(show me|what is|what are|which|how many|list|identify|give me|find)\b[ ,]*",
    re.IGNORECASE,
)


def canonicalize(question):
    """Rewrite a question into the canonical 'Show me ...' form (operator #1).

    'How many X ...' becomes 'Show me the number of X ...'. The canonical
    form is what the rest of the pipeline parses.
    """
    text = question.strip().rstrip(".?!").strip()
    match = _CANONICAL_PREFIX.match(text)
    if match is None:
        return f"Show me {text}"
    verb = match.group(1).lower()
    rest = text[match.end():].strip()
    if verb == "how many":
        return f"Show me the number of {rest}"
    if not rest.lower().startswith("the ") and not rest.lower().startswith(
        ("our ", "top ", "a ", "an ")
    ):
        rest = f"the {rest}"
    return f"Show me {rest}"


def parse_question(question):
    """Parse a (canonical or raw) question into a :class:`ParsedQuestion`."""
    parsed = ParsedQuestion(raw=question)
    text = canonicalize(question)
    body = re.sub(r"^show me\s+", "", text, flags=re.IGNORECASE).strip()
    body = _extract_filters(body, parsed)
    body = body.strip().strip(",").strip()
    _parse_body(body, parsed)
    return parsed


# ---------------------------------------------------------------------------
# filter extraction
# ---------------------------------------------------------------------------

_QUARTER = re.compile(r"\bfor q([1-4])\s+(\d{4})\b", re.IGNORECASE)
_YEAR = re.compile(r"\bin (\d{4})\b")
_SINCE = re.compile(r"\bsince (\d{4})\b")
_EQ = re.compile(
    r"\b(?:where|and) the ([\w %-]+?) is ([\w .'-]+?)"
    r"(?=,| and | where | for | in |$)",
    re.IGNORECASE,
)
_CMP = re.compile(
    r"\bwith (?:an? |the )?([\w %-]+?) (above|over|below|under|at least|at most) "
    r"([\d.]+)\b",
    re.IGNORECASE,
)
_HAVING = re.compile(
    r",? (?:but )?only \w+ (?:with|whose) (total|average|number of|count of) "
    r"([\w %-]+?) (above|over|below|under|at least|at most) ([\d.]+)",
    re.IGNORECASE,
)
_VALUE_IN = re.compile(r"\bin ([A-Z][\w'-]*(?: [A-Z][\w'-]*)*)")


def _extract_filters(body, parsed):
    having = []

    def grab_having(match):
        agg_word = match.group(1).lower()
        agg = "COUNT" if "count" in agg_word or "number" in agg_word else (
            "SUM" if agg_word == "total" else "AVG"
        )
        having.append(
            (agg, match.group(2).strip().lower(),
             _CMP_WORDS[match.group(3).lower()], _number(match.group(4)))
        )
        return " "

    body = _HAVING.sub(grab_having, body)
    parsed.having = tuple(having)

    quarter = _QUARTER.search(body)
    if quarter:
        parsed.quarter = (int(quarter.group(2)), int(quarter.group(1)))
        body = _QUARTER.sub(" ", body)

    eq_filters = []

    def grab_eq(match):
        eq_filters.append(
            (match.group(1).strip().lower(), match.group(2).strip())
        )
        return " "

    body = _EQ.sub(grab_eq, body)
    parsed.eq_filters = tuple(eq_filters)

    cmp_filters = []

    def grab_cmp(match):
        cmp_filters.append(
            (
                match.group(1).strip().lower(),
                _CMP_WORDS[match.group(2).lower()],
                _number(match.group(3)),
            )
        )
        return " "

    body = _CMP.sub(grab_cmp, body)
    parsed.cmp_filters = tuple(cmp_filters)

    year = _YEAR.search(body)
    if year:
        parsed.year = int(year.group(1))
        body = _YEAR.sub(" ", body)
    since = _SINCE.search(body)
    if since:
        parsed.cmp_filters = parsed.cmp_filters + (
            ("__year__", ">=", int(since.group(1))),
        )
        body = _SINCE.sub(" ", body)

    values = []

    def grab_value(match):
        values.append(match.group(1).strip())
        return " "

    body = _VALUE_IN.sub(grab_value, body)
    parsed.value_filters = tuple(values)

    return re.sub(r"\s+", " ", body)


def _number(text):
    value = float(text)
    return int(value) if value.is_integer() else value


# ---------------------------------------------------------------------------
# body parsing
# ---------------------------------------------------------------------------

_BOTH_ENDS = re.compile(
    r"^(?:the )?(?:our )?(\d+) ([\w %-]+?) with the best and worst ([\w %-]+)$",
    re.IGNORECASE,
)
_TOPK = re.compile(
    r"^the (top|bottom) (\d+) ([\w %-]+?) by ([\w %-]+)$", re.IGNORECASE
)
_SHARE = re.compile(
    r"^the share of total ([\w %-]+?) per ([\w %-]+)$", re.IGNORECASE
)
_DELTA = re.compile(
    r"^the (\d+) ([\w %-]+?) with the largest (increase|drop) in "
    r"([\w %-]+?) versus the previous quarter$",
    re.IGNORECASE,
)
_GROUPED = re.compile(
    r"^the (.+?) (?:per|for each) ([\w %-]+)$", re.IGNORECASE
)
_COUNT = re.compile(r"^the number of (distinct )?(.+)$", re.IGNORECASE)
_LISTING = re.compile(
    r"^the ((?:[\w %-]+?)(?:, [\w %-]+?)*(?: and [\w %-]+?)?) of "
    r"(?:the )?(.+?)(?:, ordered by ([\w %-]+?) from "
    r"(highest to lowest|lowest to highest))?(?:, top (\d+))?$",
    re.IGNORECASE,
)


def _parse_body(body, parsed):
    match = _BOTH_ENDS.match(body)
    if match:
        parsed.kind = KIND_BOTH_ENDS
        parsed.k = int(match.group(1))
        parsed.entity_phrase, parsed.adjectives = _strip_adjectives(
            match.group(2)
        )
        if parsed.raw and re.search(r"\bour\b", parsed.raw, re.IGNORECASE):
            parsed.adjectives = parsed.adjectives + ("our",)
        parsed.metric_agg, parsed.metric_phrase = _parse_metric(match.group(3))
        parsed.both_ends = True
        return
    match = _DELTA.match(body)
    if match:
        parsed.kind = KIND_DELTA
        parsed.k = int(match.group(1))
        parsed.group_phrase = _singular(match.group(2).strip().lower())
        parsed.delta_direction = match.group(3).lower()
        parsed.metric_agg, parsed.metric_phrase = _parse_metric(match.group(4))
        return
    match = _TOPK.match(body)
    if match:
        parsed.kind = KIND_TOPK
        parsed.descending = match.group(1).lower() == "top"
        parsed.k = int(match.group(2))
        parsed.group_phrase = _singular(match.group(3).strip().lower())
        parsed.metric_agg, parsed.metric_phrase = _parse_metric(match.group(4))
        return
    match = _SHARE.match(body)
    if match:
        parsed.kind = KIND_SHARE
        parsed.metric_agg, parsed.metric_phrase = _parse_metric(
            "total " + match.group(1)
        )
        parsed.group_phrase = _singular(match.group(2).strip().lower())
        return
    match = _GROUPED.match(body)
    if match:
        head = match.group(1).strip()
        count = _COUNT.match("the " + head)
        parsed.kind = KIND_GROUP_AGG
        if count:
            _fill_count(count, parsed)
        else:
            parsed.metric_agg, parsed.metric_phrase = _parse_metric(head)
        parsed.group_phrase = _singular(match.group(2).strip().lower())
        return
    match = _COUNT.match(body)
    if match:
        parsed.kind = KIND_COUNT
        _fill_count(match, parsed)
        return
    listing = _LISTING.match(body)
    if (
        listing
        and (" of " in body)
        and not _looks_like_metric(listing.group(1))
        and (
            len(re.split(r", | and ", listing.group(1))) >= 2
            or listing.group(3)
        )
    ):
        parsed.kind = KIND_LISTING
        columns = re.split(r", | and ", listing.group(1))
        parsed.projection_phrases = tuple(
            phrase.strip().lower() for phrase in columns if phrase.strip()
        )
        parsed.entity_phrase, parsed.adjectives = _strip_adjectives(
            listing.group(2)
        )
        if listing.group(3):
            parsed.order_phrase = listing.group(3).strip().lower()
            parsed.descending = (
                listing.group(4).lower() == "highest to lowest"
            )
        if listing.group(5):
            parsed.k = int(listing.group(5))
        return
    parsed.kind = KIND_AGGREGATE
    head = re.sub(r"^the ", "", body, flags=re.IGNORECASE)
    parsed.metric_agg, parsed.metric_phrase = _parse_metric(head)
    # 'total revenue of our organisations' — split the entity off the
    # metric phrase so adjectives and entity grounding still work.
    if " of " in parsed.metric_phrase:
        metric_part, entity_part = parsed.metric_phrase.split(" of ", 1)
        parsed.metric_phrase = metric_part.strip()
        parsed.entity_phrase, parsed.adjectives = _strip_adjectives(
            entity_part
        )
    parsed.leftover = ""


def _fill_count(match, parsed):
    entity = match.group(2).strip()
    if match.group(1):
        parsed.metric_agg = "COUNT_DISTINCT"
        parsed.metric_phrase = entity.lower()
    else:
        parsed.metric_agg = "COUNT"
        parsed.entity_phrase, parsed.adjectives = _strip_adjectives(entity)


def _parse_metric(phrase):
    """Split 'total revenue' into ('SUM', 'revenue'); terms parse as TERM."""
    words = phrase.strip().lower().split()
    if not words:
        return "TERM", phrase.strip().lower()
    if words[0] in _AGG_WORDS and len(words) > 1:
        return _AGG_WORDS[words[0]], " ".join(words[1:])
    if words[0] == "number" and len(words) > 2 and words[1] == "of":
        if words[2] == "distinct":
            return "COUNT_DISTINCT", " ".join(words[3:])
        return "COUNT", " ".join(words[2:])
    return "TERM", " ".join(words)


def _looks_like_metric(phrase):
    """True when a candidate projection list reads as a metric phrase."""
    first = phrase.strip().lower().split()
    if not first:
        return False
    return first[0] in _AGG_WORDS or (
        len(first) > 1 and first[0] == "number" and first[1] == "of"
    )


_TRAILING_VERBS = frozenset({"are", "is", "was", "were", "there", "do", "does"})


def _strip_adjectives(entity_phrase):
    """Split leading qualifier words off an entity phrase.

    'our online orders' -> ('orders', ('our', 'online')). Any leading word
    is treated as a candidate adjective when the remaining phrase is still
    non-empty; grounding decides later whether an adjective is a guideline
    term, part of the entity name, or noise.
    """
    words = entity_phrase.strip().lower().replace("the ", "", 1).split()
    while words and words[-1] in _TRAILING_VERBS:
        words.pop()
    adjectives = []
    while len(words) > 1 and words[0] in _KNOWN_ADJECTIVES:
        adjectives.append(words.pop(0))
    return _singular(" ".join(words)), tuple(adjectives)


#: Guideline adjectives used across the workloads. Grounding still needs a
#: matching instruction to translate one into a predicate; this set only
#: tells the surface parser what can be split off an entity phrase.
_KNOWN_ADJECTIVES = frozenset(
    {
        "our", "online", "urgent", "honor", "long", "renewable",
        "completed", "returned", "express", "recovered", "passed",
        "active", "controlled",
        # company-colloquial adjectives that may lack a guideline entry
        "flagship", "storied", "premium", "discounted", "senior",
        "uninsured", "veteran", "advanced", "overnight", "heavy",
        "legacy", "compact",
    }
)


def _singular(phrase):
    """Light singularisation of an entity/group phrase."""
    words = phrase.split()
    if not words:
        return phrase
    last = words[-1]
    if last.endswith("ies") and len(last) > 4:
        last = last[:-3] + "y"
    elif last.endswith(("sses", "ches", "shes", "xes", "zes")):
        last = last[:-2]
    elif (
        last.endswith("s")
        and not last.endswith(("ss", "us"))
        and len(last) > 3
    ):
        last = last[:-1]
    words[-1] = last
    return " ".join(words)

"""Operator #4: instruction selection with context expansion (§3.1.1).

Instructions are retrieved per intent and similarity like examples, but the
re-ranking query is *expanded with the selected examples* — the compounding
step the paper highlights: "the selection of these examples informs that of
relevant instructions". With ``use_context_expansion`` off, plain query
similarity is used (how flat-retrieval baselines behave).
"""

from __future__ import annotations

from .base import Operator


class InstructionSelectionOperator(Operator):
    name = "select_instructions"

    def run(self, context):
        config = context.config
        if not config.use_instructions:
            context.instructions = []
            context.add_trace(self.name, "disabled (ablation)")
            return context
        knowledge = context.knowledge
        intent_candidates = [
            instruction.instruction_id
            for instruction in knowledge.instructions_for_intents(
                context.intent_ids
            )
        ]
        widened = knowledge.search_instructions(
            context.reformulated, k=config.instruction_top_k * 2
        )
        pool = list(
            dict.fromkeys(
                intent_candidates + [hit.doc_id for hit in widened]
            )
        )
        extra_text = ""
        if config.use_context_expansion and context.examples:
            extra_text = "\n".join(
                example.description for example in context.examples[:4]
            )
        hits = knowledge.search_instructions(
            context.reformulated,
            k=config.instruction_top_k,
            candidates=pool,
            extra_text=extra_text,
        )
        context.instructions = [
            knowledge.instruction(hit.doc_id)
            for hit in hits
            if knowledge.instruction(hit.doc_id) is not None
        ]
        # Term definitions are exact-match anchors: an instruction whose
        # term appears verbatim in the question must reach the prompt even
        # when similarity re-ranking favours other components (this is how
        # freshly merged feedback definitions take effect immediately).
        lowered = context.reformulated.lower().replace("-", " ")
        selected_ids = {
            instruction.instruction_id
            for instruction in context.instructions
        }
        for term, instruction in knowledge.term_definitions().items():
            if instruction.instruction_id in selected_ids:
                continue
            if term.replace("-", " ") in lowered:
                context.instructions.append(instruction)
                selected_ids.add(instruction.instruction_id)
        context.add_trace(
            self.name,
            f"selected {len(context.instructions)} instructions "
            f"(expansion={'on' if extra_text else 'off'})",
            terms=[
                instruction.term
                for instruction in context.instructions
                if instruction.term
            ],
        )
        return context

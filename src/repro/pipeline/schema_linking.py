"""Operator #5: schema linking (§3.1.1).

Uses the cheaper model (GPT-4o-mini in the paper) to identify relevant
schema elements, then re-ranks/filters them to manage the generation
context. When disabled (the Table 2 ablation), the *entire* schema flows
into the prompt in catalog order — ambiguous surfaces then resolve by
catalog order, and wide schemas overflow the context budget.
"""

from __future__ import annotations

import dataclasses

from .base import Operator


class SchemaLinkingOperator(Operator):
    name = "link_schema"

    def __init__(self, llm):
        self._llm = llm

    def run(self, context):
        knowledge = context.knowledge
        all_elements = knowledge.schema_elements()
        if not context.config.use_value_profiles:
            # Systems without database access see the catalog only — no
            # top-value lists to anchor literal grounding.
            all_elements = [
                dataclasses.replace(element, top_values=())
                for element in all_elements
            ]
        if not context.config.use_schema_linking:
            context.schema_elements = list(all_elements)
            context.add_trace(
                self.name,
                f"disabled (ablation): passing full schema "
                f"({len(all_elements)} elements, catalog order)",
            )
            return context
        # Intent-scoped candidates first (compounding), then the full
        # catalog so cross-intent questions can still link what they need.
        by_id = {element.element_id: element for element in all_elements}
        intent_scoped = knowledge.schema_for_intents(context.intent_ids)
        ordered = list(
            dict.fromkeys(
                [element.element_id for element in intent_scoped]
                + [element.element_id for element in all_elements]
            )
        )
        candidates = [by_id[eid] for eid in ordered if eid in by_id]
        # Context expansion (§3.1.1): the selected examples and instructions
        # inform schema linking — columns they reference must stay linkable.
        linking_query = context.reformulated
        if context.config.use_context_expansion:
            expansion = []
            for instruction in context.instructions:
                expansion.append(instruction.text)
                if instruction.sql_pattern:
                    expansion.append(instruction.sql_pattern)
            for example in context.examples[:4]:
                expansion.append(" ".join(example.columns))
            if expansion:
                linking_query = linking_query + "\n" + "\n".join(expansion)
        context.schema_elements = self._llm.link_schema(
            linking_query,
            candidates,
            k=context.config.schema_top_k,
            meter=context.meter,
        )
        context.add_trace(
            self.name,
            f"linked {len(context.schema_elements)} schema elements",
            elements=[
                element.qualified_name
                for element in context.schema_elements[:8]
            ],
        )
        return context

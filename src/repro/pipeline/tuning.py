"""Budget-parametrized pipelines (the paper's §5 extension).

The related-work section suggests extending GenEdit "by getting feedback on
latency or specifying a dollar cost and parametrizing GenEdit pipelines
differently". This module implements that: three configuration tiers with
predicted per-question cost/latency (from the simulated model price sheet),
and :func:`configure_for_budget`, which picks the best tier within a
dollar and/or latency budget.

Tiers trade retrieval depth, candidate count, and self-correction rounds —
the knobs that multiply model calls:

* ``quality`` — the deployed defaults (two 4o calls + retries, deep
  retrieval);
* ``balanced`` — fewer candidates and retries, slimmer retrieval;
* ``economy`` — single candidate, no retries, minimal retrieval depth and
  a tighter context budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..llm.interface import GPT_4O, GPT_4O_MINI
from .config import DEFAULT_CONFIG, PipelineConfig

#: Representative token volumes of one question's operator calls, measured
#: on the benchmark workload (see EXPERIMENTS.md). Used only for *predicted*
#: cost; actual cost is metered per run.
_TYPICAL_PROMPT_TOKENS = {
    "reformulate": 60,
    "classify_intents": 120,
    "link_schema": 260,
    "plan": 900,
    "generate_sql": 1100,
    "self_correct": 300,
}
_TYPICAL_OUTPUT_TOKENS = {
    "reformulate": 25,
    "classify_intents": 15,
    "link_schema": 120,
    "plan": 160,
    "generate_sql": 140,
    "self_correct": 140,
}


@dataclass(frozen=True)
class PipelineTier:
    """One point on the cost/quality frontier."""

    name: str
    config: PipelineConfig
    description: str

    @property
    def predicted_cost_usd(self):
        return estimate_cost(self.config)

    @property
    def predicted_latency_ms(self):
        return estimate_latency(self.config)


def _call_plan(config):
    """(operator, model, count) triples one question is expected to make."""
    calls = [
        ("reformulate", GPT_4O, 1 if config.use_reformulation else 0),
        (
            "classify_intents", GPT_4O,
            1 if config.use_intent_classification else 0,
        ),
        ("link_schema", GPT_4O_MINI, 1 if config.use_schema_linking else 0),
        ("plan", GPT_4O, 1),
        ("generate_sql", GPT_4O, 1),
        # Self-correction fires on a minority of questions; budget for the
        # configured ceiling at a 30% expected trigger rate.
        ("self_correct", GPT_4O, 0.3 * config.max_retries),
    ]
    return calls


def estimate_cost(config):
    """Predicted per-question dollar cost of a configuration."""
    scale = config.context_budget_tokens / DEFAULT_CONFIG.context_budget_tokens
    total = 0.0
    for operator, model, count in _call_plan(config):
        prompt_tokens = _TYPICAL_PROMPT_TOKENS[operator]
        if operator in ("plan", "generate_sql"):
            prompt_tokens *= scale
        total += count * (
            prompt_tokens * model.input_cost_per_million
            + _TYPICAL_OUTPUT_TOKENS[operator] * model.output_cost_per_million
        ) / 1_000_000
    return total


def estimate_latency(config):
    """Predicted per-question latency (ms) of a configuration."""
    return sum(
        count * model.latency_ms_per_call
        for _operator, model, count in _call_plan(config)
    )


QUALITY = PipelineTier(
    name="quality",
    config=DEFAULT_CONFIG,
    description="deployed defaults: deep retrieval, candidates, retries",
)

BALANCED = PipelineTier(
    name="balanced",
    config=replace(
        DEFAULT_CONFIG,
        example_top_k=6,
        instruction_top_k=3,
        schema_top_k=18,
        candidate_count=1,
        max_retries=1,
    ),
    description="fewer candidates/retries, slimmer retrieval",
)

ECONOMY = PipelineTier(
    name="economy",
    config=replace(
        DEFAULT_CONFIG,
        use_reformulation=False,
        example_top_k=4,
        instruction_top_k=2,
        schema_top_k=12,
        candidate_count=1,
        max_retries=0,
        context_budget_tokens=800,
    ),
    description="single candidate, no retries, minimal context",
)

TIERS = (QUALITY, BALANCED, ECONOMY)


def configure_for_budget(max_cost_usd=None, max_latency_ms=None):
    """Pick the highest-quality tier whose predictions fit the budget.

    Returns the chosen :class:`PipelineTier`. With no constraints the
    quality tier wins; an unsatisfiable budget returns the economy tier
    (the cheapest we can offer) — callers can inspect its predictions to
    decide whether to proceed.
    """
    for tier in TIERS:
        if max_cost_usd is not None and tier.predicted_cost_usd > max_cost_usd:
            continue
        if max_latency_ms is not None and (
            tier.predicted_latency_ms > max_latency_ms
        ):
            continue
        return tier
    return ECONOMY

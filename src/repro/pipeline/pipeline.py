"""GenEdit's SQL generation pipeline (Fig. 1, inference phase).

Wires the operators in order — reformulation, intent classification,
example selection, instruction selection, schema linking, CoT planning, SQL
generation, self-correction — and exposes :meth:`GenEditPipeline.generate`.
"""

from __future__ import annotations

from ..engine.errors import ExecutionError
from ..engine.executor import Executor
from ..llm.simulated import SimulatedLLM
from ..obs.metrics import get_metrics
from ..sql.errors import SqlError
from .base import GenerationResult, PipelineContext
from .config import DEFAULT_CONFIG
from .correction import SelfCorrectionOperator
from .examples import ExampleSelectionOperator
from .generation import GenerationOperator
from .instructions import InstructionSelectionOperator
from .intents import IntentClassificationOperator
from .planning import PlanningOperator
from .reformulate import ReformulateOperator
from .schema_linking import SchemaLinkingOperator


class GenEditPipeline:
    """The deployed GenEdit generation pipeline."""

    def __init__(self, database, knowledge, config=None, llm=None):
        self.database = database
        self.knowledge = knowledge
        self.config = config or DEFAULT_CONFIG
        self.llm = llm or SimulatedLLM()
        self.operators = [
            ReformulateOperator(self.llm),
            IntentClassificationOperator(self.llm),
            ExampleSelectionOperator(),
            InstructionSelectionOperator(),
            SchemaLinkingOperator(self.llm),
            PlanningOperator(self.llm),
            GenerationOperator(),
            SelfCorrectionOperator(),
        ]

    def generate(self, question, config=None):
        """Generate SQL for ``question`` and return a GenerationResult.

        The whole run executes under a root ``generate`` span on the
        context's tracer, with one child span per operator and a
        ``final_check`` span around the closing execution — export the tree
        with :meth:`GenerationResult.trace_records`. Per-operator wall time
        feeds the process-wide metrics registry.
        """
        context = PipelineContext(
            question=question,
            database=self.database,
            knowledge=self.knowledge,
            config=config or self.config,
        )
        metrics = get_metrics()
        with context.span(
            "generate",
            question=question,
            database=getattr(self.database, "name", str(self.database)),
        ) as root:
            for operator in self.operators:
                with context.span(operator.name) as span:
                    operator.run(context)
                metrics.observe(
                    "pipeline.operator_ms", span.duration_ms,
                    operator=operator.name,
                )
            with context.span("final_check") as check:
                success, error = self._final_check(context)
                check.set_attr("success", success)
                if error:
                    check.set_attr("error_text", error)
            root.set_attr("success", success)
            root.set_attr("attempts", len(context.attempts))
            root.inc_attr("llm.cost_usd", context.meter.total_cost_usd)
        metrics.inc("pipeline.runs")
        metrics.observe("pipeline.generate_ms", root.duration_ms)
        return GenerationResult(
            question=question,
            sql=context.sql,
            plan=context.plan,
            success=success,
            trace=context.trace,
            context=context,
            error=error,
        )

    def execute(self, sql):
        """Run SQL on the pipeline's database (used by UIs and examples)."""
        return Executor(self.database).execute(sql)

    def _final_check(self, context):
        if not context.sql:
            return False, "no SQL generated"
        try:
            Executor(context.database).execute(context.sql)
        except (SqlError, ExecutionError) as error:
            return False, str(error)
        return True, ""

"""GenEdit's SQL generation pipeline (Fig. 1, inference phase).

Wires the operators in order — reformulation, intent classification,
example selection, instruction selection, schema linking, CoT planning, SQL
generation, self-correction — and exposes :meth:`GenEditPipeline.generate`.

Resilience (DESIGN.md §6c): the LLM is always wrapped in a
:class:`~repro.resilience.ResilientLLM` (retry/backoff/timeout per the
pipeline's :class:`~repro.resilience.RetryPolicy`; transparent when nothing
fails), and :meth:`GenEditPipeline.generate` never lets an operator
exception escape. Optional operators fail *soft*: their fallback leaves a
degraded-but-usable context, recorded on the operator span
(``degraded=true`` + reason) and in the metrics registry. Required
operators (schema linking, planning, generation) exhaust their retries and
then surface a failed :class:`~repro.pipeline.base.GenerationResult` with
the error text — the harness records an outcome either way.
:meth:`enable_faults` arms seed-deterministic chaos for tests and the
``--faults`` harness flag.
"""

from __future__ import annotations

from ..engine.errors import ExecutionError
from ..engine.executor import Executor
from ..llm.simulated import SimulatedLLM
from ..obs.metrics import get_metrics
from ..resilience import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultyExecutor,
    FaultyLLM,
    ResilientLLM,
)
from ..sql.errors import SqlError
from .base import GenerationResult, PipelineContext, operator_output_digest
from .config import DEFAULT_CONFIG
from .correction import SelfCorrectionOperator
from .examples import ExampleSelectionOperator
from .generation import GenerationOperator
from .instructions import InstructionSelectionOperator
from .intents import IntentClassificationOperator
from .plan_lint import PlanLintOperator
from .planning import PlanningOperator
from .reformulate import ReformulateOperator
from .schema_linking import SchemaLinkingOperator


def _degrade_reformulate(context):
    context.reformulated = context.question


def _degrade_intents(context):
    context.intent_ids = []


def _degrade_examples(context):
    context.examples = []
    context.example_pool = []
    context.example_scores = {}


def _degrade_instructions(context):
    context.instructions = []


def _degrade_plan_lint(context):
    # Generation proceeds without plan findings; candidate ranking falls
    # back to GE diagnostics alone.
    context.plan_findings = []


def _degrade_self_correct(context):
    # The generated candidate stands un-corrected; the final check still
    # decides whether the run succeeded.
    pass


#: Degradation matrix: optional operators and the fallback that leaves the
#: context usable when they fail. Operators absent here (schema linking,
#: planning, generation) are required — their failure fails the run.
DEGRADATIONS = {
    "reformulate": _degrade_reformulate,
    "classify_intents": _degrade_intents,
    "select_examples": _degrade_examples,
    "select_instructions": _degrade_instructions,
    "lint_plan": _degrade_plan_lint,
    "self_correct": _degrade_self_correct,
}


class GenEditPipeline:
    """The deployed GenEdit generation pipeline."""

    def __init__(self, database, knowledge, config=None, llm=None,
                 retry_policy=None, fault_injector=None):
        self.database = database
        self.knowledge = knowledge
        self.config = config or DEFAULT_CONFIG
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.fault_injector = None
        self._base_llm = llm or SimulatedLLM()
        self.llm = ResilientLLM(self._base_llm, self.retry_policy)
        self.operators = self._build_operators()
        if fault_injector is not None:
            self.enable_faults(injector=fault_injector)

    def _build_operators(self):
        return [
            ReformulateOperator(self.llm),
            IntentClassificationOperator(self.llm),
            ExampleSelectionOperator(),
            InstructionSelectionOperator(),
            SchemaLinkingOperator(self.llm),
            PlanningOperator(self.llm),
            PlanLintOperator(),
            GenerationOperator(self.llm),
            SelfCorrectionOperator(self.llm),
        ]

    def enable_faults(self, config=None, scope="", injector=None):
        """Arm deterministic fault injection on this pipeline.

        Pass either a :class:`~repro.resilience.FaultConfig` (an injector
        scoped to ``scope`` or the database name is built) or a ready
        :class:`~repro.resilience.FaultInjector`. The LLM is re-wrapped as
        retry(fault(llm)) and the operators rebuilt around it; the
        executors used by self-correction and the final check inject
        through the same injector. Returns the injector.
        """
        if injector is None:
            if config is None:
                raise ValueError("enable_faults needs a config or injector")
            injector = FaultInjector(
                config,
                scope=scope or getattr(self.database, "name", ""),
            )
        self.fault_injector = injector
        self.llm = ResilientLLM(
            FaultyLLM(self._base_llm, injector), self.retry_policy
        )
        self.operators = self._build_operators()
        return injector

    def _make_executor(self, database):
        executor = Executor(database)
        if self.fault_injector is not None:
            executor = FaultyExecutor(executor, self.fault_injector)
        return executor

    def generate(self, question, config=None):
        """Generate SQL for ``question`` and return a GenerationResult.

        The whole run executes under a root ``generate`` span on the
        context's tracer, with one child span per operator and a
        ``final_check`` span around the closing execution — export the tree
        with :meth:`GenerationResult.trace_records`. Per-operator wall time
        feeds the process-wide metrics registry.

        Operator exceptions never escape: optional operators degrade (see
        :data:`DEGRADATIONS`), required ones end the run as a failed
        result whose ``error`` names the operator and the exception.
        """
        context = PipelineContext(
            question=question,
            database=self.database,
            knowledge=self.knowledge,
            config=config or self.config,
        )
        context.executor_factory = self._make_executor
        metrics = get_metrics()
        with context.span(
            "generate",
            question=question,
            database=getattr(self.database, "name", str(self.database)),
        ) as root:
            failure_text = ""
            for operator in self.operators:
                with context.span(operator.name) as span:
                    try:
                        operator.run(context)
                    except Exception as error:
                        reason = f"{type(error).__name__}: {error}"
                        if operator.name in DEGRADATIONS:
                            self._degrade(context, operator.name, span,
                                          reason, metrics)
                        else:
                            context.failed_operator = operator.name
                            failure_text = f"{operator.name}: {reason}"
                            span.status = "error"
                            span.error = reason
                    if not context.failed_operator:
                        # Digest the operator's (possibly degraded) output
                        # for the run ledger's first-divergence attribution.
                        digest = operator_output_digest(operator.name, context)
                        span.set_attr("digest", digest)
                        context.operator_digests.append(
                            (operator.name, digest)
                        )
                metrics.observe(
                    "pipeline.operator_ms", span.duration_ms,
                    operator=operator.name,
                )
                if context.failed_operator:
                    break
            if context.failed_operator:
                success, error = False, failure_text
                metrics.inc(
                    "pipeline.failed_runs", operator=context.failed_operator
                )
                root.set_attr("failed_operator", context.failed_operator)
                context.add_trace(
                    context.failed_operator,
                    f"required operator failed: {failure_text}",
                )
            else:
                with context.span("final_check") as check:
                    success, error = self._final_check(context)
                    check.set_attr("success", success)
                    if error:
                        check.set_attr("error_text", error)
            root.set_attr("success", success)
            root.set_attr("attempts", len(context.attempts))
            if context.degraded_operators:
                root.set_attr(
                    "degraded",
                    " ".join(
                        name for name, _ in context.degraded_operators
                    ),
                )
            root.inc_attr("llm.cost_usd", context.meter.total_cost_usd)
            root.inc_attr(
                "llm.input_tokens",
                sum(call.input_tokens for call in context.meter.calls),
            )
            root.inc_attr(
                "llm.output_tokens",
                sum(call.output_tokens for call in context.meter.calls),
            )
        metrics.inc("pipeline.runs")
        metrics.observe("pipeline.generate_ms", root.duration_ms)
        # Per-question cost distribution — the SLO engine's cost-per-question
        # objective reads this family's mean (sum/count) from live snapshots.
        metrics.observe(
            "pipeline.cost_usd", context.meter.total_cost_usd,
            buckets=(0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
        )
        return GenerationResult(
            question=question,
            sql=context.sql,
            plan=context.plan,
            success=success,
            trace=context.trace,
            context=context,
            error=error,
        )

    def _degrade(self, context, name, span, reason, metrics):
        """Apply an optional operator's fallback and record the event."""
        DEGRADATIONS[name](context)
        span.set_attr("degraded", True)
        span.set_attr("degraded_reason", reason)
        context.degraded_operators.append((name, reason))
        metrics.inc("pipeline.operator_degraded", operator=name)
        context.add_trace(name, f"degraded: {reason}")

    def execute(self, sql):
        """Run SQL on the pipeline's database (used by UIs and examples).

        Deliberately unfaulted: chaos covers generation, not result
        display.
        """
        return Executor(self.database).execute(sql)

    def _final_check(self, context):
        if not context.sql:
            return False, "no SQL generated"
        try:
            self._make_executor(context.database).execute(context.sql)
        except (SqlError, ExecutionError) as error:
            return False, str(error)
        return True, ""

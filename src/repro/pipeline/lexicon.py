"""Schema lexicon: grounding surface phrases against schema elements.

A :class:`SchemaLexicon` is built from the *schema elements present in the
generation context* — after intent filtering, linking, re-ranking, and any
context-budget truncation. Grounding quality therefore depends directly on
what the pipeline retrieved, which is the mechanism behind the
schema-linking ablation: an un-linked lexicon contains every column of every
table in catalog order, so ambiguous surfaces resolve by catalog order
instead of by relevance, and budget-truncated elements are simply invisible.

Descriptions follow the catalog conventions of ``repro.bench.schemas``:
``Also called: a, b.`` lists synonyms, ``Foreign key to T.C.`` declares a
join edge, and a table description starting ``Each row is a <entity>.``
names the entity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..text.normalize import normalize
from .spec import JoinSpec

_ALSO_CALLED = re.compile(r"Also called: ([^.]*)\.")
_FOREIGN_KEY = re.compile(r"Foreign key to (\w+)\.(\w+)")
_EACH_ROW = re.compile(r"Each row is (?:a|an) ([^.]*)")


@dataclass(frozen=True)
class ColumnEntry:
    table: str
    column: str
    data_type: str
    surfaces: tuple
    tokens: tuple        # stemmed token tuples, one per surface
    top_values: tuple
    rank: int            # position in the provided element ordering


@dataclass(frozen=True)
class ColumnMatch:
    table: str
    column: str
    data_type: str
    score: float


class SchemaLexicon:
    """Phrase -> schema grounding over an ordered element list."""

    def __init__(self, schema_elements):
        self._columns = []
        self._tables = {}
        self._entity_surfaces = {}
        self._fk_edges = []
        self._date_columns = {}
        self._label_columns = {}
        for rank, element in enumerate(schema_elements):
            if element.is_table:
                self._add_table(element, rank)
            else:
                self._add_column(element, rank)
        self._finalise()

    # -- construction ----------------------------------------------------------

    def _add_table(self, element, rank):
        table = element.table.upper()
        self._tables.setdefault(table, rank)
        surfaces = {table.lower().replace("_", " ")}
        match = _EACH_ROW.search(element.description or "")
        if match:
            surfaces.add(match.group(1).strip().lower())
        self._entity_surfaces.setdefault(table, set()).update(surfaces)

    def _add_column(self, element, rank):
        table = element.table.upper()
        column = element.column.upper()
        self._tables.setdefault(table, rank)
        description = element.description or ""
        surfaces = [column.lower().replace("_", " ")]
        also = _ALSO_CALLED.search(description)
        if also:
            surfaces.extend(
                surface.strip().lower()
                for surface in also.group(1).split(",")
                if surface.strip()
            )
        fk = _FOREIGN_KEY.search(description)
        if fk:
            self._fk_edges.append(
                (table, column, fk.group(1).upper(), fk.group(2).upper())
            )
        if element.data_type == "DATE":
            self._date_columns.setdefault(table, column)
        if "NAME" in column and element.data_type == "TEXT":
            self._label_columns.setdefault(table, column)
        entry = ColumnEntry(
            table=table,
            column=column,
            data_type=element.data_type,
            surfaces=tuple(surfaces),
            tokens=tuple(tuple(normalize(surface)) for surface in surfaces),
            top_values=tuple(element.top_values),
            rank=rank,
        )
        self._columns.append(entry)

    def _finalise(self):
        self._total = max(len(self._columns), 1)
        for table in self._tables:
            if table not in self._label_columns:
                text_columns = [
                    entry.column for entry in self._columns
                    if entry.table == table and entry.data_type == "TEXT"
                ]
                if text_columns:
                    self._label_columns[table] = text_columns[0]

    # -- inspection ----------------------------------------------------------

    def tables(self):
        return sorted(self._tables, key=lambda name: self._tables[name])

    def has_table(self, table):
        return table.upper() in self._tables

    def columns_of(self, table):
        upper = table.upper()
        return [entry for entry in self._columns if entry.table == upper]

    def has_column(self, table, column):
        upper_t, upper_c = table.upper(), column.upper()
        return any(
            entry.table == upper_t and entry.column == upper_c
            for entry in self._columns
        )

    def date_column(self, table):
        return self._date_columns.get(table.upper())

    def label_column(self, table):
        return self._label_columns.get(table.upper())

    # -- matching ----------------------------------------------------------

    def match_column(self, phrase, preferred_tables=(), boosted_columns=()):
        """Ranked column candidates for a surface phrase.

        ``preferred_tables`` adds a locality bonus (elements of tables
        already chosen for the query); ``boosted_columns`` adds a small
        bonus for columns referenced by retrieved examples — the direct
        (non-pseudo-SQL) contribution of examples to generation.
        """
        phrase_tokens = tuple(normalize(phrase))
        if not phrase_tokens:
            return []
        preferred = {table.upper() for table in preferred_tables}
        boosted = {
            (table.upper(), column.upper())
            for table, column in boosted_columns
        }
        matches = []
        for entry in self._columns:
            score = self._surface_score(phrase_tokens, entry)
            if score <= 0:
                continue
            if entry.table in preferred:
                score += 0.8
            if (entry.table, entry.column) in boosted:
                score += 0.3
            # Earlier elements (higher linking rank) win ties.
            score += 0.2 * (1.0 - entry.rank / self._total)
            matches.append(
                ColumnMatch(entry.table, entry.column, entry.data_type, score)
            )
        matches.sort(key=lambda match: (-match.score, match.table, match.column))
        return matches

    def _surface_score(self, phrase_tokens, entry):
        best = 0.0
        phrase_set = set(phrase_tokens)
        for tokens in entry.tokens:
            if not tokens:
                continue
            if tokens == phrase_tokens:
                best = max(best, 3.0)
                continue
            token_set = set(tokens)
            if phrase_set == token_set:
                best = max(best, 2.6)
            elif phrase_set <= token_set:
                best = max(best, 2.0)
            elif token_set <= phrase_set:
                best = max(best, 1.6)
            else:
                overlap = len(phrase_set & token_set)
                if overlap:
                    best = max(
                        best, overlap / len(phrase_set | token_set)
                    )
        return best

    def match_entity(self, phrase):
        """Ranked table candidates for an entity phrase."""
        phrase_tokens = set(normalize(phrase))
        if not phrase_tokens:
            return []
        scored = []
        for table, surfaces in self._entity_surfaces.items():
            best = 0.0
            for surface in surfaces:
                tokens = set(normalize(surface))
                if not tokens:
                    continue
                if tokens == phrase_tokens:
                    best = max(best, 3.0)
                elif phrase_tokens <= tokens:
                    best = max(best, 2.0)
                elif tokens <= phrase_tokens:
                    best = max(best, 1.8)
                else:
                    overlap = len(tokens & phrase_tokens)
                    if overlap:
                        best = max(best, overlap / len(tokens | phrase_tokens))
            if best > 0:
                rank_bonus = 0.1 * (
                    1.0 - self._tables[table] / max(len(self._tables), 1)
                )
                scored.append((table, best + rank_bonus))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored

    def match_value(self, value):
        """Columns whose top-value profile contains ``value``.

        Returns [(table, column, canonical_value)] — canonical being the
        exact stored form (grounding 'canada' to the stored 'Canada').
        """
        lowered = str(value).strip().lower()
        hits = []
        for entry in self._columns:
            for top in entry.top_values:
                if str(top).strip().lower() == lowered:
                    hits.append((entry.table, entry.column, top))
                    break
        return hits

    def guess_value_column(self, table, value):
        """Fallback grounding for a value not found in any top-value list.

        Mimics an LLM's guess: prefer geographic-sounding text columns of
        the table in a fixed plausibility order, then the table's label
        column. Often wrong for rare values — deliberately so.
        """
        preferences = ("COUNTRY", "CITY")
        columns = {entry.column for entry in self.columns_of(table)}
        for name in preferences:
            if name in columns:
                return name
        return self.label_column(table)

    # -- joins ----------------------------------------------------------

    def join_between(self, base_table, other_table):
        """A JoinSpec connecting two tables via a declared FK, if any."""
        base, other = base_table.upper(), other_table.upper()
        for table, column, ref_table, ref_column in self._fk_edges:
            if table == base and ref_table == other:
                return JoinSpec(
                    table=other, left_column=column, right_column=ref_column
                )
            if table == other and ref_table == base:
                return JoinSpec(
                    table=other, left_column=ref_column, right_column=column
                )
        return None

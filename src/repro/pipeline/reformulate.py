"""Operator #1: query reformulation into the canonical form (§3.1.1).

Every question is rewritten to begin with "Show me ..." so downstream
retrieval and parsing see one surface distribution. When disabled, the raw
question flows through (baselines without this operator parse rawer text).
"""

from __future__ import annotations

from .base import Operator


class ReformulateOperator(Operator):
    name = "reformulate"

    def __init__(self, llm):
        self._llm = llm

    def run(self, context):
        if context.config.use_reformulation:
            context.reformulated = self._llm.reformulate(
                context.question, meter=context.meter
            )
        else:
            context.reformulated = context.question
        context.add_trace(
            self.name,
            f"canonical form: {context.reformulated!r}",
        )
        return context

"""SQL frontend: tokenizer, parser, AST, printer, diagnostics, rewriter,
and the sub-statement decomposer used by GenEdit's knowledge set."""

from .analyzer import AnalysisIssue, Analyzer
from .decompose import SqlUnit, decompose
from .diagnostics import Diagnostic, DiagnosticsEngine, Severity, diagnose
from .errors import (
    SqlAnalysisError,
    SqlError,
    SqlSyntaxError,
    SqlUnsupportedError,
)
from .parser import parse, parse_cache_info, parse_cached, parse_expression
from .printer import format_sql, to_sql
from .rewriter import to_cte_form
from .tokens import Token, TokenType, tokenize

__all__ = [
    "AnalysisIssue",
    "Analyzer",
    "Diagnostic",
    "DiagnosticsEngine",
    "Severity",
    "SqlAnalysisError",
    "SqlError",
    "SqlSyntaxError",
    "SqlUnit",
    "SqlUnsupportedError",
    "Token",
    "TokenType",
    "decompose",
    "diagnose",
    "format_sql",
    "parse",
    "parse_cache_info",
    "parse_cached",
    "parse_expression",
    "to_cte_form",
    "to_sql",
    "tokenize",
]

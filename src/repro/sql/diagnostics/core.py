"""Diagnostic primitives: severities, the rule registry, and records.

Every check the diagnostics engine performs is registered here as a
:class:`Rule` with a stable code (``GE0xx``), a kebab-case slug, a severity,
and a one-line summary. Severity encodes the contract with the execution
engine: ``error`` rules flag SQL the engine would also reject at run time
(so the self-correction operator may skip execution outright), while
``warning``/``info`` rules flag SQL that executes but is very likely wrong
(cartesian products, value-domain mismatches, non-aggregated grouping).

Rules emit :class:`Diagnostic` records carrying the offending node's source
span (threaded from the tokenizer through the parser) and, where the engine
can guess, a concrete suggestion — the regeneration context GenEdit's
self-correction loop feeds back to the model (§2.1, §3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """Diagnostic severity, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def weight(self):
        """Contribution of one diagnostic to a candidate's lint score."""
        return _SEVERITY_WEIGHTS[self]

    def __str__(self):
        return self.value


_SEVERITY_WEIGHTS = {
    Severity.ERROR: 100,
    Severity.WARNING: 10,
    Severity.INFO: 1,
}


@dataclass(frozen=True)
class Rule:
    """One registered diagnostic rule."""

    code: str
    slug: str
    severity: Severity
    summary: str

    def at(self, message, node=None, suggestion=None):
        """Build a :class:`Diagnostic` for this rule.

        ``node`` supplies the source span (when the parser attached one);
        ``suggestion`` is a concrete replacement hint surfaced to the
        regeneration prompt and the CLI.
        """
        return Diagnostic(
            code=self.code,
            slug=self.slug,
            severity=self.severity,
            message=message,
            span=getattr(node, "span", None),
            suggestion=suggestion,
        )


#: Registry of every rule, keyed by code, in registration order.
RULES: dict = {}


def _register(code, slug, severity, summary):
    if code in RULES:
        raise ValueError(f"Duplicate diagnostic rule code {code!r}")
    rule = Rule(code=code, slug=slug, severity=severity, summary=summary)
    RULES[code] = rule
    return rule


def get_rule(code):
    """Return the registered rule for ``code`` (KeyError when unknown)."""
    return RULES[code]


def iter_rules():
    """Yield every registered rule in code order."""
    return iter(sorted(RULES.values(), key=lambda rule: rule.code))


# ---------------------------------------------------------------------------
# The rule table. Error-level rules mirror conditions the execution engine
# rejects; warning-level rules flag legal-but-suspect SQL. DESIGN.md renders
# this table for documentation; tests assert each code fires.
# ---------------------------------------------------------------------------

GE000 = _register(
    "GE000", "syntax-error", Severity.ERROR,
    "SQL fails to tokenize or parse.",
)
GE001 = _register(
    "GE001", "unknown-table", Severity.ERROR,
    "FROM references a table that is in neither the catalog nor a CTE.",
)
GE002 = _register(
    "GE002", "unknown-column", Severity.ERROR,
    "A column reference resolves to no relation in scope.",
)
GE003 = _register(
    "GE003", "ambiguous-column", Severity.ERROR,
    "An unqualified column name matches more than one relation in scope.",
)
GE004 = _register(
    "GE004", "aggregate-in-where", Severity.ERROR,
    "An aggregate function appears in a WHERE clause.",
)
GE005 = _register(
    "GE005", "set-arity", Severity.ERROR,
    "Set-operation operands return different column counts.",
)
GE006 = _register(
    "GE006", "cte-arity", Severity.ERROR,
    "A CTE declares a different column count than its query returns.",
)
GE007 = _register(
    "GE007", "star-no-from", Severity.ERROR,
    "SELECT * used without a FROM clause.",
)
GE008 = _register(
    "GE008", "order-by-target", Severity.ERROR,
    "ORDER BY names an unknown alias or an out-of-range ordinal.",
)
GE009 = _register(
    "GE009", "duplicate-alias", Severity.ERROR,
    "Two relations in one FROM clause share a binding name.",
)
GE010 = _register(
    "GE010", "arith-type", Severity.ERROR,
    "Arithmetic over an operand that can never be numeric "
    "(a date expression or a non-numeric string literal).",
)
GE011 = _register(
    "GE011", "type-mismatch", Severity.WARNING,
    "Comparison or arithmetic over operands whose declared types "
    "do not line up (e.g. text vs number).",
)
GE012 = _register(
    "GE012", "group-by-nonagg", Severity.WARNING,
    "A SELECT column is neither aggregated nor listed in GROUP BY.",
)
GE013 = _register(
    "GE013", "having-misuse", Severity.ERROR,
    "HAVING in a query with no GROUP BY and no aggregate anywhere.",
)
GE014 = _register(
    "GE014", "unused-cte", Severity.WARNING,
    "A WITH-clause CTE is never referenced.",
)
GE015 = _register(
    "GE015", "cartesian-join", Severity.WARNING,
    "A join with no condition produces a cartesian product.",
)
GE016 = _register(
    "GE016", "set-op-type", Severity.WARNING,
    "Set-operation operand columns have incompatible types.",
)
GE017 = _register(
    "GE017", "value-domain", Severity.WARNING,
    "A string literal in an equality filter is close to, but not among, "
    "the column's profiled top values.",
)


@dataclass(frozen=True)
class Diagnostic:
    """One problem found in a query, tagged with its rule and location."""

    code: str
    slug: str
    severity: Severity
    message: str
    span: object = None          # repro.sql.tokens.Span | None
    suggestion: str = None

    @property
    def is_error(self):
        return self.severity is Severity.ERROR

    def render(self):
        """One-line rendering used by traces, the CLI, and prompts."""
        location = f" at {self.span}" if self.span is not None else ""
        hint = f" (did you mean {self.suggestion!r}?)" if self.suggestion else ""
        return f"{self.code} {self.severity}{location}: {self.message}{hint}"

    def __str__(self):
        return self.render()


def severity_score(diagnostics):
    """Severity-weighted lint score of a candidate (0 = clean).

    The generation operator ranks candidates by this score; the ordering is
    a refinement of the old binary clean/dirty split (any error outweighs
    every possible warning/info mix on realistic diagnostic counts).
    """
    return sum(diag.severity.weight for diag in diagnostics)


def error_count(diagnostics):
    return sum(1 for diag in diagnostics if diag.severity is Severity.ERROR)


def warning_count(diagnostics):
    return sum(
        1 for diag in diagnostics if diag.severity is Severity.WARNING
    )

"""Static type inference over schema columns for the diagnostics engine.

Types are the engine's canonical names (``INTEGER``/``FLOAT``/``TEXT``/
``BOOLEAN``/``DATE``); ``None`` means "unknown" and suppresses any check
that would need it — inference is best-effort and every type rule must be
conservative, because a wrong ``error`` here would make self-correction
skip a candidate the engine would happily execute.

Compatibility is family-based: the engine compares numerics across
int/float/bool freely and parses date strings when compared to DATE
columns, so only cross-family comparisons that cluster with real
generation mistakes (text vs number, date vs number) are reported.
"""

from __future__ import annotations

from .. import ast_nodes as ast


def _engine_values():
    # Lazy: repro.engine.errors subclasses repro.sql.errors, so importing
    # engine modules while repro.sql is still initializing would cycle.
    # By the time inference runs, both packages are fully imported.
    from ...engine import values

    return values

TEXT = "TEXT"
DATE = "DATE"
NUMERIC_TYPES = frozenset({"INTEGER", "FLOAT", "BOOLEAN"})

FAMILY_NUMERIC = "numeric"
FAMILY_TEXT = "text"
FAMILY_DATE = "date"


def family(type_name):
    """Map a canonical type to its comparison family (None = unknown)."""
    if type_name is None:
        return None
    if type_name in NUMERIC_TYPES:
        return FAMILY_NUMERIC
    if type_name == TEXT:
        return FAMILY_TEXT
    if type_name == DATE:
        return FAMILY_DATE
    return None


def comparable(left_type, right_type):
    """True when comparing the two types is plausible.

    Unknown types compare with anything; text and date are mutually
    comparable (date literals are strings in this dialect).
    """
    left_family = family(left_type)
    right_family = family(right_type)
    if left_family is None or right_family is None:
        return True
    if left_family == right_family:
        return True
    return {left_family, right_family} == {FAMILY_TEXT, FAMILY_DATE}


#: Return types of functions the inference understands. Aggregates over
#: numerics return numerics; identity-like functions are handled by
#: :func:`infer_type` (they return their first argument's type).
_FUNCTION_RETURN_TYPES = {
    "COUNT": "INTEGER", "LENGTH": "INTEGER", "INSTR": "INTEGER",
    "YEAR": "INTEGER", "MONTH": "INTEGER", "DAY": "INTEGER",
    "QUARTER": "INTEGER", "FLOOR": "INTEGER", "CEIL": "INTEGER",
    "CEILING": "INTEGER", "ROW_NUMBER": "INTEGER", "RANK": "INTEGER",
    "DENSE_RANK": "INTEGER", "NTILE": "INTEGER",
    "SUM": "FLOAT", "AVG": "FLOAT", "TOTAL": "FLOAT", "ROUND": "FLOAT",
    "ABS": "FLOAT", "SQRT": "FLOAT", "POWER": "FLOAT",
    "UPPER": TEXT, "LOWER": TEXT, "TRIM": TEXT, "SUBSTR": TEXT,
    "SUBSTRING": TEXT, "REPLACE": TEXT, "CONCAT": TEXT, "TO_CHAR": TEXT,
    "STRFTIME": TEXT, "GROUP_CONCAT": TEXT,
    "DATE": DATE, "DATE_TRUNC": DATE,
}

#: Functions returning the type of their first argument.
_FIRST_ARGUMENT_TYPE = frozenset(
    {"MIN", "MAX", "COALESCE", "IFNULL", "NULLIF", "LAG", "LEAD"}
)

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
_BOOLEAN_OPS = frozenset({"AND", "OR", "=", "<>", "<", ">", "<=", ">="})


def infer_type(expr, resolve_column):
    """Best-effort canonical type of ``expr`` (None = unknown).

    ``resolve_column(column_ref)`` returns the declared type of a
    :class:`~repro.sql.ast_nodes.ColumnRef` in the current scope, or None.
    """
    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return None
        return _engine_values().type_of(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return resolve_column(expr)
    if isinstance(expr, ast.Cast):
        return _engine_values().TYPE_ALIASES.get(expr.target_type.upper())
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return "BOOLEAN"
        return infer_type(expr.operand, resolve_column)
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "||":
            return TEXT
        if expr.op in _BOOLEAN_OPS:
            return "BOOLEAN"
        if expr.op in _ARITHMETIC_OPS:
            left = infer_type(expr.left, resolve_column)
            right = infer_type(expr.right, resolve_column)
            if left == "INTEGER" and right == "INTEGER" and expr.op != "/":
                return "INTEGER"
            if family(left) == FAMILY_NUMERIC or family(right) == FAMILY_NUMERIC:
                return "FLOAT"
            return None
        return None
    if isinstance(expr, ast.FunctionCall):
        return _call_type(expr, resolve_column)
    if isinstance(expr, ast.WindowFunction):
        return _call_type(expr.function, resolve_column)
    if isinstance(expr, ast.CaseExpression):
        for _condition, result in expr.whens:
            inferred = infer_type(result, resolve_column)
            if inferred is not None:
                return inferred
        if expr.default is not None:
            return infer_type(expr.default, resolve_column)
        return None
    if isinstance(
        expr, (ast.InList, ast.InSubquery, ast.Between, ast.Like,
               ast.IsNull, ast.Exists)
    ):
        return "BOOLEAN"
    return None  # ScalarSubquery, Star, and anything else: unknown


def _call_type(call, resolve_column):
    name = call.name.upper()
    mapped = _FUNCTION_RETURN_TYPES.get(name)
    if mapped is not None:
        return mapped
    if name in _FIRST_ARGUMENT_TYPE and call.args:
        return infer_type(call.args[0], resolve_column)
    return None

"""Schema-aware SQL diagnostics: a typed, rule-based lint engine.

The package grows the original single-pass analyzer into an extensible
diagnostics engine with a stable rule registry (``GE0xx`` codes), severity
levels, source spans, and concrete suggestions. It is wired through the
GenEdit pipeline: generation ranks candidates by lint score,
self-correction skips execution of candidates with error-level findings
(feeding the diagnostics into the regeneration context instead), the
feedback loop flags staged edits that introduce new errors, and the bench
harness reports how many failures lint caught before execution.

Public API::

    from repro.sql.diagnostics import DiagnosticsEngine, diagnose

    engine = DiagnosticsEngine(database)
    for diag in engine.run_sql("SELECT * FROM ORDERS WHERE STATUS = 'shipped'"):
        print(diag.render())
"""

from .checker import DiagnosticsEngine, aggregate_functions, window_functions
from .core import (
    RULES,
    Diagnostic,
    Rule,
    Severity,
    error_count,
    get_rule,
    iter_rules,
    severity_score,
    warning_count,
)


def diagnose(sql, database=None):
    """One-shot convenience: lint ``sql`` against ``database``."""
    return DiagnosticsEngine(database).run_sql(sql)


def __getattr__(name):
    # Constant-style aliases for the engine-registry views, kept lazy so
    # that importing this package never touches repro.engine (PEP 562).
    if name in ("AGGREGATE_FUNCTIONS", "WINDOW_FUNCTIONS"):
        from . import checker

        return getattr(checker, name)
    raise AttributeError(name)


__all__ = [
    "AGGREGATE_FUNCTIONS",
    "Diagnostic",
    "DiagnosticsEngine",
    "RULES",
    "Rule",
    "Severity",
    "WINDOW_FUNCTIONS",
    "aggregate_functions",
    "diagnose",
    "error_count",
    "get_rule",
    "iter_rules",
    "severity_score",
    "warning_count",
    "window_functions",
]

"""The diagnostics engine: schema-aware static analysis of parsed queries.

:class:`DiagnosticsEngine` walks a query against a
:class:`~repro.engine.database.Database` catalog and emits
:class:`~repro.sql.diagnostics.core.Diagnostic` records for every registered
rule (see ``core.py`` for the rule table). It subsumes the original
analyzer's five checks and adds typed checks (via ``typesys.py``), grouping
and ordering validity, join hygiene, and the value-domain rule that grounds
string literals in each column's profiled top values — the paper's §2.1
schema augmentation turned into a lint.

Aggregate and window function names are **derived from the execution
engine's registries** (``repro.engine.aggregates`` /
``repro.engine.window``), so the lint and the executor cannot drift.
"""

from __future__ import annotations

import dataclasses
import difflib

from .. import ast_nodes as ast
from ..errors import SqlAnalysisError, SqlError, SqlSyntaxError
from ..tokens import Span
from .core import (
    GE000, GE001, GE002, GE003, GE004, GE005, GE006, GE007, GE008, GE009,
    GE010, GE011, GE012, GE013, GE014, GE015, GE016, GE017, Severity,
)
from .typesys import (
    DATE, FAMILY_NUMERIC, TEXT, comparable, family, infer_type,
)

def aggregate_functions():
    """Aggregate function names, shared verbatim with the execution engine.

    Imported lazily: repro.engine.errors subclasses repro.sql.errors, so
    importing engine modules while repro.sql is still initializing would
    cycle. The engine registry is the single source of truth — the lint
    cannot drift from the executor (tests assert the identity).
    """
    from ...engine.aggregates import AGGREGATE_NAMES

    return AGGREGATE_NAMES


def window_functions():
    """Window-only function names, shared verbatim with the engine."""
    from ...engine.window import RANKING_FUNCTIONS

    return RANKING_FUNCTIONS


def __getattr__(name):
    # Constant-style aliases, still lazy (PEP 562).
    if name == "AGGREGATE_FUNCTIONS":
        return aggregate_functions()
    if name == "WINDOW_FUNCTIONS":
        return window_functions()
    raise AttributeError(name)

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
_COMPARISON_OPS = frozenset({"=", "<>", "<", ">", "<=", ">="})


class _Relation:
    """One visible relation: binding, column name/type map, backing table.

    ``opaque`` marks a relation whose columns are unknowable (linting
    without a catalog) — it claims every column, with unknown type, so
    downstream rules stay silent instead of cascading false positives.
    """

    __slots__ = ("binding", "columns", "types", "table", "opaque")

    def __init__(self, binding, columns, types=None, table=None,
                 opaque=False):
        self.binding = binding
        self.columns = [str(column) for column in columns]
        column_types = types if types and len(types) == len(columns) else None
        self.types = {
            column.upper(): (column_types[index] if column_types else None)
            for index, column in enumerate(self.columns)
        }
        self.table = table
        self.opaque = opaque

    def column_type(self, name):
        return self.types.get(name.upper())

    def has_column(self, name):
        return self.opaque or name.upper() in self.types


class _Scope:
    """Visible relations during analysis, chained to the outer scope."""

    def __init__(self, parent=None):
        self.parent = parent
        self.relations = {}

    def add(self, relation):
        """Register a relation; returns False when the binding collides."""
        key = relation.binding.upper()
        collision = key in self.relations
        self.relations[key] = relation
        return not collision

    def resolve(self, table, name):
        """Resolve a (possibly qualified) column.

        Returns ``(verdict, type, relation)`` where verdict is ``'ok'``,
        ``'unknown'``, or ``'ambiguous'``; type and relation are only
        meaningful for ``'ok'``.
        """
        if table is not None:
            upper_table = table.upper()
            scope = self
            while scope is not None:
                relation = scope.relations.get(upper_table)
                if relation is not None:
                    if relation.has_column(name):
                        return "ok", relation.column_type(name), relation
                    return "unknown", None, None
                scope = scope.parent
            return "unknown", None, None
        scope = self
        while scope is not None:
            hits = [
                relation for relation in scope.relations.values()
                if relation.has_column(name)
            ]
            if len(hits) == 1:
                return "ok", hits[0].column_type(name), hits[0]
            if len(hits) > 1:
                if any(hit.opaque for hit in hits):
                    return "ok", None, None  # can't prove ambiguity
                return "ambiguous", None, None
            scope = scope.parent
        return "unknown", None, None

    def visible_columns(self):
        """Every column name visible from this scope (for suggestions)."""
        names = []
        scope = self
        while scope is not None:
            for relation in scope.relations.values():
                names.extend(relation.columns)
            scope = scope.parent
        return names


class DiagnosticsEngine:
    """Runs every registered rule over a query against a database catalog.

    ``database`` may be None, in which case catalog-dependent rules
    (unknown table/column, types, value domain) stay silent and only
    structural rules fire.
    """

    def __init__(self, database=None, top_values_k=5):
        self.database = database
        self.top_values_k = top_values_k

    # -- public API ---------------------------------------------------------

    def run(self, query):
        """Return the list of :class:`Diagnostic` for a parsed query."""
        from ...obs.metrics import get_metrics  # lazy: keep import cycle-free

        out = []
        self._analyze_query(query, _Scope(), {}, out)
        metrics = get_metrics()
        for diagnostic in out:
            metrics.inc("diagnostics.fired", code=diagnostic.code)
        return out

    def run_sql(self, sql):
        """Parse and analyze SQL text; parse failures become GE000."""
        from ..parser import parse_cached

        from ...obs.metrics import get_metrics

        try:
            query = parse_cached(sql)
        except SqlSyntaxError as error:
            diagnostic = GE000.at(str(error))
            if error.line is not None and error.column is not None:
                span = Span(error.position or 0, error.line, error.column)
                diagnostic = dataclasses.replace(diagnostic, span=span)
            get_metrics().inc("diagnostics.fired", code=GE000.code)
            return [diagnostic]
        except SqlError as error:
            get_metrics().inc("diagnostics.fired", code=GE000.code)
            return [GE000.at(str(error))]
        return self.run(query)

    def check(self, query):
        """Raise :class:`SqlAnalysisError` on the first error-level finding."""
        for diagnostic in self.run(query):
            if diagnostic.severity is Severity.ERROR:
                raise SqlAnalysisError(diagnostic.render())

    # -- query / body structure ---------------------------------------------

    def _analyze_query(self, query, outer_scope, outer_ctes, out):
        """Analyze one Query; returns (columns, types) of its output."""
        ctes = dict(outer_ctes)
        if query.ctes:
            referenced = {
                node.name.upper()
                for node in query.walk()
                if isinstance(node, ast.TableRef)
            }
        for cte in query.ctes:
            columns, types = self._analyze_query(
                cte.query, outer_scope, ctes, out
            )
            if cte.columns:
                if columns is not None and len(cte.columns) != len(columns):
                    out.append(GE006.at(
                        f"CTE {cte.name} declares {len(cte.columns)} "
                        f"columns, query returns {len(columns)}",
                        node=cte,
                    ))
                if types is not None and len(types) != len(cte.columns):
                    types = None
                columns = list(cte.columns)
            ctes[cte.name.upper()] = (columns or [], types)
            if cte.name.upper() not in referenced:
                out.append(GE014.at(
                    f"CTE {cte.name} is defined but never referenced",
                    node=cte,
                ))
        return self._analyze_body(query.body, outer_scope, ctes, out)

    def _analyze_body(self, body, outer_scope, ctes, out):
        if isinstance(body, ast.SetOperation):
            left_columns, left_types = self._analyze_body(
                body.left, outer_scope, ctes, out
            )
            right_columns, right_types = self._analyze_body(
                body.right, outer_scope, ctes, out
            )
            if (
                left_columns is not None and right_columns is not None
                and len(left_columns) != len(right_columns)
            ):
                out.append(GE005.at(
                    f"{body.op} operands return {len(left_columns)} vs "
                    f"{len(right_columns)} columns",
                    node=body,
                ))
            elif left_types is not None and right_types is not None:
                for position, (left, right) in enumerate(
                    zip(left_types, right_types), start=1
                ):
                    if not comparable(left, right):
                        out.append(GE016.at(
                            f"{body.op} column {position} mixes {left} "
                            f"and {right}",
                            node=body,
                        ))
            return left_columns, left_types
        return self._analyze_select(body, outer_scope, ctes, out)

    # -- SELECT blocks -------------------------------------------------------

    def _analyze_select(self, select, outer_scope, ctes, out):
        scope = _Scope(parent=outer_scope)
        if select.from_clause is not None:
            self._register_from(select.from_clause, scope, ctes, out)
            # Comma-separated FROM items filtered by WHERE are the classic
            # pre-ANSI join spelling — only an unfiltered cross join is a
            # likely mistake.
            if select.where is None:
                for join in _cross_joins(select.from_clause):
                    out.append(GE015.at(
                        "Join without a condition produces a cartesian "
                        "product",
                        node=join,
                    ))
        alias_names = {
            item.alias.upper() for item in select.items if item.alias
        }

        for item in select.items:
            if isinstance(item.expr, ast.Star):
                if select.from_clause is None:
                    out.append(GE007.at(
                        "SELECT * without FROM", node=item.expr
                    ))
                continue
            self._check_expr(item.expr, scope, ctes, out)

        if select.where is not None:
            self._check_expr(select.where, scope, ctes, out)
            aggregate = _first_aggregate(select.where)
            if aggregate is not None:
                out.append(GE004.at(
                    f"Aggregate function {aggregate.name} used in WHERE "
                    "clause",
                    node=aggregate,
                ))

        for expr in select.group_by:
            if self._is_alias_or_ordinal(expr, alias_names, len(select.items)):
                continue
            self._check_expr(expr, scope, ctes, out)
        self._check_grouping(select, alias_names, out)

        if select.having is not None:
            self._check_expr(select.having, scope, ctes, out)
            # Mirrors Executor._needs_grouping: aggregates in the select
            # list imply grouping, so only their total absence is an error.
            implicit = any(
                not isinstance(item.expr, ast.Star)
                and _contains_aggregate_or_window(item.expr)
                for item in select.items
            )
            if (
                not select.group_by and not implicit
                and _first_aggregate(select.having) is None
            ):
                out.append(GE013.at(
                    "HAVING without GROUP BY and without any aggregate "
                    "(did you mean WHERE?)",
                    node=select.having,
                ))

        for item in select.order_by:
            self._check_order_item(
                item, select, alias_names, scope, ctes, out
            )

        return self._output_columns(select, ctes, scope)

    def _is_alias_or_ordinal(self, expr, alias_names, item_count):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return 1 <= expr.value <= item_count
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            return expr.name.upper() in alias_names
        return False

    def _check_grouping(self, select, alias_names, out):
        """GE012: SELECT columns neither aggregated nor grouped."""
        if not select.group_by:
            return
        grouped_indexes = set()
        grouped_names = set()
        grouped_exprs = []
        aliases = [
            (item.alias or "").upper() for item in select.items
        ]
        for expr in select.group_by:
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                if 1 <= expr.value <= len(select.items):
                    grouped_indexes.add(expr.value - 1)
                continue
            if isinstance(expr, ast.ColumnRef):
                grouped_names.add(expr.name.upper())
                if expr.table is None and expr.name.upper() in aliases:
                    grouped_indexes.add(aliases.index(expr.name.upper()))
            grouped_exprs.append(expr)
        for index, item in enumerate(select.items):
            expr = item.expr
            if isinstance(expr, (ast.Star, ast.Literal)):
                continue
            if index in grouped_indexes:
                continue
            if item.alias and item.alias.upper() in grouped_names:
                continue
            if _contains_aggregate_or_window(expr):
                continue
            if any(expr == grouped for grouped in grouped_exprs):
                continue
            if isinstance(expr, ast.ColumnRef) and (
                expr.name.upper() in grouped_names
            ):
                continue
            label = (
                item.alias or (
                    expr.qualified() if isinstance(expr, ast.ColumnRef)
                    else f"column {index + 1}"
                )
            )
            out.append(GE012.at(
                f"SELECT column {label} is neither aggregated nor in "
                "GROUP BY",
                node=expr,
            ))

    def _check_order_item(self, item, select, alias_names, scope, ctes, out):
        """GE008: ORDER BY targets must be resolvable by the engine."""
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if not (1 <= expr.value <= len(select.items)):
                out.append(GE008.at(
                    f"ORDER BY position {expr.value} out of range "
                    f"(query returns {len(select.items)} column(s))",
                    node=expr,
                ))
            return
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if expr.name.upper() in alias_names:
                return
            verdict, _type, _relation = scope.resolve(None, expr.name)
            if verdict == "ok":
                return
            if verdict == "ambiguous":
                out.append(GE003.at(
                    f"Ambiguous column reference {expr.name!r}", node=expr
                ))
                return
            candidates = sorted(alias_names) + scope.visible_columns()
            out.append(GE008.at(
                f"ORDER BY references unknown column or alias "
                f"{expr.name!r}",
                node=expr,
                suggestion=_closest(expr.name, candidates),
            ))
            return
        self._check_expr(expr, scope, ctes, out)

    # -- FROM clause ---------------------------------------------------------

    def _register_from(self, node, scope, ctes, out):
        if isinstance(node, ast.TableRef):
            resolved = self._relation_columns(node.name, ctes)
            if resolved is None:
                if self.database is not None:
                    known = [
                        table.name for table in self.database.tables
                    ] + [name for name in ctes]
                    out.append(GE001.at(
                        f"Unknown table {node.name!r}", node=node,
                        suggestion=_closest(node.name, known),
                    ))
                relation = _Relation(
                    node.binding_name, [],
                    opaque=self.database is None,
                )
            else:
                columns, types, table = resolved
                relation = _Relation(
                    node.binding_name, columns, types, table
                )
            if not scope.add(relation):
                out.append(GE009.at(
                    f"Duplicate table alias {node.binding_name!r} in FROM "
                    "clause",
                    node=node,
                ))
            return
        if isinstance(node, ast.SubqueryRef):
            columns, types = self._analyze_query(
                node.query, scope.parent or _Scope(), ctes, out
            )
            relation = _Relation(node.binding_name, columns or [], types)
            if not scope.add(relation):
                out.append(GE009.at(
                    f"Duplicate table alias {node.binding_name!r} in FROM "
                    "clause",
                    node=node,
                ))
            return
        if isinstance(node, ast.Join):
            self._register_from(node.left, scope, ctes, out)
            self._register_from(node.right, scope, ctes, out)
            if node.condition is not None:
                self._check_expr(node.condition, scope, ctes, out)
            return

    def _relation_columns(self, name, ctes):
        """Resolve a relation name to (columns, types, table) or None."""
        cte_info = ctes.get(name.upper())
        if cte_info is not None:
            return cte_info[0], cte_info[1], None
        if self.database is not None and self.database.has_table(name):
            table = self.database.table(name)
            return (
                table.column_names,
                [column.type for column in table.columns],
                table,
            )
        return None

    # -- output shape --------------------------------------------------------

    def _output_columns(self, select, ctes, scope):
        """Best-effort (column names, types) of a SELECT's output."""
        columns = []
        types = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                expanded = self._star_columns(item.expr, select, ctes)
                if expanded is None:
                    return None, None
                star_columns, star_types = expanded
                columns.extend(star_columns)
                types.extend(star_types)
                continue
            if item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                columns.append(item.expr.name)
            else:
                columns.append(f"COLUMN_{len(columns) + 1}")
            types.append(infer_type(
                item.expr, lambda ref: _resolve_type(scope, ref)
            ))
        return columns, types

    def _star_columns(self, star, select, ctes):
        relations = _flatten_from(select.from_clause)
        columns = []
        types = []
        for relation in relations:
            if not isinstance(relation, ast.TableRef):
                return None  # derived-table star: give up on naming
            binding = relation.binding_name
            if star.table and binding.upper() != star.table.upper():
                continue
            resolved = self._relation_columns(relation.name, ctes)
            if resolved is None:
                return None
            relation_columns, relation_types, _table = resolved
            columns.extend(relation_columns)
            types.extend(
                relation_types if relation_types
                and len(relation_types) == len(relation_columns)
                else [None] * len(relation_columns)
            )
        if not columns:
            return None
        return columns, types

    # -- expressions ---------------------------------------------------------

    def _check_expr(self, expr, scope, ctes, out):
        resolve = lambda ref: _resolve_type(scope, ref)
        for node in _walk_expression(expr):
            if isinstance(node, ast.ColumnRef):
                self._check_column_ref(node, scope, out)
            elif isinstance(node, ast.BinaryOp):
                self._check_binary_op(node, scope, resolve, out)
            elif isinstance(node, ast.InList):
                self._check_in_list(node, scope, resolve, out)
            elif isinstance(node, ast.Between):
                self._check_span_types(
                    node, resolve,
                    [node.expr, node.low, node.high], "BETWEEN", out,
                )
            elif isinstance(node, (ast.ScalarSubquery, ast.InSubquery,
                                   ast.Exists)):
                self._analyze_query(node.query, scope, ctes, out)

    def _check_column_ref(self, node, scope, out):
        verdict, _type, _relation = scope.resolve(node.table, node.name)
        if verdict == "unknown":
            out.append(GE002.at(
                f"Cannot resolve column {node.qualified()!r}",
                node=node,
                suggestion=_closest(node.name, scope.visible_columns()),
            ))
        elif verdict == "ambiguous":
            out.append(GE003.at(
                f"Ambiguous column reference {node.name!r}", node=node
            ))

    def _check_binary_op(self, node, scope, resolve, out):
        if node.op in _ARITHMETIC_OPS:
            for operand in (node.left, node.right):
                operand_type = infer_type(operand, resolve)
                if _never_numeric(operand, operand_type):
                    out.append(GE010.at(
                        f"Arithmetic {node.op!r} over non-numeric operand "
                        f"of type {operand_type}",
                        node=node,
                    ))
                elif operand_type == TEXT:
                    out.append(GE011.at(
                        f"Arithmetic {node.op!r} over TEXT operand relies "
                        "on numeric-coded text",
                        node=node,
                    ))
            return
        if node.op in _COMPARISON_OPS:
            left_type = infer_type(node.left, resolve)
            right_type = infer_type(node.right, resolve)
            if not comparable(left_type, right_type):
                out.append(GE011.at(
                    f"Comparison {node.op!r} between {left_type} and "
                    f"{right_type}",
                    node=node,
                ))
            if node.op == "=":
                self._check_value_domain(node.left, node.right, scope, out)
                self._check_value_domain(node.right, node.left, scope, out)

    def _check_in_list(self, node, scope, resolve, out):
        expr_type = infer_type(node.expr, resolve)
        for item in node.items:
            item_type = infer_type(item, resolve)
            if not comparable(expr_type, item_type):
                out.append(GE011.at(
                    f"IN list mixes {expr_type} and {item_type}",
                    node=node,
                ))
            self._check_value_domain(node.expr, item, scope, out)

    def _check_span_types(self, node, resolve, operands, label, out):
        known = [
            infer_type(operand, resolve)
            for operand in operands if operand is not None
        ]
        for index in range(1, len(known)):
            if not comparable(known[0], known[index]):
                out.append(GE011.at(
                    f"{label} mixes {known[0]} and {known[index]}",
                    node=node,
                ))
                return

    def _check_value_domain(self, ref, literal, scope, out):
        """GE017: equality against a literal near-missing the value profile.

        Fires only when the literal is *close* to a profiled top value
        (case difference or small edit distance) — a genuinely rare value
        is legitimate (the workloads' ``trap:rare-value`` questions depend
        on it), but ``status = 'Shipped'`` vs ``'shipped'`` is the classic
        generation failure the paper's §2.1 value augmentation targets.
        """
        if not isinstance(ref, ast.ColumnRef):
            return
        if not isinstance(literal, ast.Literal) or not isinstance(
            literal.value, str
        ):
            return
        verdict, column_type, relation = scope.resolve(ref.table, ref.name)
        if verdict != "ok" or relation is None or relation.table is None:
            return
        if column_type != TEXT:
            return
        try:
            top = relation.table.top_values(ref.name, self.top_values_k)
        except Exception:
            return
        known = [value for value in top if isinstance(value, str)]
        if not known or literal.value in known:
            return
        suggestion = next(
            (
                value for value in known
                if value.casefold() == literal.value.casefold()
            ),
            None,
        )
        if suggestion is None:
            close = difflib.get_close_matches(
                literal.value, known, n=1, cutoff=0.8
            )
            suggestion = close[0] if close else None
        if suggestion is None:
            return
        out.append(GE017.at(
            f"Value {literal.value!r} is not among the profiled top "
            f"values of {relation.binding}.{ref.name}",
            node=literal,
            suggestion=suggestion,
        ))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _resolve_type(scope, ref):
    verdict, column_type, _relation = scope.resolve(ref.table, ref.name)
    return column_type if verdict == "ok" else None


def _never_numeric(operand, operand_type):
    """True when arithmetic over the operand is certain to fail.

    The engine coerces numeric-looking text at run time, so a TEXT column
    is merely suspect (GE011); a date expression or a string literal that
    does not parse as a number can never succeed.
    """
    if family(operand_type) == FAMILY_NUMERIC or operand_type is None:
        return False
    if operand_type == DATE:
        return True
    if isinstance(operand, ast.Literal) and isinstance(operand.value, str):
        try:
            float(operand.value)
        except ValueError:
            return True
    return False


def _closest(name, candidates):
    """Nearest candidate identifier, or None (used for suggestions).

    Matching is case-insensitive (identifiers are), so ``pey`` still finds
    ``PAY``.
    """
    by_fold = {}
    for candidate in sorted({str(candidate) for candidate in candidates}):
        by_fold.setdefault(candidate.casefold(), candidate)
    if not by_fold:
        return None
    exact = by_fold.get(name.casefold())
    if exact is not None:
        return exact
    close = difflib.get_close_matches(
        name.casefold(), list(by_fold), n=1, cutoff=0.6
    )
    return by_fold[close[0]] if close else None


def _cross_joins(node):
    """Yield every condition-less join in a FROM tree."""
    if not isinstance(node, ast.Join):
        return
    if node.condition is None:
        yield node
    yield from _cross_joins(node.left)
    yield from _cross_joins(node.right)


def _flatten_from(node):
    """Yield the leaf relations (TableRef/SubqueryRef) of a FROM tree."""
    if node is None:
        return []
    if isinstance(node, ast.Join):
        return _flatten_from(node.left) + _flatten_from(node.right)
    return [node]


def _walk_expression(expr):
    """Walk an expression without descending into subquery bodies."""
    yield expr
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return
    for child in expr.children():
        if isinstance(child, ast.Query):
            continue
        yield from _walk_expression(child)


def _first_aggregate(expr):
    """First plain (non-windowed) aggregate call in an expression, if any."""
    if isinstance(expr, ast.WindowFunction):
        return None  # windowed aggregates are not plain aggregates
    if isinstance(expr, ast.FunctionCall) and (
        expr.name.upper() in aggregate_functions()
    ):
        return expr
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return None
    for child in expr.children():
        found = _first_aggregate(child)
        if found is not None:
            return found
    return None


def _contains_aggregate_or_window(expr):
    if isinstance(expr, ast.WindowFunction):
        return True
    if _first_aggregate(expr) is not None:
        return True
    for node in _walk_expression(expr):
        if isinstance(node, ast.WindowFunction):
            return True
    return False

"""Static semantic analysis of parsed queries against a database schema.

The analyzer answers "would this query make sense?" without executing it:
unknown tables/CTEs, unresolvable or ambiguous columns, set-operation arity
mismatches, and aggregates in WHERE. GenEdit's self-correction operator runs
the analyzer first (cheap, precise messages) and only then executes; both
kinds of findings become regeneration context.

The analysis is deliberately tolerant where warehouses are tolerant —
unqualified columns that resolve in an outer (correlated) scope are fine,
GROUP BY may use select aliases — and strict where generation mistakes
cluster: misspelled tables and columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast_nodes as ast
from .errors import SqlAnalysisError


@dataclass(frozen=True)
class AnalysisIssue:
    """One semantic problem found in a query."""

    kind: str
    message: str

    def __str__(self):
        return f"[{self.kind}] {self.message}"


_AGGREGATES = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL", "GROUP_CONCAT"}
)


class _Scope:
    """Visible relations during analysis: binding -> set of column names."""

    def __init__(self, parent=None):
        self.parent = parent
        self.relations = {}

    def add(self, binding, columns):
        self.relations[binding.upper()] = {
            column.upper() for column in columns
        }

    def resolve_column(self, table, name):
        """Return 'ok', 'unknown', or 'ambiguous'."""
        upper_name = name.upper()
        if table is not None:
            upper_table = table.upper()
            scope = self
            while scope is not None:
                columns = scope.relations.get(upper_table)
                if columns is not None:
                    return "ok" if upper_name in columns else "unknown"
                scope = scope.parent
            return "unknown"
        scope = self
        while scope is not None:
            hits = sum(
                1 for columns in scope.relations.values()
                if upper_name in columns
            )
            if hits == 1:
                return "ok"
            if hits > 1:
                return "ambiguous"
            scope = scope.parent
        return "unknown"


class Analyzer:
    """Analyzes queries against a :class:`~repro.engine.database.Database`."""

    def __init__(self, database):
        self.database = database

    def analyze(self, query):
        """Return a list of :class:`AnalysisIssue` (empty when clean)."""
        issues = []
        self._analyze_query(query, _Scope(), {}, issues)
        return issues

    def check(self, query):
        """Raise :class:`SqlAnalysisError` on the first issue found."""
        issues = self.analyze(query)
        if issues:
            raise SqlAnalysisError(str(issues[0]))

    # -- internals ----------------------------------------------------------

    def _analyze_query(self, query, outer_scope, outer_ctes, issues):
        ctes = dict(outer_ctes)
        for cte in query.ctes:
            columns = self._body_columns(cte.query.body, outer_scope, ctes, issues)
            self._analyze_query(cte.query, outer_scope, ctes, issues)
            if cte.columns:
                if columns is not None and len(cte.columns) != len(columns):
                    issues.append(
                        AnalysisIssue(
                            "cte-arity",
                            f"CTE {cte.name} declares {len(cte.columns)} "
                            f"columns, query returns {len(columns)}",
                        )
                    )
                columns = list(cte.columns)
            ctes[cte.name.upper()] = columns or []
        self._analyze_body(query.body, outer_scope, ctes, issues)

    def _analyze_body(self, body, outer_scope, ctes, issues):
        if isinstance(body, ast.SetOperation):
            left = self._body_columns(body.left, outer_scope, ctes, issues)
            right = self._body_columns(body.right, outer_scope, ctes, issues)
            if left is not None and right is not None and len(left) != len(right):
                issues.append(
                    AnalysisIssue(
                        "set-arity",
                        f"{body.op} operands return {len(left)} vs "
                        f"{len(right)} columns",
                    )
                )
            self._analyze_body(body.left, outer_scope, ctes, issues)
            self._analyze_body(body.right, outer_scope, ctes, issues)
            return
        self._analyze_select(body, outer_scope, ctes, issues)

    def _analyze_select(self, select, outer_scope, ctes, issues):
        scope = _Scope(parent=outer_scope)
        if select.from_clause is not None:
            self._register_from(select.from_clause, scope, ctes, issues)
        alias_names = {
            item.alias.upper() for item in select.items if item.alias
        }
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                if select.from_clause is None:
                    issues.append(
                        AnalysisIssue("star", "SELECT * without FROM")
                    )
                continue
            self._check_expr(item.expr, scope, ctes, issues)
        if select.where is not None:
            self._check_expr(select.where, scope, ctes, issues)
            if _has_aggregate(select.where):
                issues.append(
                    AnalysisIssue(
                        "aggregate-in-where",
                        "Aggregate function used in WHERE clause",
                    )
                )
        for expr in select.group_by:
            if self._is_alias_or_ordinal(expr, alias_names, len(select.items)):
                continue
            self._check_expr(expr, scope, ctes, issues)
        if select.having is not None:
            self._check_expr(select.having, scope, ctes, issues)
        for item in select.order_by:
            if self._is_alias_or_ordinal(
                item.expr, alias_names, len(select.items)
            ):
                continue
            self._check_expr(item.expr, scope, ctes, issues, lenient=True)

    def _is_alias_or_ordinal(self, expr, alias_names, item_count):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return 1 <= expr.value <= item_count
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            return expr.name.upper() in alias_names
        return False

    def _register_from(self, node, scope, ctes, issues):
        if isinstance(node, ast.TableRef):
            columns = self._relation_columns(node.name, ctes)
            if columns is None:
                issues.append(
                    AnalysisIssue(
                        "unknown-table", f"Unknown table {node.name!r}"
                    )
                )
                scope.add(node.binding_name, [])
            else:
                scope.add(node.binding_name, columns)
            return
        if isinstance(node, ast.SubqueryRef):
            self._analyze_query(node.query, scope.parent or _Scope(), ctes, issues)
            columns = self._body_columns(
                node.query.body, scope.parent or _Scope(), ctes, issues
            )
            scope.add(node.binding_name, columns or [])
            return
        if isinstance(node, ast.Join):
            self._register_from(node.left, scope, ctes, issues)
            self._register_from(node.right, scope, ctes, issues)
            if node.condition is not None:
                self._check_expr(node.condition, scope, ctes, issues)
            return

    def _relation_columns(self, name, ctes):
        cte_columns = ctes.get(name.upper())
        if cte_columns is not None:
            return cte_columns
        if self.database is not None and self.database.has_table(name):
            return self.database.table(name).column_names
        return None

    def _body_columns(self, body, outer_scope, ctes, issues):
        """Best-effort output column names of a query body (None = unknown)."""
        if isinstance(body, ast.SetOperation):
            return self._body_columns(body.left, outer_scope, ctes, issues)
        columns = []
        for item in body.items:
            if isinstance(item.expr, ast.Star):
                expanded = self._star_columns(item.expr, body, ctes)
                if expanded is None:
                    return None
                columns.extend(expanded)
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                columns.append(item.expr.name)
            else:
                columns.append(f"COLUMN_{len(columns) + 1}")
        return columns

    def _star_columns(self, star, select, ctes):
        relations = _flatten_from(select.from_clause)
        columns = []
        for relation in relations:
            if isinstance(relation, ast.TableRef):
                binding = relation.binding_name
                if star.table and binding.upper() != star.table.upper():
                    continue
                relation_columns = self._relation_columns(relation.name, ctes)
                if relation_columns is None:
                    return None
                columns.extend(relation_columns)
            else:
                return None  # derived table star: give up on naming
        return columns or None

    def _check_expr(self, expr, scope, ctes, issues, lenient=False):
        for node in _walk_expression(expr):
            if isinstance(node, ast.ColumnRef):
                verdict = scope.resolve_column(node.table, node.name)
                if verdict == "unknown" and not lenient:
                    issues.append(
                        AnalysisIssue(
                            "unknown-column",
                            f"Cannot resolve column {node.qualified()!r}",
                        )
                    )
                elif verdict == "ambiguous":
                    issues.append(
                        AnalysisIssue(
                            "ambiguous-column",
                            f"Ambiguous column reference {node.name!r}",
                        )
                    )
            elif isinstance(node, (ast.ScalarSubquery, ast.InSubquery)):
                self._analyze_query(node.query, scope, ctes, issues)
            elif isinstance(node, ast.Exists):
                self._analyze_query(node.query, scope, ctes, issues)


def _flatten_from(node):
    """Yield the leaf relations (TableRef/SubqueryRef) of a FROM tree."""
    if node is None:
        return []
    if isinstance(node, ast.Join):
        return _flatten_from(node.left) + _flatten_from(node.right)
    return [node]


def _walk_expression(expr):
    """Walk an expression without descending into subquery bodies."""
    yield expr
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return
    for child in expr.children():
        if isinstance(child, ast.Query):
            continue
        yield from _walk_expression(child)


def _has_aggregate(expr):
    if isinstance(expr, ast.WindowFunction):
        return False  # windowed aggregates are not plain aggregates
    if isinstance(expr, ast.FunctionCall) and (
        expr.name.upper() in _AGGREGATES
    ):
        return True
    if isinstance(expr, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return False
    return any(_has_aggregate(child) for child in expr.children())

"""Back-compat facade over the :mod:`repro.sql.diagnostics` engine.

Historically this module held a standalone five-check analyzer whose
docstring *claimed* the self-correction operator ran it first — it never
did. The checks now live in the diagnostics engine (which the pipeline
really does invoke; see :mod:`repro.pipeline.correction`), and this module
keeps the original ``Analyzer``/``AnalysisIssue`` API for existing callers:
``analyze()`` returns only the error-level findings, translated to the
legacy issue kinds.

New code should use :class:`repro.sql.diagnostics.DiagnosticsEngine`
directly — it adds severities, typed checks, source spans, and
suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diagnostics import DiagnosticsEngine, Severity, aggregate_functions
from .errors import SqlAnalysisError


def __getattr__(name):
    # Legacy private name, now sourced from the execution engine's registry
    # via the diagnostics package (lazy: see checker.aggregate_functions).
    if name == "_AGGREGATES":
        return aggregate_functions()
    raise AttributeError(name)


#: Diagnostic codes whose slug changed; mapped back to the legacy kind.
_LEGACY_KINDS = {
    "GE007": "star",
}


@dataclass(frozen=True)
class AnalysisIssue:
    """One semantic problem found in a query (legacy record)."""

    kind: str
    message: str

    def __str__(self):
        return f"[{self.kind}] {self.message}"


class Analyzer:
    """Analyzes queries against a :class:`~repro.engine.database.Database`.

    Thin wrapper over :class:`~repro.sql.diagnostics.DiagnosticsEngine`
    reporting only error-level findings as legacy :class:`AnalysisIssue`
    records.
    """

    def __init__(self, database):
        self._engine = DiagnosticsEngine(database)

    def analyze(self, query):
        """Return the error-level issues found in a parsed query."""
        return [
            AnalysisIssue(
                kind=_LEGACY_KINDS.get(diag.code, diag.slug),
                message=diag.message,
            )
            for diag in self._engine.run(query)
            if diag.severity is Severity.ERROR
        ]

    def check(self, query):
        """Raise :class:`SqlAnalysisError` on the first issue found."""
        issues = self.analyze(query)
        if issues:
            raise SqlAnalysisError(str(issues[0]))

"""AST node definitions for the SQL dialect.

Every node is a frozen-ish dataclass (mutable for rewriting convenience) with
a uniform ``children()`` iterator so traversals — the analyzer, the CTE
rewriter, and the example decomposer — can walk any tree without per-node
logic. ``walk()`` yields nodes in pre-order.

The node set covers the dialect exercised by the GenEdit reproduction:
SELECT blocks with joins/grouping/windows, CTEs, set operations, scalar and
relational subqueries, CASE, CAST, and function calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


#: Field names per node class, resolved once — dataclasses.fields() builds
#: a fresh tuple on every call, and traversals visit thousands of nodes.
_FIELD_NAMES = {}


def _field_names(cls):
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(item.name for item in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


class Node:
    """Base class providing generic child iteration and traversal."""

    #: Source location (:class:`~repro.sql.tokens.Span`) attached by the
    #: parser. A plain class attribute rather than a dataclass field, so
    #: node equality, hashing, and repr ignore it — rewrites and tests
    #: compare trees structurally regardless of where they were parsed.
    span = None

    def children(self):
        """Yield every child :class:`Node` in field order."""
        for name in _field_names(type(self)):
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Node):
                        yield element
                    elif isinstance(element, tuple):
                        for part in element:
                            if isinstance(part, Node):
                                yield part

    def walk(self):
        """Yield this node then every descendant, pre-order.

        Iterative: a reversed-children stack produces exactly the recursive
        pre-order sequence without a generator frame per tree level. The
        child scan is inlined (same field order as :meth:`children`) so the
        hot traversal never allocates a generator per node.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            children = []
            append = children.append
            for name in _field_names(type(node)):
                value = getattr(node, name)
                if isinstance(value, Node):
                    append(value)
                elif isinstance(value, (list, tuple)):
                    for element in value:
                        if isinstance(element, Node):
                            append(element)
                        elif isinstance(element, tuple):
                            for part in element:
                                if isinstance(part, Node):
                                    append(part)
            children.reverse()
            stack.extend(children)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Literal(Node):
    """A constant: number, string, boolean, or NULL (value is None)."""

    value: object


@dataclass
class ColumnRef(Node):
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    def qualified(self):
        """Render as ``table.column`` or bare ``column``."""
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass
class Star(Node):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: str | None = None


@dataclass
class UnaryOp(Node):
    """Unary operator application: ``-x``, ``+x``, ``NOT x``."""

    op: str
    operand: Node


@dataclass
class BinaryOp(Node):
    """Binary operator application, including AND/OR and ``||``."""

    op: str
    left: Node
    right: Node


@dataclass
class FunctionCall(Node):
    """A scalar or aggregate function call.

    ``COUNT(*)`` is represented with ``args=[Star()]``. ``distinct`` marks
    ``fn(DISTINCT expr)``.
    """

    name: str
    args: list = field(default_factory=list)
    distinct: bool = False


@dataclass
class WindowSpec(Node):
    """``OVER (PARTITION BY ... ORDER BY ...)`` specification."""

    partition_by: list = field(default_factory=list)
    order_by: list = field(default_factory=list)  # of OrderItem


@dataclass
class WindowFunction(Node):
    """A function call evaluated over a window."""

    function: FunctionCall
    window: WindowSpec


@dataclass
class CaseExpression(Node):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Node | None
    whens: list = field(default_factory=list)  # list of (condition, result)
    default: Node | None = None

    def children(self):
        if self.operand is not None:
            yield self.operand
        for condition, result in self.whens:
            yield condition
            yield result
        if self.default is not None:
            yield self.default


@dataclass
class Cast(Node):
    """``CAST(expr AS type)`` — ``target_type`` is an upper-case type name."""

    expr: Node
    target_type: str


@dataclass
class InList(Node):
    """``expr [NOT] IN (item, ...)``."""

    expr: Node
    items: list = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Node):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Node
    query: "Query" = None
    negated: bool = False


@dataclass
class Between(Node):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Node
    low: Node = None
    high: Node = None
    negated: bool = False


@dataclass
class Like(Node):
    """``expr [NOT] LIKE pattern``."""

    expr: Node
    pattern: Node = None
    negated: bool = False


@dataclass
class IsNull(Node):
    """``expr IS [NOT] NULL``."""

    expr: Node
    negated: bool = False


@dataclass
class Exists(Node):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Query" = None
    negated: bool = False


@dataclass
class ScalarSubquery(Node):
    """A parenthesised SELECT used as a scalar expression."""

    query: "Query" = None


# ---------------------------------------------------------------------------
# Relational structure
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One element of the select list: an expression with optional alias."""

    expr: Node
    alias: str | None = None


@dataclass
class OrderItem(Node):
    """One ORDER BY element."""

    expr: Node
    ascending: bool = True
    nulls_first: bool | None = None


@dataclass
class TableRef(Node):
    """A base table (or CTE) reference with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self):
        """The name this relation is visible as in the enclosing scope."""
        return self.alias or self.name


@dataclass
class SubqueryRef(Node):
    """A derived table: ``(SELECT ...) alias``."""

    query: "Query" = None
    alias: str | None = None

    @property
    def binding_name(self):
        return self.alias


@dataclass
class Join(Node):
    """A join between two from-items. ``kind`` is INNER/LEFT/RIGHT/FULL/CROSS."""

    left: Node
    right: Node
    kind: str = "INNER"
    condition: Node | None = None


@dataclass
class Select(Node):
    """A single SELECT block."""

    items: list = field(default_factory=list)  # of SelectItem
    from_clause: Node | None = None
    where: Node | None = None
    group_by: list = field(default_factory=list)
    having: Node | None = None
    order_by: list = field(default_factory=list)  # of OrderItem
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass
class SetOperation(Node):
    """UNION / INTERSECT / EXCEPT between two query bodies."""

    op: str
    left: Node
    right: Node
    all: bool = False
    order_by: list = field(default_factory=list)
    limit: int | None = None


@dataclass
class CommonTableExpression(Node):
    """One CTE in a WITH clause."""

    name: str
    query: "Query" = None
    columns: list = field(default_factory=list)  # optional column aliases


@dataclass
class Query(Node):
    """A full query: optional WITH clause plus a body.

    The body is a :class:`Select` or :class:`SetOperation`. Nested queries
    (CTE bodies, subqueries) are themselves :class:`Query` instances so the
    rewriter can hoist subqueries into CTEs uniformly.
    """

    body: Node = None
    ctes: list = field(default_factory=list)  # of CommonTableExpression

    @property
    def has_ctes(self):
        return bool(self.ctes)


#: Expression node classes, used by the decomposer to distinguish expression
#: granularity from relational granularity.
EXPRESSION_NODES = (
    Literal, ColumnRef, Star, UnaryOp, BinaryOp, FunctionCall,
    WindowFunction, CaseExpression, Cast, InList, InSubquery, Between,
    Like, IsNull, Exists, ScalarSubquery,
)


def _clone_value(value):
    if isinstance(value, Node):
        return clone_tree(value)
    if isinstance(value, list):
        return [_clone_value(element) for element in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(element) for element in value)
    return value


def clone_tree(node):
    """A structurally fresh copy of an AST (much faster than deepcopy).

    Rebuilds every node from its dataclass fields: child nodes and their
    containers are copied, leaf values (strings, numbers, spans) are
    shared — they are treated as immutable everywhere. Non-field annotations
    (memoized digests, cached plans) deliberately do not survive the copy.
    """
    cls = type(node)
    copied = cls(**{
        name: _clone_value(getattr(node, name))
        for name in _field_names(cls)
    })
    span = node.span
    if span is not None:
        copied.span = span
    return copied

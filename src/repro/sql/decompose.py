"""Decompose SQL queries into sub-statements (paper §3.2.1).

GenEdit represents knowledge-set examples not as full queries but as
*decomposed* sub-statements: the query is first rewritten into CTE form,
then split into subqueries (one per CTE plus the final select), and finally
into clause-level sub-statements (projection, FROM, WHERE, GROUP BY, ...)
and expression-level sub-statements (CASE blocks, window functions,
conditional aggregations). Each unit carries a ``pseudo_sql`` form — the
fragment wrapped in ``...`` markers — exactly the representation the CoT
plan steps use in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .printer import to_sql
from .rewriter import to_cte_form

#: Unit kinds, ordered roughly from coarse to fine granularity.
KIND_QUERY = "query"
KIND_SUBQUERY = "subquery"
KIND_PROJECTION = "projection"
KIND_FROM = "from"
KIND_WHERE = "where"
KIND_GROUP_BY = "group_by"
KIND_HAVING = "having"
KIND_ORDER_BY = "order_by"
KIND_SELECT_ITEM = "select_item"
KIND_CASE = "case_expression"
KIND_WINDOW = "window_function"
KIND_EXPR_SUBQUERY = "expression_subquery"


@dataclass
class SqlUnit:
    """One decomposed sub-statement of a SQL query."""

    kind: str
    sql: str
    cte_name: str | None = None
    tables: list = field(default_factory=list)
    columns: list = field(default_factory=list)

    @property
    def pseudo_sql(self):
        """The ``... fragment ...`` form used inside CoT plan steps."""
        return f"... {self.sql} ..."

    def __str__(self):
        origin = f" [{self.cte_name}]" if self.cte_name else ""
        return f"{self.kind}{origin}: {self.sql}"


def decompose(query):
    """Decompose a parsed :class:`Query` into :class:`SqlUnit` fragments.

    The query is canonicalised to CTE form first; the returned list starts
    with one ``query`` unit for the whole (canonicalised) statement, then a
    ``subquery`` unit per CTE and for the final body, then clause and
    expression units in source order.
    """
    canonical = to_cte_form(query)
    units = [
        SqlUnit(
            kind=KIND_QUERY,
            sql=to_sql(canonical),
            tables=_referenced_tables(canonical),
            columns=_referenced_columns(canonical),
        )
    ]
    for cte in canonical.ctes:
        units.append(
            SqlUnit(
                kind=KIND_SUBQUERY,
                sql=to_sql(cte.query),
                cte_name=cte.name,
                tables=_referenced_tables(cte.query),
                columns=_referenced_columns(cte.query),
            )
        )
        units.extend(_decompose_body(cte.query.body, cte.name))
    units.append(
        SqlUnit(
            kind=KIND_SUBQUERY,
            sql=to_sql(canonical.body),
            cte_name=None,
            tables=_referenced_tables(canonical.body),
            columns=_referenced_columns(canonical.body),
        )
    )
    units.extend(_decompose_body(canonical.body, None))
    return units


def _decompose_body(body, cte_name):
    if isinstance(body, ast.SetOperation):
        return _decompose_body(body.left, cte_name) + _decompose_body(
            body.right, cte_name
        )
    return list(_decompose_select(body, cte_name))


def _decompose_select(select, cte_name):
    projection = ", ".join(to_sql(item) for item in select.items)
    yield _unit(KIND_PROJECTION, f"SELECT {projection}", select.items, cte_name)
    if select.from_clause is not None:
        yield _unit(
            KIND_FROM,
            f"FROM {to_sql(select.from_clause)}",
            [select.from_clause],
            cte_name,
        )
    if select.where is not None:
        yield _unit(
            KIND_WHERE, f"WHERE {to_sql(select.where)}", [select.where], cte_name
        )
    if select.group_by:
        rendered = ", ".join(to_sql(expr) for expr in select.group_by)
        yield _unit(
            KIND_GROUP_BY, f"GROUP BY {rendered}", select.group_by, cte_name
        )
    if select.having is not None:
        yield _unit(
            KIND_HAVING,
            f"HAVING {to_sql(select.having)}",
            [select.having],
            cte_name,
        )
    if select.order_by:
        rendered = ", ".join(to_sql(item) for item in select.order_by)
        suffix = ""
        if select.limit is not None:
            suffix = f" LIMIT {select.limit}"
        yield _unit(
            KIND_ORDER_BY,
            f"ORDER BY {rendered}{suffix}",
            select.order_by,
            cte_name,
        )
    # Expression-granularity units: individually meaningful select items and
    # notable sub-expressions. These are the fragments that most often carry
    # business meaning (e.g. the RPV calculation in Fig. 2).
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            continue
        if _is_complex(item.expr) or item.alias:
            yield _unit(KIND_SELECT_ITEM, to_sql(item), [item], cte_name)
        for node in item.expr.walk():
            if isinstance(node, ast.CaseExpression):
                yield _unit(KIND_CASE, to_sql(node), [node], cte_name)
            elif isinstance(node, ast.WindowFunction):
                yield _unit(KIND_WINDOW, to_sql(node), [node], cte_name)
    for root in _predicate_roots(select):
        for node in root.walk():
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                yield _unit(
                    KIND_EXPR_SUBQUERY, to_sql(node), [node], cte_name
                )


def _predicate_roots(select):
    roots = []
    if select.where is not None:
        roots.append(select.where)
    if select.having is not None:
        roots.append(select.having)
    return roots


def _is_complex(expr):
    """True for expressions beyond a bare column or literal."""
    return not isinstance(expr, (ast.ColumnRef, ast.Literal, ast.Star))


def _unit(kind, sql, nodes, cte_name):
    tables = []
    columns = []
    for node in nodes:
        tables.extend(_referenced_tables(node))
        columns.extend(_referenced_columns(node))
    return SqlUnit(
        kind=kind,
        sql=sql,
        cte_name=cte_name,
        tables=_unique(tables),
        columns=_unique(columns),
    )


def _referenced_tables(node):
    names = []
    for descendant in node.walk():
        if isinstance(descendant, ast.TableRef):
            names.append(descendant.name.upper())
    return _unique(names)


def _referenced_columns(node):
    names = []
    for descendant in node.walk():
        if isinstance(descendant, ast.ColumnRef):
            names.append(descendant.name.upper())
    return _unique(names)


def _unique(values):
    seen = set()
    output = []
    for value in values:
        if value not in seen:
            seen.add(value)
            output.append(value)
    return output

"""Recursive-descent parser producing :mod:`repro.sql.ast_nodes` trees.

The entry point is :func:`parse`, which accepts SQL text and returns a
:class:`~repro.sql.ast_nodes.Query`. Parse failures raise
:class:`~repro.sql.errors.SqlSyntaxError` with location information — the
self-correction operator relies on these messages. Key nodes (relations,
select blocks, column references, operators, literals) carry a
:class:`~repro.sql.tokens.Span` on ``node.span`` so the diagnostics engine
can report the offending source location.

Grammar (informal)::

    query      := [WITH cte ("," cte)*] set_expr
    set_expr   := select ((UNION [ALL] | INTERSECT | EXCEPT) select)*
                  [ORDER BY order_items] [LIMIT n [OFFSET m]]
    select     := SELECT [DISTINCT] select_items
                  [FROM from_expr] [WHERE expr]
                  [GROUP BY exprs] [HAVING expr]
    from_expr  := from_item (join_clause | "," from_item)*
    from_item  := name [[AS] alias] | "(" query ")" [AS] alias
    expr       := standard precedence-climbing expression grammar with
                  OR < AND < NOT < predicates < comparison < additive <
                  multiplicative < unary < primary
"""

from __future__ import annotations

import functools

from . import ast_nodes as ast
from .errors import SqlSyntaxError
from .tokens import Span, Token, TokenType, tokenize

_COMPARISON_OPERATORS = frozenset({"=", "<>", "<", ">", "<=", ">="})
_JOIN_KEYWORDS = ("INNER", "LEFT", "RIGHT", "FULL", "CROSS", "JOIN")
_SET_OPERATORS = ("UNION", "INTERSECT", "EXCEPT")
_TYPE_NAMES = frozenset(
    {
        "INT", "INTEGER", "BIGINT", "SMALLINT", "FLOAT", "REAL", "DOUBLE",
        "DECIMAL", "NUMERIC", "TEXT", "VARCHAR", "CHAR", "STRING", "DATE",
        "BOOLEAN", "BOOL", "TIMESTAMP",
    }
)


def parse(sql):
    """Parse SQL text into a :class:`Query` AST."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect_end()
    return query


#: Default size of the :func:`parse_cached` LRU. Large enough to hold every
#: distinct statement of a full harness run (gold + predicted + decomposed
#: fragments) without ever churning in practice.
PARSE_CACHE_SIZE = 4096


@functools.lru_cache(maxsize=PARSE_CACHE_SIZE)
def parse_cached(sql):
    """Parse ``sql``, memoizing the AST across calls (LRU, keyed on text).

    The same statement is parsed repeatedly on the evaluation fast path —
    self-correction executes it, the final check executes it again, and the
    EX metric executes it once more — so the AST is cached and **shared**
    between callers. Treat the returned tree as immutable: every in-repo
    rewrite (:func:`repro.sql.rewriter.to_cte_form`, and the decomposer
    through it) deep-copies before mutating. Callers that need a private,
    mutable tree should use :func:`parse`.

    Parse failures are not cached; failing text re-raises on every call.
    """
    return parse(sql)


def parse_cache_info():
    """Hit/miss stats of the shared AST cache (``lru_cache.cache_info()``).

    The metrics registry snapshots these as gauges (see
    :func:`repro.obs.metrics.global_snapshot`) rather than counting per
    call — the LRU already keeps exact numbers without extra locking.
    """
    return parse_cached.cache_info()


def parse_expression(sql):
    """Parse a standalone expression (used by tests and the decomposer)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset=0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message):
        token = self._current
        shown = token.value or "<end of input>"
        raise SqlSyntaxError(
            f"{message}, found {shown!r}",
            position=token.position, line=token.line, column=token.column,
        )

    def _spanned(self, node, token):
        """Attach ``token``'s location to ``node`` (diagnostics point here)."""
        node.span = Span.from_token(token)
        return node

    def _accept_keyword(self, *names):
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, name):
        token = self._accept_keyword(name)
        if token is None:
            self._error(f"Expected {name}")
        return token

    def _accept_punct(self, value):
        if self._current.matches(TokenType.PUNCTUATION, value):
            return self._advance()
        return None

    def _expect_punct(self, value):
        token = self._accept_punct(value)
        if token is None:
            self._error(f"Expected {value!r}")
        return token

    def _accept_operator(self, *values):
        if self._current.type is TokenType.OPERATOR and (
            self._current.value in values
        ):
            return self._advance()
        return None

    def expect_end(self):
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            self._error("Expected end of input")

    def _expect_identifier(self, what="identifier"):
        if self._current.type is TokenType.IDENTIFIER:
            return self._advance().value
        # Non-reserved words used as identifiers are uncommon in our dialect;
        # allow type names (e.g. a column named DATE) to double as names.
        if self._current.type is TokenType.KEYWORD and (
            self._current.value in _TYPE_NAMES
        ):
            return self._advance().value
        self._error(f"Expected {what}")

    # -- query structure ----------------------------------------------------

    def parse_query(self):
        ctes = []
        if self._accept_keyword("WITH"):
            ctes.append(self._parse_cte())
            while self._accept_punct(","):
                ctes.append(self._parse_cte())
        body = self._parse_set_expr()
        return ast.Query(body=body, ctes=ctes)

    def _parse_cte(self):
        start = self._current
        name = self._expect_identifier("CTE name")
        columns = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier("column name"))
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        self._expect_keyword("AS")
        self._expect_punct("(")
        query = self.parse_query()
        self._expect_punct(")")
        return self._spanned(
            ast.CommonTableExpression(name=name, query=query, columns=columns),
            start,
        )

    def _parse_set_expr(self):
        node = self._parse_select()
        saw_set_operation = False
        while self._current.is_keyword(*_SET_OPERATORS):
            op_token = self._advance()
            use_all = bool(self._accept_keyword("ALL"))
            right = self._parse_select()
            node = self._spanned(
                ast.SetOperation(
                    op=op_token.value, left=node, right=right, all=use_all
                ),
                op_token,
            )
            saw_set_operation = True
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit()
        if saw_set_operation:
            node.order_by = order_by
            node.limit = limit
        else:
            if order_by:
                node.order_by = order_by
            if limit is not None:
                node.limit = limit
            if offset is not None:
                node.offset = offset
        return node

    def _parse_select(self):
        if self._accept_punct("("):
            # Parenthesised query body inside a set expression.
            query = self.parse_query()
            self._expect_punct(")")
            if query.ctes:
                self._error("WITH not allowed in parenthesised set operand")
            return query.body
        select_token = self._current
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        from_clause = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self._accept_punct(","):
                group_by.append(self.parse_expr())
        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expr()
        return self._spanned(
            ast.Select(
                items=items,
                from_clause=from_clause,
                where=where,
                group_by=group_by,
                having=having,
                distinct=distinct,
            ),
            select_token,
        )

    def _parse_select_item(self):
        if self._current.matches(TokenType.OPERATOR, "*"):
            star_token = self._advance()
            return ast.SelectItem(expr=self._spanned(ast.Star(), star_token))
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_by(self):
        if not self._accept_keyword("ORDER"):
            return []
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self):
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        nulls_first = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_first = True
            else:
                self._expect_keyword("LAST")
                nulls_first = False
        return ast.OrderItem(expr=expr, ascending=ascending, nulls_first=nulls_first)

    def _parse_limit(self):
        limit = None
        offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_integer("LIMIT count")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_integer("OFFSET count")
        return limit, offset

    def _parse_integer(self, what):
        if self._current.type is not TokenType.NUMBER:
            self._error(f"Expected integer for {what}")
        text = self._advance().value
        try:
            return int(text)
        except ValueError:
            self._error(f"Expected integer for {what}")

    # -- FROM clause ---------------------------------------------------------

    def _parse_from(self):
        node = self._parse_from_item()
        while True:
            comma = self._accept_punct(",")
            if comma is not None:
                right = self._parse_from_item()
                node = self._spanned(
                    ast.Join(left=node, right=right, kind="CROSS"), comma
                )
                continue
            if not self._current.is_keyword(*_JOIN_KEYWORDS):
                break
            node = self._parse_join(node)
        return node

    def _parse_join(self, left):
        start = self._current
        kind = "INNER"
        if self._accept_keyword("INNER"):
            kind = "INNER"
        elif self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            kind = "LEFT"
        elif self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            kind = "RIGHT"
        elif self._accept_keyword("FULL"):
            self._accept_keyword("OUTER")
            kind = "FULL"
        elif self._accept_keyword("CROSS"):
            kind = "CROSS"
        self._expect_keyword("JOIN")
        right = self._parse_from_item()
        condition = None
        if kind != "CROSS":
            self._expect_keyword("ON")
            condition = self.parse_expr()
        return self._spanned(
            ast.Join(left=left, right=right, kind=kind, condition=condition),
            start,
        )

    def _parse_from_item(self):
        start = self._current
        if self._accept_punct("("):
            query = self.parse_query()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_identifier("derived table alias")
            return self._spanned(
                ast.SubqueryRef(query=query, alias=alias), start
            )
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return self._spanned(ast.TableRef(name=name, alias=alias), start)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        node = self._parse_and()
        while self._accept_keyword("OR"):
            node = ast.BinaryOp(op="OR", left=node, right=self._parse_and())
        return node

    def _parse_and(self):
        node = self._parse_not()
        while self._accept_keyword("AND"):
            node = ast.BinaryOp(op="AND", left=node, right=self._parse_not())
        return node

    def _parse_not(self):
        if self._accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self):
        node = self._parse_comparison()
        while True:
            negated = False
            if self._current.is_keyword("NOT") and self._peek(1).is_keyword(
                "IN", "LIKE", "BETWEEN"
            ):
                self._advance()
                negated = True
            if self._accept_keyword("IS"):
                is_negated = bool(self._accept_keyword("NOT"))
                self._expect_keyword("NULL")
                node = ast.IsNull(expr=node, negated=is_negated)
                continue
            if self._accept_keyword("IN"):
                node = self._parse_in(node, negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._parse_comparison()
                node = ast.Like(expr=node, pattern=pattern, negated=negated)
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_comparison()
                self._expect_keyword("AND")
                high = self._parse_comparison()
                node = ast.Between(expr=node, low=low, high=high, negated=negated)
                continue
            if negated:
                self._error("Expected IN, LIKE or BETWEEN after NOT")
            return node

    def _parse_in(self, expr, negated):
        self._expect_punct("(")
        if self._current.is_keyword("SELECT", "WITH"):
            query = self.parse_query()
            self._expect_punct(")")
            return ast.InSubquery(expr=expr, query=query, negated=negated)
        items = [self.parse_expr()]
        while self._accept_punct(","):
            items.append(self.parse_expr())
        self._expect_punct(")")
        return ast.InList(expr=expr, items=items, negated=negated)

    def _parse_comparison(self):
        node = self._parse_additive()
        operator = self._accept_operator(*_COMPARISON_OPERATORS)
        if operator is not None:
            node = self._spanned(
                ast.BinaryOp(
                    op=operator.value, left=node, right=self._parse_additive()
                ),
                operator,
            )
        return node

    def _parse_additive(self):
        node = self._parse_multiplicative()
        while True:
            operator = self._accept_operator("+", "-", "||")
            if operator is None:
                return node
            node = self._spanned(
                ast.BinaryOp(
                    op=operator.value, left=node,
                    right=self._parse_multiplicative(),
                ),
                operator,
            )

    def _parse_multiplicative(self):
        node = self._parse_unary()
        while True:
            operator = self._accept_operator("*", "/", "%")
            if operator is None:
                return node
            node = self._spanned(
                ast.BinaryOp(
                    op=operator.value, left=node, right=self._parse_unary()
                ),
                operator,
            )

    def _parse_unary(self):
        operator = self._accept_operator("-", "+")
        if operator is not None:
            return ast.UnaryOp(op=operator.value, operand=self._parse_unary())
        return self._parse_primary()

    # -- primaries -----------------------------------------------------------

    def _parse_primary(self):
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return self._spanned(
                ast.Literal(value=_number_value(token.value)), token
            )
        if token.type is TokenType.STRING:
            self._advance()
            return self._spanned(ast.Literal(value=token.value), token)
        if token.is_keyword("NULL"):
            self._advance()
            return self._spanned(ast.Literal(value=None), token)
        if token.is_keyword("TRUE"):
            self._advance()
            return self._spanned(ast.Literal(value=True), token)
        if token.is_keyword("FALSE"):
            self._advance()
            return self._spanned(ast.Literal(value=False), token)
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self.parse_query()
            self._expect_punct(")")
            return ast.Exists(query=query)
        if token.is_keyword("NOT") :
            # NOT EXISTS reaches here via _parse_not; nothing else expected.
            self._error("Unexpected NOT")
        if self._accept_punct("("):
            if self._current.is_keyword("SELECT", "WITH"):
                query = self.parse_query()
                self._expect_punct(")")
                return ast.ScalarSubquery(query=query)
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD and token.value in _TYPE_NAMES
        ):
            return self._parse_name_or_call()
        self._error("Expected expression")

    def _parse_cast(self):
        self._expect_keyword("CAST")
        self._expect_punct("(")
        expr = self.parse_expr()
        self._expect_keyword("AS")
        type_name = self._parse_type_name()
        self._expect_punct(")")
        return ast.Cast(expr=expr, target_type=type_name)

    def _parse_type_name(self):
        token = self._current
        name = None
        if token.type is TokenType.KEYWORD and token.value in _TYPE_NAMES:
            name = self._advance().value
        elif token.type is TokenType.IDENTIFIER and (
            token.value.upper() in _TYPE_NAMES
        ):
            name = self._advance().value.upper()
        else:
            self._error("Expected type name")
        # Optional precision/scale, e.g. DECIMAL(10, 2): parsed and ignored.
        if self._accept_punct("("):
            self._parse_integer("type precision")
            if self._accept_punct(","):
                self._parse_integer("type scale")
            self._expect_punct(")")
        return name

    def _parse_case(self):
        self._expect_keyword("CASE")
        operand = None
        if not self._current.is_keyword("WHEN"):
            operand = self.parse_expr()
        whens = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expr()
            self._expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((condition, result))
        if not whens:
            self._error("CASE requires at least one WHEN")
        default = None
        if self._accept_keyword("ELSE"):
            default = self.parse_expr()
        self._expect_keyword("END")
        return ast.CaseExpression(operand=operand, whens=whens, default=default)

    def _parse_name_or_call(self):
        start = self._current
        name = self._advance().value
        if self._accept_punct("("):
            return self._parse_call_tail(name, start)
        if self._accept_punct("."):
            if self._current.matches(TokenType.OPERATOR, "*"):
                self._advance()
                return self._spanned(ast.Star(table=name), start)
            column = self._expect_identifier("column name")
            return self._spanned(
                ast.ColumnRef(name=column, table=name), start
            )
        return self._spanned(ast.ColumnRef(name=name), start)

    def _parse_call_tail(self, name, start):
        distinct = bool(self._accept_keyword("DISTINCT"))
        args = []
        if not self._accept_punct(")"):
            args.append(self._parse_call_argument())
            while self._accept_punct(","):
                args.append(self._parse_call_argument())
            self._expect_punct(")")
        call = self._spanned(
            ast.FunctionCall(name=name.upper(), args=args, distinct=distinct),
            start,
        )
        if self._accept_keyword("OVER"):
            return self._spanned(
                ast.WindowFunction(function=call, window=self._parse_window()),
                start,
            )
        return call

    def _parse_call_argument(self):
        if self._current.matches(TokenType.OPERATOR, "*"):
            star_token = self._advance()
            return self._spanned(ast.Star(), star_token)
        return self.parse_expr()

    def _parse_window(self):
        self._expect_punct("(")
        partition_by = []
        order_by = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self.parse_expr())
            while self._accept_punct(","):
                partition_by.append(self.parse_expr())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        self._expect_punct(")")
        return ast.WindowSpec(partition_by=partition_by, order_by=order_by)


def _number_value(text):
    if any(marker in text for marker in (".", "e", "E")):
        return float(text)
    return int(text)

"""Error types raised by the SQL frontend (lexing, parsing, analysis).

These are deliberately fine-grained: the GenEdit self-correction loop
(``repro.pipeline.correction``) distinguishes *syntactic* errors (caught at
parse time) from *semantic* errors (caught by the analyzer or the engine) and
feeds the error class and message back into regeneration as context.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for every error produced by the SQL frontend."""


class SqlSyntaxError(SqlError):
    """Raised when the input text cannot be tokenized or parsed.

    Carries the position of the offending token so error messages can point
    at the exact location, which the self-correction operator includes in its
    regeneration context.
    """

    def __init__(self, message, position=None, line=None, column=None):
        self.position = position
        self.line = line
        self.column = column
        location = ""
        if line is not None and column is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")


class SqlAnalysisError(SqlError):
    """Raised by the semantic analyzer for name-resolution failures.

    Examples: unknown table, unknown column, ambiguous column reference,
    aggregate misuse, or a mismatched number of columns in a set operation.
    """

    def __init__(self, message, node=None):
        self.node = node
        super().__init__(message)


class SqlUnsupportedError(SqlError):
    """Raised when syntactically valid SQL uses a feature the engine lacks."""

"""SQL tokenizer.

Produces a flat list of :class:`Token` objects from SQL text. The dialect is
the subset used throughout the GenEdit reproduction: standard SELECT queries
with CTEs, joins, subqueries, window functions, CASE expressions, and the
scalar/date functions that appear in enterprise warehouse queries such as the
paper's Appendix A example (``TO_CHAR``, ``NULLIF``, ``CAST`` ...).

The tokenizer is intentionally independent of the parser so that other
components can reuse it: the example decomposer uses token streams to slice
sub-statements, and the knowledge-set miner tokenizes logged queries when
attaching provenance.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass
from enum import Enum, auto

from .errors import SqlSyntaxError


class TokenType(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    EOF = auto()


@dataclass(frozen=True)
class Span:
    """Source location of a syntactic element (start of its first token).

    The parser attaches spans to AST nodes (``Node.span``) so diagnostics can
    point at the offending text. Spans live outside dataclass fields, so node
    equality and repr are unaffected.
    """

    position: int
    line: int
    column: int

    @classmethod
    def from_token(cls, token):
        return cls(token.position, token.line, token.column)

    def describe(self):
        return f"line {self.line}, column {self.column}"

    def __str__(self):
        return f"{self.line}:{self.column}"


#: Reserved words recognised as keywords (upper-cased during lexing).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
        "OUTER", "CROSS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
        "BETWEEN", "EXISTS", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST",
        "WITH", "UNION", "ALL", "INTERSECT", "EXCEPT", "DISTINCT", "ASC",
        "DESC", "OVER", "PARTITION", "TRUE", "FALSE", "NULLS", "FIRST",
        "LAST", "ROWS", "CURRENT", "ROW", "PRECEDING", "FOLLOWING",
        "UNBOUNDED", "VALUES", "INSERT", "INTO", "CREATE", "TABLE",
        "PRIMARY", "KEY", "REFERENCES", "FOREIGN",
    }
)

#: Multi-character operators, longest first so lexing is greedy.
_MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "||")
_SINGLE_CHAR_OPERATORS = frozenset("+-*/%=<>")
_PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the canonical text: keywords are upper-cased, string
    literals are unquoted (with doubled quotes collapsed), and identifiers
    keep their original case (SQL resolution is case-insensitive; the
    analyzer normalises at lookup time).
    """

    type: TokenType
    value: str
    position: int = 0
    line: int = 1
    column: int = 1

    def matches(self, token_type, value=None):
        """Return True when this token has ``token_type`` (and ``value``)."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value

    def is_keyword(self, *names):
        """Return True when the token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


class _Cursor:
    """Tracks position/line/column while scanning the source text."""

    def __init__(self, text):
        self.text = text
        self.index = 0
        self.line = 1
        self.column = 1

    def peek(self, offset=0):
        index = self.index + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def advance(self, count=1):
        for _ in range(count):
            if self.index >= len(self.text):
                return
            if self.text[self.index] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.index += 1

    @property
    def exhausted(self):
        return self.index >= len(self.text)


#: One alternation per lexical shape, tried in the same precedence order as
#: the character scanner (comments before operators, numbers before the dot
#: punctuation). ASCII-only on purpose: any text the pattern cannot account
#: for — unicode identifiers, malformed literals — drops to the scanner.
_TOKEN_REGEX = re.compile(
    r"""
      [ \t\r\n]+
    | --[^\n]*
    | /\*(?:[^*]|\*(?!/))*\*/
    | (?P<string>'(?:[^']|'')*')
    | (?P<qident>"[^"]*")
    | (?P<number>(?:[0-9]+(?:\.[0-9]+)?|\.[0-9]+)(?:[eE][+-]?[0-9]+)?)
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op><>|!=|>=|<=|\|\||[-+*/%=<>])
    | (?P<punct>[(),.;])
    """,
    re.VERBOSE,
)


class _FastLexUnsupported(Exception):
    """Input the regex lexer cannot reproduce faithfully; rescan instead."""


def tokenize(sql):
    """Tokenize ``sql`` and return a list of tokens ending with an EOF token.

    Raises :class:`SqlSyntaxError` on unterminated strings or characters
    outside the dialect.

    Lexing is regex-driven for the common all-ASCII case; anything the
    pattern table cannot reproduce exactly (unicode word characters, any
    malformed construct) re-lexes with the character scanner, which owns
    the precise error reporting.
    """
    try:
        return _tokenize_fast(sql)
    except _FastLexUnsupported:
        return _tokenize_scan(sql)


def _tokenize_fast(sql):
    newlines = []
    found = sql.find("\n")
    while found != -1:
        newlines.append(found)
        found = sql.find("\n", found + 1)

    def locate(position):
        if not newlines:
            return 1, position + 1
        preceding = bisect_left(newlines, position)
        if preceding == 0:
            return 1, position + 1
        return preceding + 1, position - newlines[preceding - 1]

    tokens = []
    position = 0
    length = len(sql)
    match_at = _TOKEN_REGEX.match
    while position < length:
        match = match_at(sql, position)
        if match is None:
            raise _FastLexUnsupported
        group = match.lastgroup
        if group is not None:
            text = match.group()
            line, column = locate(position)
            if group == "word":
                upper = text.upper()
                if upper in KEYWORDS:
                    token = Token(
                        TokenType.KEYWORD, upper, position, line, column
                    )
                else:
                    token = Token(
                        TokenType.IDENTIFIER, text, position, line, column
                    )
            elif group == "string":
                token = Token(
                    TokenType.STRING, text[1:-1].replace("''", "'"),
                    position, line, column,
                )
            elif group == "number":
                token = Token(TokenType.NUMBER, text, position, line, column)
            elif group == "op":
                if text == "/" and sql.startswith("/*", position):
                    # An unterminated block comment: the comment alternative
                    # failed to match, so '/' fell through to the operator
                    # branch. The scanner raises the right error.
                    raise _FastLexUnsupported
                token = Token(
                    TokenType.OPERATOR, "<>" if text == "!=" else text,
                    position, line, column,
                )
            elif group == "punct":
                token = Token(
                    TokenType.PUNCTUATION, text, position, line, column
                )
            else:  # qident
                token = Token(
                    TokenType.IDENTIFIER, text[1:-1], position, line, column
                )
            tokens.append(token)
        position = match.end()
    line, column = locate(length)
    tokens.append(Token(TokenType.EOF, "", length, line, column))
    return tokens


def _tokenize_scan(sql):
    """The reference character-at-a-time lexer (and error reporter)."""
    cursor = _Cursor(sql)
    tokens = []
    while not cursor.exhausted:
        char = cursor.peek()
        if char in " \t\r\n":
            cursor.advance()
            continue
        if char == "-" and cursor.peek(1) == "-":
            _skip_line_comment(cursor)
            continue
        if char == "/" and cursor.peek(1) == "*":
            _skip_block_comment(cursor)
            continue
        start = (cursor.index, cursor.line, cursor.column)
        if char == "'":
            tokens.append(_lex_string(cursor, start))
        elif char == '"':
            tokens.append(_lex_quoted_identifier(cursor, start))
        elif char.isdigit() or (char == "." and cursor.peek(1).isdigit()):
            tokens.append(_lex_number(cursor, start))
        elif char.isalpha() or char == "_":
            tokens.append(_lex_word(cursor, start))
        elif _try_multi_operator(cursor, tokens, start):
            continue
        elif char in _SINGLE_CHAR_OPERATORS:
            cursor.advance()
            tokens.append(_make(TokenType.OPERATOR, char, start))
        elif char in _PUNCTUATION:
            cursor.advance()
            tokens.append(_make(TokenType.PUNCTUATION, char, start))
        else:
            raise SqlSyntaxError(
                f"Unexpected character {char!r}",
                position=start[0], line=start[1], column=start[2],
            )
    tokens.append(
        Token(TokenType.EOF, "", len(sql), cursor.line, cursor.column)
    )
    return tokens


def _make(token_type, value, start):
    return Token(token_type, value, start[0], start[1], start[2])


def _skip_line_comment(cursor):
    while not cursor.exhausted and cursor.peek() != "\n":
        cursor.advance()


def _skip_block_comment(cursor):
    start = (cursor.index, cursor.line, cursor.column)
    cursor.advance(2)
    while not cursor.exhausted:
        if cursor.peek() == "*" and cursor.peek(1) == "/":
            cursor.advance(2)
            return
        cursor.advance()
    raise SqlSyntaxError(
        "Unterminated block comment",
        position=start[0], line=start[1], column=start[2],
    )


def _lex_string(cursor, start):
    cursor.advance()  # opening quote
    parts = []
    while True:
        if cursor.exhausted:
            raise SqlSyntaxError(
                "Unterminated string literal",
                position=start[0], line=start[1], column=start[2],
            )
        char = cursor.peek()
        if char == "'":
            if cursor.peek(1) == "'":  # escaped quote
                parts.append("'")
                cursor.advance(2)
                continue
            cursor.advance()
            break
        parts.append(char)
        cursor.advance()
    return _make(TokenType.STRING, "".join(parts), start)


def _lex_quoted_identifier(cursor, start):
    cursor.advance()  # opening quote
    parts = []
    while True:
        if cursor.exhausted:
            raise SqlSyntaxError(
                "Unterminated quoted identifier",
                position=start[0], line=start[1], column=start[2],
            )
        char = cursor.peek()
        if char == '"':
            cursor.advance()
            break
        parts.append(char)
        cursor.advance()
    return _make(TokenType.IDENTIFIER, "".join(parts), start)


def _lex_number(cursor, start):
    parts = []
    seen_dot = False
    seen_exponent = False
    while not cursor.exhausted:
        char = cursor.peek()
        if char.isdigit():
            parts.append(char)
        elif char == "." and not seen_dot and not seen_exponent:
            # A dot not followed by a digit terminates the number (it is
            # punctuation, e.g. a qualified name after a numeric alias).
            if not cursor.peek(1).isdigit():
                break
            seen_dot = True
            parts.append(char)
        elif char in "eE" and not seen_exponent and parts:
            next_char = cursor.peek(1)
            if next_char.isdigit() or (
                next_char in "+-" and cursor.peek(2).isdigit()
            ):
                seen_exponent = True
                parts.append(char)
                cursor.advance()
                parts.append(cursor.peek())
            else:
                break
        else:
            break
        cursor.advance()
    return _make(TokenType.NUMBER, "".join(parts), start)


def _lex_word(cursor, start):
    parts = []
    while not cursor.exhausted:
        char = cursor.peek()
        if char.isalnum() or char == "_":
            parts.append(char)
            cursor.advance()
        else:
            break
    word = "".join(parts)
    upper = word.upper()
    if upper in KEYWORDS:
        return _make(TokenType.KEYWORD, upper, start)
    return _make(TokenType.IDENTIFIER, word, start)


def _try_multi_operator(cursor, tokens, start):
    for operator in _MULTI_CHAR_OPERATORS:
        if cursor.text.startswith(operator, cursor.index):
            cursor.advance(len(operator))
            canonical = "<>" if operator == "!=" else operator
            tokens.append(_make(TokenType.OPERATOR, canonical, start))
            return True
    return False

"""Render an AST back to SQL text.

Two renderers are provided:

* :func:`to_sql` — compact single-line rendering, used for equality checks,
  logging, and pseudo-SQL fragments inside CoT plan steps.
* :func:`format_sql` — pretty multi-line rendering with one clause per line
  and indented CTE bodies, used when presenting generated SQL to users and
  when writing examples into the knowledge set.

Both are loss-free over the dialect: ``parse(to_sql(parse(q)))`` produces an
equivalent tree (verified by the round-trip property tests).
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import SqlUnsupportedError


def to_sql(node):
    """Render ``node`` (query or expression) as compact SQL."""
    return _render(node)


def format_sql(query, indent="  "):
    """Render a :class:`Query` as pretty, multi-line SQL."""
    return _PrettyPrinter(indent).render_query(query)


# ---------------------------------------------------------------------------
# Compact renderer
# ---------------------------------------------------------------------------


def _render(node):
    renderer = _RENDERERS.get(type(node))
    if renderer is None:
        raise SqlUnsupportedError(f"Cannot render node {type(node).__name__}")
    return renderer(node)


def _render_literal(node):
    value = node.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def _render_column(node):
    return node.qualified()


def _render_star(node):
    return f"{node.table}.*" if node.table else "*"


def _render_unary(node):
    operand = _render(node.operand)
    if node.op == "NOT":
        return f"NOT {_parenthesize_boolean(node.operand, operand)}"
    return f"{node.op}{_maybe_paren(node.operand, operand)}"


_PRECEDENCE = {
    "OR": 1, "AND": 2,
    "=": 3, "<>": 3, "<": 3, ">": 3, "<=": 3, ">=": 3,
    "+": 4, "-": 4, "||": 4,
    "*": 5, "/": 5, "%": 5,
}


def _render_binary(node):
    left = _render(node.left)
    right = _render(node.right)
    precedence = _PRECEDENCE[node.op]
    if isinstance(node.left, ast.BinaryOp) and (
        _PRECEDENCE[node.left.op] < precedence
    ):
        left = f"({left})"
    if isinstance(node.right, ast.BinaryOp) and (
        _PRECEDENCE[node.right.op] <= precedence
    ):
        right = f"({right})"
    return f"{left} {node.op} {right}"


def _maybe_paren(child, rendered):
    if isinstance(child, (ast.BinaryOp, ast.CaseExpression)):
        return f"({rendered})"
    return rendered


def _parenthesize_boolean(child, rendered):
    if isinstance(child, ast.BinaryOp) and child.op in ("AND", "OR"):
        return f"({rendered})"
    return rendered


def _render_call(node):
    args = ", ".join(_render(arg) for arg in node.args)
    distinct = "DISTINCT " if node.distinct else ""
    return f"{node.name}({distinct}{args})"


def _render_window_function(node):
    return f"{_render(node.function)} OVER {_render(node.window)}"


def _render_window_spec(node):
    parts = []
    if node.partition_by:
        exprs = ", ".join(_render(expr) for expr in node.partition_by)
        parts.append(f"PARTITION BY {exprs}")
    if node.order_by:
        items = ", ".join(_render(item) for item in node.order_by)
        parts.append(f"ORDER BY {items}")
    return "(" + " ".join(parts) + ")"


def _render_case(node):
    parts = ["CASE"]
    if node.operand is not None:
        parts.append(_render(node.operand))
    for condition, result in node.whens:
        parts.append(f"WHEN {_render(condition)} THEN {_render(result)}")
    if node.default is not None:
        parts.append(f"ELSE {_render(node.default)}")
    parts.append("END")
    return " ".join(parts)


def _render_cast(node):
    return f"CAST({_render(node.expr)} AS {node.target_type})"


def _render_in_list(node):
    items = ", ".join(_render(item) for item in node.items)
    negation = "NOT " if node.negated else ""
    return f"{_render(node.expr)} {negation}IN ({items})"


def _render_in_subquery(node):
    negation = "NOT " if node.negated else ""
    return f"{_render(node.expr)} {negation}IN ({_render(node.query)})"


def _render_between(node):
    negation = "NOT " if node.negated else ""
    return (
        f"{_render(node.expr)} {negation}BETWEEN "
        f"{_render(node.low)} AND {_render(node.high)}"
    )


def _render_like(node):
    negation = "NOT " if node.negated else ""
    return f"{_render(node.expr)} {negation}LIKE {_render(node.pattern)}"


def _render_is_null(node):
    negation = "NOT " if node.negated else ""
    return f"{_render(node.expr)} IS {negation}NULL"


def _render_exists(node):
    negation = "NOT " if node.negated else ""
    return f"{negation}EXISTS ({_render(node.query)})"


def _render_scalar_subquery(node):
    return f"({_render(node.query)})"


def _render_select_item(node):
    rendered = _render(node.expr)
    if node.alias:
        return f"{rendered} AS {node.alias}"
    return rendered


def _render_order_item(node):
    rendered = _render(node.expr)
    if not node.ascending:
        rendered += " DESC"
    if node.nulls_first is True:
        rendered += " NULLS FIRST"
    elif node.nulls_first is False:
        rendered += " NULLS LAST"
    return rendered


def _render_table_ref(node):
    if node.alias:
        return f"{node.name} AS {node.alias}"
    return node.name


def _render_subquery_ref(node):
    return f"({_render(node.query)}) AS {node.alias}"


def _render_join(node):
    left = _render(node.left)
    right = _render(node.right)
    if node.kind == "CROSS":
        return f"{left} CROSS JOIN {right}"
    keyword = "JOIN" if node.kind == "INNER" else f"{node.kind} JOIN"
    return f"{left} {keyword} {right} ON {_render(node.condition)}"


def _render_select(node):
    parts = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render(item) for item in node.items))
    if node.from_clause is not None:
        parts.append(f"FROM {_render(node.from_clause)}")
    if node.where is not None:
        parts.append(f"WHERE {_render(node.where)}")
    if node.group_by:
        exprs = ", ".join(_render(expr) for expr in node.group_by)
        parts.append(f"GROUP BY {exprs}")
    if node.having is not None:
        parts.append(f"HAVING {_render(node.having)}")
    if node.order_by:
        items = ", ".join(_render(item) for item in node.order_by)
        parts.append(f"ORDER BY {items}")
    if node.limit is not None:
        parts.append(f"LIMIT {node.limit}")
    if node.offset is not None:
        parts.append(f"OFFSET {node.offset}")
    return " ".join(parts)


def _render_set_operation(node):
    keyword = node.op + (" ALL" if node.all else "")
    rendered = f"{_render(node.left)} {keyword} {_render(node.right)}"
    if node.order_by:
        items = ", ".join(_render(item) for item in node.order_by)
        rendered += f" ORDER BY {items}"
    if node.limit is not None:
        rendered += f" LIMIT {node.limit}"
    return rendered


def _render_cte(node):
    columns = ""
    if node.columns:
        columns = "(" + ", ".join(node.columns) + ")"
    return f"{node.name}{columns} AS ({_render(node.query)})"


def _render_query(node):
    body = _render(node.body)
    if not node.ctes:
        return body
    ctes = ", ".join(_render(cte) for cte in node.ctes)
    return f"WITH {ctes} {body}"


_RENDERERS = {
    ast.Literal: _render_literal,
    ast.ColumnRef: _render_column,
    ast.Star: _render_star,
    ast.UnaryOp: _render_unary,
    ast.BinaryOp: _render_binary,
    ast.FunctionCall: _render_call,
    ast.WindowFunction: _render_window_function,
    ast.WindowSpec: _render_window_spec,
    ast.CaseExpression: _render_case,
    ast.Cast: _render_cast,
    ast.InList: _render_in_list,
    ast.InSubquery: _render_in_subquery,
    ast.Between: _render_between,
    ast.Like: _render_like,
    ast.IsNull: _render_is_null,
    ast.Exists: _render_exists,
    ast.ScalarSubquery: _render_scalar_subquery,
    ast.SelectItem: _render_select_item,
    ast.OrderItem: _render_order_item,
    ast.TableRef: _render_table_ref,
    ast.SubqueryRef: _render_subquery_ref,
    ast.Join: _render_join,
    ast.Select: _render_select,
    ast.SetOperation: _render_set_operation,
    ast.CommonTableExpression: _render_cte,
    ast.Query: _render_query,
}


# ---------------------------------------------------------------------------
# Pretty renderer
# ---------------------------------------------------------------------------


class _PrettyPrinter:
    def __init__(self, indent):
        self._indent = indent

    def render_query(self, query, depth=0):
        lines = []
        pad = self._indent * depth
        if query.ctes:
            lines.append(f"{pad}WITH")
            for position, cte in enumerate(query.ctes):
                comma = "," if position < len(query.ctes) - 1 else ""
                header = cte.name
                if cte.columns:
                    header += "(" + ", ".join(cte.columns) + ")"
                lines.append(f"{pad}{header} AS (")
                lines.append(self.render_query(cte.query, depth + 1))
                lines.append(f"{pad}){comma}")
        lines.append(self._render_body(query.body, depth))
        return "\n".join(lines)

    def _render_body(self, body, depth):
        pad = self._indent * depth
        if isinstance(body, ast.SetOperation):
            keyword = body.op + (" ALL" if body.all else "")
            lines = [
                self._render_body(body.left, depth),
                f"{pad}{keyword}",
                self._render_body(body.right, depth),
            ]
            if body.order_by:
                items = ", ".join(_render(item) for item in body.order_by)
                lines.append(f"{pad}ORDER BY {items}")
            if body.limit is not None:
                lines.append(f"{pad}LIMIT {body.limit}")
            return "\n".join(lines)
        select = body
        lines = []
        head = "SELECT DISTINCT" if select.distinct else "SELECT"
        items = ",\n".join(
            f"{pad}{self._indent}{_render(item)}" for item in select.items
        )
        lines.append(f"{pad}{head}")
        lines.append(items)
        if select.from_clause is not None:
            lines.append(f"{pad}FROM {_render(select.from_clause)}")
        if select.where is not None:
            lines.append(f"{pad}WHERE {_render(select.where)}")
        if select.group_by:
            exprs = ", ".join(_render(expr) for expr in select.group_by)
            lines.append(f"{pad}GROUP BY {exprs}")
        if select.having is not None:
            lines.append(f"{pad}HAVING {_render(select.having)}")
        if select.order_by:
            rendered = ", ".join(_render(item) for item in select.order_by)
            lines.append(f"{pad}ORDER BY {rendered}")
        if select.limit is not None:
            lines.append(f"{pad}LIMIT {select.limit}")
        if select.offset is not None:
            lines.append(f"{pad}OFFSET {select.offset}")
        return "\n".join(lines)

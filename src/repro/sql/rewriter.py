"""Query canonicalisation: rewrite queries into CTE normal form.

GenEdit's pre-processing "first rewrite[s] the queries to use CTEs (WITH
clause with subqueries)" before decomposing them (§3.2.1). This module does
that rewrite:

* every derived table ``(SELECT ...) alias`` in a FROM clause is hoisted
  into a top-level CTE named after its alias;
* nested WITH clauses (CTEs defined inside subqueries or other CTEs) are
  flattened to the top level, renamed on collision;
* the result is a single top-level WITH list, dependency-ordered, whose body
  contains no derived tables.

Scalar/IN/EXISTS subqueries in expressions are left in place — they are
part of expression logic, not relational shape, and the decomposer treats
them as sub-statements.
"""

from __future__ import annotations

import copy

from . import ast_nodes as ast


def to_cte_form(query):
    """Return a new :class:`Query` in CTE normal form (input not mutated)."""
    rewriter = _CteRewriter()
    return rewriter.rewrite(copy.deepcopy(query))


class _CteRewriter:
    def __init__(self):
        self._ctes = []
        self._used_names = set()

    def rewrite(self, query):
        # Hoist existing top-level CTEs first so their names are reserved
        # before any generated ones.
        for cte in query.ctes:
            self._hoist_cte(cte, rename_map={})
        body = self._rewrite_body(query.body, rename_map={})
        return ast.Query(body=body, ctes=self._ctes)

    # -- name management -----------------------------------------------------

    def _unique_name(self, base):
        candidate = base.upper()
        suffix = 1
        while candidate in self._used_names:
            suffix += 1
            candidate = f"{base.upper()}_{suffix}"
        self._used_names.add(candidate)
        return candidate

    def _hoist_cte(self, cte, rename_map):
        inner_map = dict(rename_map)
        for nested in cte.query.ctes:
            self._hoist_cte(nested, inner_map)
            # _hoist_cte records the (possibly renamed) final name.
            inner_map[nested.name.upper()] = self._last_hoisted_name
        body = self._rewrite_body(cte.query.body, inner_map)
        final_name = self._unique_name(cte.name)
        rename_map[cte.name.upper()] = final_name
        self._ctes.append(
            ast.CommonTableExpression(
                name=final_name,
                query=ast.Query(body=body, ctes=[]),
                columns=list(cte.columns),
            )
        )
        self._last_hoisted_name = final_name

    # -- body rewriting --------------------------------------------------------

    def _rewrite_body(self, body, rename_map):
        if isinstance(body, ast.SetOperation):
            body.left = self._rewrite_body(body.left, rename_map)
            body.right = self._rewrite_body(body.right, rename_map)
            return body
        return self._rewrite_select(body, rename_map)

    def _rewrite_select(self, select, rename_map):
        if select.from_clause is not None:
            select.from_clause = self._rewrite_from(
                select.from_clause, rename_map
            )
        for node in _expression_roots(select):
            self._rewrite_expression_subqueries(node, rename_map)
        return select

    def _rewrite_from(self, node, rename_map):
        if isinstance(node, ast.TableRef):
            renamed = rename_map.get(node.name.upper())
            if renamed:
                alias = node.alias or node.name
                return ast.TableRef(name=renamed, alias=alias)
            return node
        if isinstance(node, ast.SubqueryRef):
            return self._hoist_derived(node, rename_map)
        if isinstance(node, ast.Join):
            node.left = self._rewrite_from(node.left, rename_map)
            node.right = self._rewrite_from(node.right, rename_map)
            if node.condition is not None:
                self._rewrite_expression_subqueries(node.condition, rename_map)
            return node
        return node

    def _hoist_derived(self, subquery_ref, rename_map):
        inner_map = dict(rename_map)
        for nested in subquery_ref.query.ctes:
            self._hoist_cte(nested, inner_map)
            inner_map[nested.name.upper()] = self._last_hoisted_name
        body = self._rewrite_body(subquery_ref.query.body, inner_map)
        name = self._unique_name(subquery_ref.alias or "DERIVED")
        self._ctes.append(
            ast.CommonTableExpression(
                name=name, query=ast.Query(body=body, ctes=[])
            )
        )
        return ast.TableRef(name=name, alias=subquery_ref.alias)

    def _rewrite_expression_subqueries(self, expr, rename_map):
        """Rename CTE references inside expression-level subqueries."""
        for node in expr.walk():
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                query = node.query
                inner_map = dict(rename_map)
                for nested in list(query.ctes):
                    self._hoist_cte(nested, inner_map)
                    inner_map[nested.name.upper()] = self._last_hoisted_name
                query.ctes = []
                query.body = self._rewrite_body(query.body, inner_map)


def _expression_roots(select):
    """Every expression attached directly to a SELECT block."""
    roots = [item.expr for item in select.items]
    if select.where is not None:
        roots.append(select.where)
    roots.extend(select.group_by)
    if select.having is not None:
        roots.append(select.having)
    roots.extend(item.expr for item in select.order_by)
    return roots

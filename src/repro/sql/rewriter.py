"""Query canonicalisation: rewrite queries into CTE normal form.

GenEdit's pre-processing "first rewrite[s] the queries to use CTEs (WITH
clause with subqueries)" before decomposing them (§3.2.1). This module does
that rewrite:

* every derived table ``(SELECT ...) alias`` in a FROM clause is hoisted
  into a top-level CTE named after its alias;
* nested WITH clauses (CTEs defined inside subqueries or other CTEs) are
  flattened to the top level, renamed on collision;
* the result is a single top-level WITH list, dependency-ordered, whose body
  contains no derived tables.

Scalar/IN/EXISTS subqueries in expressions are left in place — they are
part of expression logic, not relational shape, and the decomposer treats
them as sub-statements.
"""

from __future__ import annotations

from . import ast_nodes as ast


def to_cte_form(query):
    """Return a new :class:`Query` in CTE normal form (input not mutated)."""
    rewriter = _CteRewriter()
    return rewriter.rewrite(ast.clone_tree(query))


class _CteRewriter:
    def __init__(self):
        self._ctes = []
        self._used_names = set()

    def rewrite(self, query):
        # Hoist existing top-level CTEs first so their names are reserved
        # before any generated ones.
        for cte in query.ctes:
            self._hoist_cte(cte, rename_map={})
        body = self._rewrite_body(query.body, rename_map={})
        return ast.Query(body=body, ctes=self._ctes)

    # -- name management -----------------------------------------------------

    def _unique_name(self, base):
        candidate = base.upper()
        suffix = 1
        while candidate in self._used_names:
            suffix += 1
            candidate = f"{base.upper()}_{suffix}"
        self._used_names.add(candidate)
        return candidate

    def _hoist_cte(self, cte, rename_map):
        inner_map = dict(rename_map)
        for nested in cte.query.ctes:
            self._hoist_cte(nested, inner_map)
            # _hoist_cte records the (possibly renamed) final name.
            inner_map[nested.name.upper()] = self._last_hoisted_name
        body = self._rewrite_body(cte.query.body, inner_map)
        final_name = self._unique_name(cte.name)
        rename_map[cte.name.upper()] = final_name
        self._ctes.append(
            ast.CommonTableExpression(
                name=final_name,
                query=ast.Query(body=body, ctes=[]),
                columns=list(cte.columns),
            )
        )
        self._last_hoisted_name = final_name

    # -- body rewriting --------------------------------------------------------

    def _rewrite_body(self, body, rename_map):
        if isinstance(body, ast.SetOperation):
            body.left = self._rewrite_body(body.left, rename_map)
            body.right = self._rewrite_body(body.right, rename_map)
            return body
        return self._rewrite_select(body, rename_map)

    def _rewrite_select(self, select, rename_map):
        if select.from_clause is not None:
            select.from_clause = self._rewrite_from(
                select.from_clause, rename_map
            )
        for node in _expression_roots(select):
            self._rewrite_expression_subqueries(node, rename_map)
        return select

    def _rewrite_from(self, node, rename_map):
        if isinstance(node, ast.TableRef):
            renamed = rename_map.get(node.name.upper())
            if renamed:
                alias = node.alias or node.name
                return ast.TableRef(name=renamed, alias=alias)
            return node
        if isinstance(node, ast.SubqueryRef):
            return self._hoist_derived(node, rename_map)
        if isinstance(node, ast.Join):
            node.left = self._rewrite_from(node.left, rename_map)
            node.right = self._rewrite_from(node.right, rename_map)
            if node.condition is not None:
                self._rewrite_expression_subqueries(node.condition, rename_map)
            return node
        return node

    def _hoist_derived(self, subquery_ref, rename_map):
        inner_map = dict(rename_map)
        for nested in subquery_ref.query.ctes:
            self._hoist_cte(nested, inner_map)
            inner_map[nested.name.upper()] = self._last_hoisted_name
        body = self._rewrite_body(subquery_ref.query.body, inner_map)
        name = self._unique_name(subquery_ref.alias or "DERIVED")
        self._ctes.append(
            ast.CommonTableExpression(
                name=name, query=ast.Query(body=body, ctes=[])
            )
        )
        return ast.TableRef(name=name, alias=subquery_ref.alias)

    def _rewrite_expression_subqueries(self, expr, rename_map):
        """Rename CTE references inside expression-level subqueries."""
        for node in expr.walk():
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                query = node.query
                inner_map = dict(rename_map)
                for nested in list(query.ctes):
                    self._hoist_cte(nested, inner_map)
                    inner_map[nested.name.upper()] = self._last_hoisted_name
                query.ctes = []
                query.body = self._rewrite_body(query.body, inner_map)


def _expression_roots(select):
    """Every expression attached directly to a SELECT block."""
    roots = [item.expr for item in select.items]
    if select.where is not None:
        roots.append(select.where)
    roots.extend(select.group_by)
    if select.having is not None:
        roots.append(select.having)
    roots.extend(item.expr for item in select.order_by)
    return roots


# ---------------------------------------------------------------------------
# Execution-time logical rewrite: constant folding + predicate pushdown
# ---------------------------------------------------------------------------
#
# ``optimize_for_execution`` is the executor's pre-execution pass. It returns
# a NEW tree (parse-cache ASTs are shared across executors and must never be
# mutated) that is behaviour-identical to the input for every query the
# engine can run — including which rows can raise. Two rewrites:
#
# * constant folding: literal-only subtrees in WHERE/HAVING/join conditions
#   collapse to a Literal. Only deterministic, environment-free node types
#   participate, and a subtree whose evaluation raises is left unfolded.
#   Select items are never folded (output names come from ``to_sql`` of the
#   expression) and neither are GROUP BY/ORDER BY entries (integer literals
#   there are ordinals).
#
# * predicate pushdown: WHERE conjuncts that provably (a) touch exactly one
#   base-table binding, (b) can never raise, and (c) sit in a prefix of the
#   AND chain whose earlier conjuncts also never raise, are moved into a
#   derived-table wrapper around that base table. Join-kind rules keep
#   null-extension semantics intact: a conjunct only descends the left arm
#   of LEFT joins, the right arm of RIGHT joins, either arm of INNER/CROSS,
#   and never crosses a FULL join.

#: Node types that participate in constant folding — all deterministic and
#: environment-free. FunctionCall is deliberately excluded so clock-like
#: scalar functions can never be frozen at rewrite time.
_FOLDABLE = (
    ast.Literal, ast.UnaryOp, ast.BinaryOp, ast.Cast, ast.Between,
    ast.InList, ast.IsNull, ast.Like,
)

_SAFE_COMPARISONS = frozenset(("=", "<>", "<", ">", "<=", ">="))


def optimize_for_execution(query, database):
    """Rewrite ``query`` for faster execution against ``database``.

    The result is memoized on the query node keyed by database identity and
    version — parse-cache sharing means the same AST serves generation,
    self-correction, the final check, and the EX metric, so the rewrite is
    paid once per (query, catalog state).
    """
    cached = getattr(query, "_optimized_plan", None)
    if (
        cached is not None
        and cached[0] == database.name
        and cached[1] == database.version
    ):
        return cached[2]
    from time import perf_counter

    from ..engine.stats import add_time

    started = perf_counter()
    cte_names = _collect_cte_names(query)
    optimized = _Optimizer(database, cte_names).rewrite_query(query)
    add_time("rewrite_s", perf_counter() - started)
    try:
        query._optimized_plan = (database.name, database.version, optimized)
    except AttributeError:  # pragma: no cover - nodes are plain objects
        pass
    return optimized


def _collect_cte_names(query):
    """Upper-case names of every CTE anywhere in the tree.

    A TableRef whose name matches any CTE may resolve to that CTE at
    execution time (scopes chain), so the optimizer refuses to treat it as
    the catalog table of the same name.
    """
    names = set()
    for node in query.walk():
        if isinstance(node, ast.CommonTableExpression):
            names.add(node.name.upper())
    return names


class _Optimizer:
    def __init__(self, database, cte_names):
        self.database = database
        self.cte_names = cte_names

    # -- tree rebuilding -----------------------------------------------------

    def rewrite_query(self, query):
        ctes = [
            ast.CommonTableExpression(
                name=cte.name,
                query=self.rewrite_query(cte.query),
                columns=list(cte.columns),
            )
            for cte in query.ctes
        ]
        return ast.Query(body=self.rewrite_body(query.body), ctes=ctes)

    def rewrite_body(self, body):
        if isinstance(body, ast.SetOperation):
            return ast.SetOperation(
                op=body.op,
                left=self.rewrite_body(body.left),
                right=self.rewrite_body(body.right),
                all=body.all,
                order_by=body.order_by,
                limit=body.limit,
            )
        return self.rewrite_select(body)

    def rewrite_select(self, select):
        from_clause = self._rewrite_from_subqueries(select.from_clause)
        where = _fold(select.where)
        having = _fold(select.having)
        if where is not None and isinstance(from_clause, ast.Join):
            from_clause, where = self._push_predicates(from_clause, where)
        if (
            from_clause is select.from_clause
            and where is select.where
            and having is select.having
        ):
            return select
        return ast.Select(
            items=select.items,
            from_clause=from_clause,
            where=where,
            group_by=select.group_by,
            having=having,
            order_by=select.order_by,
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
        )

    def _rewrite_from_subqueries(self, node):
        if node is None or isinstance(node, ast.TableRef):
            return node
        if isinstance(node, ast.SubqueryRef):
            return ast.SubqueryRef(
                query=self.rewrite_query(node.query), alias=node.alias
            )
        if isinstance(node, ast.Join):
            left = self._rewrite_from_subqueries(node.left)
            right = self._rewrite_from_subqueries(node.right)
            condition = _fold(node.condition)
            if (
                left is node.left and right is node.right
                and condition is node.condition
            ):
                return node
            return ast.Join(
                left=left, right=right, kind=node.kind, condition=condition
            )
        return node

    # -- predicate pushdown --------------------------------------------------

    def _push_predicates(self, from_clause, where):
        tables, all_known = self._catalog_bindings(from_clause)
        if not tables:
            return from_clause, where
        conjuncts = _and_chain(where)
        remaining = []
        prefix_safe = True
        changed = False
        for conjunct in conjuncts:
            binding = None
            safe = _safe_single_binding(conjunct, tables, all_known)
            if safe is not None and prefix_safe:
                binding = safe
            if binding is not None:
                pushed = self._push_into(from_clause, binding, conjunct)
                if pushed is not None:
                    from_clause = pushed
                    changed = True
                    continue
            remaining.append(conjunct)
            if safe is None:
                # A conjunct we cannot prove non-raising: anything after it
                # must stay put, or rows it would raise on could vanish.
                prefix_safe = False
        if not changed:
            return from_clause, where
        where = _fold_and(remaining)
        return from_clause, where

    def _catalog_bindings(self, node, tables=None, known=None):
        """Map binding -> Table for real catalog tables in the FROM tree.

        Returns ``(tables, all_known)`` where ``all_known`` is False when any
        binding is a CTE, derived table, or unknown — in that case
        unqualified column references cannot be resolved safely.
        """
        if tables is None:
            tables = {}
            known = [True]
        if isinstance(node, ast.TableRef):
            name = node.name.upper()
            if name in self.cte_names:
                known[0] = False
            else:
                try:
                    table = self.database.table(node.name)
                except Exception:
                    known[0] = False
                else:
                    tables[node.binding_name.upper()] = table
        elif isinstance(node, ast.Join):
            self._catalog_bindings(node.left, tables, known)
            self._catalog_bindings(node.right, tables, known)
        else:
            known[0] = False
        return tables, known[0]

    def _push_into(self, node, binding, conjunct):
        """Wrap the TableRef bound as ``binding`` with a filter, or None."""
        if isinstance(node, ast.TableRef):
            if node.binding_name.upper() != binding:
                return None
            if node.name.upper() in self.cte_names:
                return None
            inner = ast.Select(
                items=[ast.SelectItem(expr=ast.Star())],
                from_clause=ast.TableRef(name=node.name, alias=node.alias),
                where=conjunct,
            )
            return ast.SubqueryRef(
                query=ast.Query(body=inner), alias=node.binding_name
            )
        if isinstance(node, ast.SubqueryRef):
            return None
        if isinstance(node, ast.Join):
            kind = node.kind
            if kind == "FULL":
                return None
            if kind in ("INNER", "CROSS", "LEFT"):
                pushed = self._push_into(node.left, binding, conjunct)
                if pushed is not None:
                    return ast.Join(
                        left=pushed, right=node.right,
                        kind=kind, condition=node.condition,
                    )
            if kind in ("INNER", "CROSS", "RIGHT"):
                pushed = self._push_into(node.right, binding, conjunct)
                if pushed is not None:
                    return ast.Join(
                        left=node.left, right=pushed,
                        kind=kind, condition=node.condition,
                    )
        return None


def _and_chain(expr):
    """Flatten an AND tree into its conjuncts, in evaluation order."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _and_chain(expr.left) + _and_chain(expr.right)
    return [expr]


def _fold_and(conjuncts):
    """Left-associatively rebuild an AND chain (None when empty)."""
    if not conjuncts:
        return None
    folded = conjuncts[0]
    for conjunct in conjuncts[1:]:
        folded = ast.BinaryOp(op="AND", left=folded, right=conjunct)
    return folded


def _safe_single_binding(conjunct, tables, all_known):
    """The single catalog binding a provably-non-raising conjunct touches.

    Returns the upper-case binding name, or None when the conjunct is not
    one of the safe shapes, resolves ambiguously, touches an unknown
    relation, or could raise at evaluation time (DATE-column comparisons
    against non-date literals, LIKE on non-text columns).
    """
    shape = _safe_shape(conjunct)
    if shape is None:
        return None
    ref, literals, kind = shape
    resolved = _resolve_ref(ref, tables, all_known)
    if resolved is None:
        return None
    binding, column = resolved
    if kind == "like":
        if column.type != "TEXT":
            return None
        if not all(
            value is None or isinstance(value, str) for value in literals
        ):
            return None
    elif kind == "compare":
        if column.type == "DATE":
            for value in literals:
                if value is None:
                    continue
                if not isinstance(value, str) or _parses_as_date(value) is None:
                    return None
    return binding


def _safe_shape(conjunct):
    """Decompose a conjunct into (column ref, literal values, kind)."""
    if isinstance(conjunct, ast.BinaryOp):
        if conjunct.op not in _SAFE_COMPARISONS:
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            return left, [right.value], "compare"
        if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
            return right, [left.value], "compare"
        return None
    if isinstance(conjunct, ast.IsNull):
        if isinstance(conjunct.expr, ast.ColumnRef):
            return conjunct.expr, [], "is_null"
        return None
    if isinstance(conjunct, ast.InList):
        if not isinstance(conjunct.expr, ast.ColumnRef):
            return None
        if not all(isinstance(item, ast.Literal) for item in conjunct.items):
            return None
        return (
            conjunct.expr,
            [item.value for item in conjunct.items],
            "compare",
        )
    if isinstance(conjunct, ast.Between):
        if not isinstance(conjunct.expr, ast.ColumnRef):
            return None
        if not (
            isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
        ):
            return None
        return (
            conjunct.expr,
            [conjunct.low.value, conjunct.high.value],
            "compare",
        )
    if isinstance(conjunct, ast.Like):
        if not isinstance(conjunct.expr, ast.ColumnRef):
            return None
        if not isinstance(conjunct.pattern, ast.Literal):
            return None
        return conjunct.expr, [conjunct.pattern.value], "like"
    return None


def _resolve_ref(ref, tables, all_known):
    """Resolve a ColumnRef to ``(binding, Column)`` against catalog tables."""
    name = ref.name.upper()
    if ref.table is not None:
        binding = ref.table.upper()
        table = tables.get(binding)
        if table is None or not table.has_column(name):
            return None
        return binding, table.column(name)
    if not all_known:
        return None
    matches = [
        (binding, table) for binding, table in tables.items()
        if table.has_column(name)
    ]
    if len(matches) != 1:
        return None
    binding, table = matches[0]
    return binding, table.column(name)


def _parses_as_date(text):
    import datetime

    try:
        return datetime.date.fromisoformat(text[:10])
    except ValueError:
        return None


def _fold(expr):
    """Collapse literal-only subtrees of ``expr`` (None passes through)."""
    if expr is None:
        return None
    folded, _is_const = _fold_node(expr)
    return folded


def _fold_node(node):
    """Return ``(possibly-folded node, is_literal_constant)``."""
    if isinstance(node, ast.Literal):
        return node, True
    if not isinstance(node, _FOLDABLE):
        rebuilt = _rebuild_with_folded_children(node)
        return rebuilt, False
    rebuilt, all_const = _fold_children(node)
    if not all_const:
        return rebuilt, False
    value = _try_evaluate_constant(rebuilt)
    if value is _FOLD_FAILED:
        return rebuilt, False
    return ast.Literal(value=value), True


_FOLD_FAILED = object()


def _try_evaluate_constant(node):
    from ..engine.errors import ExecutionError
    from ..engine.evaluator import Environment, Evaluator

    try:
        return Evaluator(None).evaluate(node, Environment({}))
    except ExecutionError:
        return _FOLD_FAILED


def _fold_children(node):
    """Fold each foldable child; returns (rebuilt, every-child-constant)."""
    if isinstance(node, ast.UnaryOp):
        operand, const = _fold_node(node.operand)
        if operand is node.operand:
            return node, const
        return ast.UnaryOp(op=node.op, operand=operand), const
    if isinstance(node, ast.BinaryOp):
        left, left_const = _fold_node(node.left)
        right, right_const = _fold_node(node.right)
        if left is node.left and right is node.right:
            return node, left_const and right_const
        return (
            ast.BinaryOp(op=node.op, left=left, right=right),
            left_const and right_const,
        )
    if isinstance(node, ast.Cast):
        expr, const = _fold_node(node.expr)
        if expr is node.expr:
            return node, const
        return ast.Cast(expr=expr, target_type=node.target_type), const
    if isinstance(node, ast.Between):
        expr, c1 = _fold_node(node.expr)
        low, c2 = _fold_node(node.low)
        high, c3 = _fold_node(node.high)
        if expr is node.expr and low is node.low and high is node.high:
            return node, c1 and c2 and c3
        return (
            ast.Between(
                expr=expr, low=low, high=high, negated=node.negated
            ),
            c1 and c2 and c3,
        )
    if isinstance(node, ast.InList):
        expr, const = _fold_node(node.expr)
        items = []
        changed = expr is not node.expr
        for item in node.items:
            folded, item_const = _fold_node(item)
            const = const and item_const
            changed = changed or folded is not item
            items.append(folded)
        if not changed:
            return node, const
        return (
            ast.InList(expr=expr, items=items, negated=node.negated),
            const,
        )
    if isinstance(node, ast.IsNull):
        expr, const = _fold_node(node.expr)
        if expr is node.expr:
            return node, const
        return ast.IsNull(expr=expr, negated=node.negated), const
    if isinstance(node, ast.Like):
        expr, c1 = _fold_node(node.expr)
        pattern, c2 = _fold_node(node.pattern)
        if expr is node.expr and pattern is node.pattern:
            return node, c1 and c2
        return (
            ast.Like(expr=expr, pattern=pattern, negated=node.negated),
            c1 and c2,
        )
    return node, False


def _rebuild_with_folded_children(node):
    """Fold inside non-foldable containers (AND/OR handled by BinaryOp)."""
    if isinstance(node, ast.CaseExpression):
        operand = _fold(node.operand)
        whens = [
            (_fold(condition), _fold(result))
            for condition, result in node.whens
        ]
        default = _fold(node.default)
        changed = operand is not node.operand or default is not node.default
        if not changed:
            changed = any(
                condition is not original[0] or result is not original[1]
                for (condition, result), original in zip(whens, node.whens)
            )
        if not changed:
            return node
        return ast.CaseExpression(
            operand=operand, whens=whens, default=default
        )
    if isinstance(node, ast.FunctionCall):
        args = [_fold(arg) for arg in node.args]
        if all(new is old for new, old in zip(args, node.args)):
            return node
        return ast.FunctionCall(
            name=node.name, args=args, distinct=node.distinct
        )
    # Subqueries, column refs, windows, stars: left untouched.
    return node

"""Module-level engine counters for the columnar execution pipeline.

The bench profile (schema v3) reports a per-run engine breakdown: time in
the logical-rewrite pass, time compiling vector closures, and how often the
executor ran fully columnar versus falling back to the row path. Counters
are process-global because compiled closures and rewritten plans are shared
across executor instances — resetting happens at profile boundaries.

Concurrency: the serving layer (DESIGN.md §6h) drives many executors from
a worker pool, so every read-modify-write on :data:`ENGINE_STATS` goes
through :data:`STATS_LOCK` (via :func:`bump` / :func:`add_time`). A bare
``ENGINE_STATS[key] += 1`` from two threads loses increments under the
GIL's bytecode interleaving; the locked helpers make the counters exact —
the thread-safety regression tests count on it literally.
"""

from __future__ import annotations

import threading

_ZERO = {
    "rewrite_s": 0.0,
    "compile_s": 0.0,
    "columnar_selects": 0,
    "row_fallback_selects": 0,
    "error_reruns": 0,
    "hash_joins": 0,
    "loop_joins": 0,
}

ENGINE_STATS = dict(_ZERO)

#: Guards every compound update of :data:`ENGINE_STATS` (and, in
#: :mod:`repro.engine.evaluator`, the compiled-expression cache counters).
STATS_LOCK = threading.Lock()


def bump(key, amount=1):
    """Atomically increment an engine counter."""
    with STATS_LOCK:
        ENGINE_STATS[key] += amount


def add_time(key, seconds):
    """Atomically accumulate a wall-clock stat (``rewrite_s``/``compile_s``)."""
    with STATS_LOCK:
        ENGINE_STATS[key] += seconds


def engine_snapshot():
    """Current counters plus compiled-expression cache statistics."""
    from .evaluator import vector_cache_stats

    with STATS_LOCK:
        snapshot = dict(ENGINE_STATS)
    snapshot["rewrite_s"] = round(snapshot["rewrite_s"], 6)
    snapshot["compile_s"] = round(snapshot["compile_s"], 6)
    snapshot["predicate_cache"] = vector_cache_stats()
    return snapshot


def publish_engine_gauges(registry=None):
    """Export engine counters as gauges on the observability registry.

    Called at profile boundaries (not per execution) so the engine's hot
    path never pays a metrics lookup; the gauges mirror the latest
    :func:`engine_snapshot`.
    """
    from ..obs.metrics import get_metrics
    from .evaluator import vector_cache_stats

    registry = registry if registry is not None else get_metrics()
    cache = vector_cache_stats()
    for key in ("hits", "misses", "fallbacks", "entries"):
        registry.set_gauge(f"engine.predicate_cache.{key}", cache[key])
    with STATS_LOCK:
        counters = dict(ENGINE_STATS)
    for key in ("columnar_selects", "row_fallback_selects", "error_reruns",
                "hash_joins", "loop_joins"):
        registry.set_gauge(f"engine.{key}", counters[key])
    return registry


def reset_engine_stats():
    """Zero all counters and clear the compiled-expression cache.

    Safe to call while other threads execute queries: the counter reset and
    the cache clear each happen under their lock, so a racing compile can
    at worst land one fresh entry *after* the reset — never a torn counter
    or a partially-cleared cache.
    """
    from .evaluator import reset_vector_cache

    with STATS_LOCK:
        ENGINE_STATS.update(_ZERO)
    reset_vector_cache()

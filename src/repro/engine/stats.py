"""Module-level engine counters for the columnar execution pipeline.

The bench profile (schema v3) reports a per-run engine breakdown: time in
the logical-rewrite pass, time compiling vector closures, and how often the
executor ran fully columnar versus falling back to the row path. Counters
are process-global because compiled closures and rewritten plans are shared
across executor instances — resetting happens at profile boundaries.
"""

from __future__ import annotations

_ZERO = {
    "rewrite_s": 0.0,
    "compile_s": 0.0,
    "columnar_selects": 0,
    "row_fallback_selects": 0,
    "error_reruns": 0,
    "hash_joins": 0,
    "loop_joins": 0,
}

ENGINE_STATS = dict(_ZERO)


def engine_snapshot():
    """Current counters plus compiled-expression cache statistics."""
    from .evaluator import vector_cache_stats

    snapshot = dict(ENGINE_STATS)
    snapshot["rewrite_s"] = round(snapshot["rewrite_s"], 6)
    snapshot["compile_s"] = round(snapshot["compile_s"], 6)
    snapshot["predicate_cache"] = vector_cache_stats()
    return snapshot


def publish_engine_gauges(registry=None):
    """Export engine counters as gauges on the observability registry.

    Called at profile boundaries (not per execution) so the engine's hot
    path never pays a metrics lookup; the gauges mirror the latest
    :func:`engine_snapshot`.
    """
    from ..obs.metrics import get_metrics
    from .evaluator import vector_cache_stats

    registry = registry if registry is not None else get_metrics()
    cache = vector_cache_stats()
    for key in ("hits", "misses", "fallbacks", "entries"):
        registry.set_gauge(f"engine.predicate_cache.{key}", cache[key])
    for key in ("columnar_selects", "row_fallback_selects", "error_reruns",
                "hash_joins", "loop_joins"):
        registry.set_gauge(f"engine.{key}", ENGINE_STATS[key])
    return registry


def reset_engine_stats():
    """Zero all counters and clear the compiled-expression cache."""
    from .evaluator import reset_vector_cache

    ENGINE_STATS.update(_ZERO)
    reset_vector_cache()

"""Frozen row-at-a-time reference engine (the differential-testing oracle).

This module preserves the original "straightforward iterator-free
materialising engine" exactly as it was before the columnar rework of
:mod:`repro.engine.executor`: every relation is a list of per-row binding
dicts, every predicate and projection is evaluated one row environment at a
time through :class:`~repro.engine.evaluator.Evaluator`, joins are nested
loops, and grouping is a sequential scan.

It exists so the equivalence suite (``tests/test_engine_equivalence.py``)
can execute every statement through *both* engines and assert identical
``Result.comparable()`` output — the columnar engine's fast paths (hash
joins, vectorized predicates, hash grouping, the logical rewrite pass) are
only trusted because this oracle agrees with them on the whole SQL corpus
and every workload query. Do not "optimise" this module; its value is that
it stays dumb.

Supported surface is identical to the executor's: CTEs (including
references between CTEs), derived tables, all join kinds, WHERE/GROUP
BY/HAVING, aggregates (with DISTINCT), window functions, correlated
subqueries (scalar/IN/EXISTS), set operations, DISTINCT, ORDER BY
(expressions, output aliases, ordinals), LIMIT/OFFSET.
"""

from __future__ import annotations

from ..sql import ast_nodes as ast
from ..sql.parser import parse_cached
from ..sql.printer import to_sql
from .database import Database
from .errors import ExecutionError, UnknownTableError
from .evaluator import (
    Environment,
    Evaluator,
    contains_aggregate,
    find_window_functions,
)
from .executor import Result
from .values import comparable_cell, sort_key
from .window import evaluate_window, order_key_tuple


class _CteScope:
    """Chained mapping of CTE name -> materialised Result."""

    def __init__(self, parent=None):
        self.parent = parent
        self._relations = {}

    def define(self, name, result):
        self._relations[name.upper()] = result

    def resolve(self, name):
        scope = self
        while scope is not None:
            result = scope._relations.get(name.upper())
            if result is not None:
                return result
            scope = scope.parent
        return None


class ReferenceExecutor:
    """Executes queries against one database, row at a time."""

    def __init__(self, database: Database):
        self.database = database
        self._evaluator = Evaluator(self._run_subquery)
        self._scopes = [_CteScope()]

    # -- public API ----------------------------------------------------------

    def execute(self, query):
        """Execute ``query`` (SQL text or a parsed Query) and return a Result."""
        if isinstance(query, str):
            query = parse_cached(query)
        return self._execute_query(query, outer_env=None)

    # -- query / body ----------------------------------------------------------

    def _run_subquery(self, query, env):
        return self._execute_query(query, outer_env=env)

    def _execute_query(self, query, outer_env):
        scope = _CteScope(parent=self._scopes[-1])
        self._scopes.append(scope)
        try:
            for cte in query.ctes:
                result = self._execute_query(cte.query, outer_env)
                if cte.columns:
                    if len(cte.columns) != len(result.columns):
                        raise ExecutionError(
                            f"CTE {cte.name} declares {len(cte.columns)} "
                            f"columns but its query returns {len(result.columns)}"
                        )
                    result = Result(cte.columns, result.rows)
                scope.define(cte.name, result)
            return self._execute_body(query.body, outer_env)
        finally:
            self._scopes.pop()

    def _execute_body(self, body, outer_env):
        if isinstance(body, ast.SetOperation):
            return self._execute_set_operation(body, outer_env)
        return self._execute_select(body, outer_env)

    # -- set operations ----------------------------------------------------------

    def _execute_set_operation(self, node, outer_env):
        left = self._execute_body(node.left, outer_env)
        right = self._execute_body(node.right, outer_env)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                f"{node.op} operands have different column counts "
                f"({len(left.columns)} vs {len(right.columns)})"
            )
        left_keys = [_row_key(row) for row in left.rows]
        right_keys = [_row_key(row) for row in right.rows]
        if node.op == "UNION":
            if node.all:
                rows = left.rows + right.rows
            else:
                rows = _dedupe(left.rows + right.rows)
        elif node.op == "INTERSECT":
            right_set = set(right_keys)
            rows = _dedupe(
                row for row, key in zip(left.rows, left_keys)
                if key in right_set
            )
        elif node.op == "EXCEPT":
            right_set = set(right_keys)
            rows = _dedupe(
                row for row, key in zip(left.rows, left_keys)
                if key not in right_set
            )
        else:
            raise ExecutionError(f"Unknown set operation {node.op!r}")
        result = Result(left.columns, rows)
        if node.order_by:
            result = self._order_output_only(result, node.order_by)
        if node.limit is not None:
            result = Result(result.columns, result.rows[: node.limit])
        return result

    def _order_output_only(self, result, order_items):
        decorated = []
        for row in result.rows:
            keys = []
            for item in order_items:
                value = self._output_order_value(item.expr, result.columns, row)
                keys.append(sort_key(value, item.ascending, item.nulls_first))
            decorated.append((tuple(keys), row))
        decorated.sort(key=lambda pair: pair[0])
        return Result(result.columns, [row for _keys, row in decorated])

    def _output_order_value(self, expr, columns, row):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(columns):
                raise ExecutionError(f"ORDER BY position {expr.value} out of range")
            return row[position]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            upper = [column.upper() for column in columns]
            if expr.name.upper() in upper:
                return row[upper.index(expr.name.upper())]
        raise ExecutionError(
            "ORDER BY after a set operation must use output columns"
        )

    # -- SELECT ----------------------------------------------------------

    def _execute_select(self, select, outer_env):
        schema, row_envs = self._resolve_from(select.from_clause, outer_env)
        if select.where is not None:
            row_envs = [
                env for env in row_envs
                if self._evaluator.evaluate_predicate(select.where, env)
            ]
        grouped = self._needs_grouping(select)
        if grouped:
            row_envs = self._group(select, schema, row_envs, outer_env)
            if select.having is not None:
                row_envs = [
                    env for env in row_envs
                    if self._evaluator.evaluate_predicate(select.having, env)
                ]
        elif select.having is not None:
            raise ExecutionError("HAVING without GROUP BY or aggregates")
        self._compute_windows(select, row_envs)
        columns, projected = self._project(select, schema, row_envs)
        rows_with_envs = list(zip(projected, row_envs))
        if select.distinct:
            rows_with_envs = _dedupe_pairs(rows_with_envs)
        if select.order_by:
            rows_with_envs = self._order(
                select.order_by, columns, rows_with_envs
            )
        rows = [row for row, _env in rows_with_envs]
        if select.offset is not None:
            rows = rows[select.offset:]
        if select.limit is not None:
            rows = rows[: select.limit]
        return Result(columns, rows)

    # -- FROM ----------------------------------------------------------

    def _resolve_from(self, node, outer_env):
        """Return (schema, row environments)."""
        if node is None:
            return [], [Environment({}, parent=outer_env)]
        schema, rows = self._from_item(node, outer_env)
        envs = [Environment(bindings, parent=outer_env) for bindings in rows]
        return schema, envs

    def _from_item(self, node, outer_env):
        if isinstance(node, ast.TableRef):
            return self._table_rows(node)
        if isinstance(node, ast.SubqueryRef):
            result = self._execute_query(node.query, outer_env)
            return self._result_rows(node.binding_name, result)
        if isinstance(node, ast.Join):
            return self._join(node, outer_env)
        raise ExecutionError(f"Unsupported FROM item {type(node).__name__}")

    def _table_rows(self, ref):
        materialised = self._scopes[-1].resolve(ref.name)
        if materialised is not None:
            return self._result_rows(ref.binding_name, materialised)
        try:
            table = self.database.table(ref.name)
        except UnknownTableError:
            raise
        binding = ref.binding_name.upper()
        columns = [column.name.upper() for column in table.columns]
        schema = [(binding, [column.name for column in table.columns])]
        rows = [
            {binding: dict(zip(columns, row))} for row in table.rows
        ]
        return schema, rows

    def _result_rows(self, binding_name, result):
        binding = binding_name.upper()
        columns = [column.upper() for column in result.columns]
        schema = [(binding, list(result.columns))]
        rows = [
            {binding: dict(zip(columns, row))} for row in result.rows
        ]
        return schema, rows

    def _join(self, node, outer_env):
        left_schema, left_rows = self._from_item(node.left, outer_env)
        right_schema, right_rows = self._from_item(node.right, outer_env)
        overlap = {name for name, _cols in left_schema} & {
            name for name, _cols in right_schema
        }
        if overlap:
            raise ExecutionError(
                f"Duplicate relation binding(s) in join: {sorted(overlap)}"
            )
        schema = left_schema + right_schema
        null_right = _null_bindings(right_schema)
        null_left = _null_bindings(left_schema)

        def matches(left_bindings, right_bindings):
            if node.kind == "CROSS" or node.condition is None:
                return True
            env = Environment(
                {**left_bindings, **right_bindings}, parent=outer_env
            )
            return self._evaluator.evaluate_predicate(node.condition, env)

        joined = []
        matched_right = [False] * len(right_rows)
        for left_bindings in left_rows:
            found = False
            for position, right_bindings in enumerate(right_rows):
                if matches(left_bindings, right_bindings):
                    joined.append({**left_bindings, **right_bindings})
                    matched_right[position] = True
                    found = True
            if not found and node.kind in ("LEFT", "FULL"):
                joined.append({**left_bindings, **null_right})
        if node.kind in ("RIGHT", "FULL"):
            for position, right_bindings in enumerate(right_rows):
                if not matched_right[position]:
                    joined.append({**null_left, **right_bindings})
        return schema, joined

    # -- grouping ----------------------------------------------------------

    def _needs_grouping(self, select):
        if select.group_by:
            return True
        if any(contains_aggregate(item.expr) for item in select.items
               if not isinstance(item.expr, ast.Star)):
            return True
        if select.having is not None and contains_aggregate(select.having):
            return True
        return False

    def _group(self, select, schema, row_envs, outer_env):
        group_exprs = [
            self._resolve_group_expr(expr, select, row_envs)
            for expr in select.group_by
        ]
        if not group_exprs:
            representative = self._representative_env(
                schema, row_envs, outer_env
            )
            representative.group_rows = list(row_envs)
            return [representative]
        groups = {}
        order = []
        for env in row_envs:
            key = tuple(
                _hashable(self._evaluator.evaluate(expr, env))
                for expr in group_exprs
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        group_envs = []
        for key in order:
            members = groups[key]
            representative = members[0]
            representative.group_rows = members
            group_envs.append(representative)
        return group_envs

    def _resolve_group_expr(self, expr, select, row_envs):
        """Allow GROUP BY to reference select aliases and ordinals."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if 0 <= position < len(select.items):
                return select.items[position].expr
            raise ExecutionError(f"GROUP BY position {expr.value} out of range")
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if row_envs and row_envs[0].has_column(None, expr.name):
                return expr
            for item in select.items:
                if item.alias and item.alias.upper() == expr.name.upper():
                    return item.expr
        return expr

    def _representative_env(self, schema, row_envs, outer_env):
        if row_envs:
            return row_envs[0]
        bindings = {
            binding: {column.upper(): None for column in columns}
            for binding, columns in schema
        }
        return Environment(bindings, parent=outer_env)

    # -- windows ----------------------------------------------------------

    def _compute_windows(self, select, row_envs):
        nodes = []
        for item in select.items:
            nodes.extend(find_window_functions(item.expr))
        for order_item in select.order_by:
            nodes.extend(find_window_functions(order_item.expr))
        if select.having is not None:
            nodes.extend(find_window_functions(select.having))
        if not nodes:
            return
        for env in row_envs:
            if env.window_values is None:
                env.window_values = {}
        for node in nodes:
            self._compute_one_window(node, row_envs)

    def _compute_one_window(self, node, row_envs):
        partition_keys = []
        order_keys = []
        arg_values = []
        count_star = bool(node.function.args) and isinstance(
            node.function.args[0], ast.Star
        )
        for env in row_envs:
            partition_keys.append(
                tuple(
                    _hashable(self._evaluator.evaluate(expr, env))
                    for expr in node.window.partition_by
                )
            )
            order_keys.append(
                order_key_tuple(
                    [
                        (
                            self._evaluator.evaluate(item.expr, env),
                            item.ascending,
                            item.nulls_first,
                        )
                        for item in node.window.order_by
                    ]
                )
            )
            if count_star:
                arg_values.append([None])
            else:
                arg_values.append(
                    [
                        self._evaluator.evaluate(arg, env)
                        for arg in node.function.args
                    ]
                )
        results = evaluate_window(
            node.function.name,
            row_envs,
            partition_keys,
            order_keys,
            arg_values,
            distinct=node.function.distinct,
            count_star=count_star,
        )
        for env, value in zip(row_envs, results):
            env.window_values[id(node)] = value

    # -- projection ----------------------------------------------------------

    def _project(self, select, schema, row_envs):
        columns = []
        extractors = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                star_columns, star_extractors = self._expand_star(
                    item.expr, schema
                )
                columns.extend(star_columns)
                extractors.extend(star_extractors)
                continue
            columns.append(self._output_name(item, position))
            expr = item.expr
            extractors.append(
                lambda env, expr=expr: self._evaluator.evaluate(expr, env)
            )
        rows = [
            tuple(extract(env) for extract in extractors) for env in row_envs
        ]
        return columns, rows

    def _expand_star(self, star, schema):
        columns = []
        extractors = []
        wanted = star.table.upper() if star.table else None
        matched = False
        for binding, relation_columns in schema:
            if wanted is not None and binding != wanted:
                continue
            matched = True
            for column in relation_columns:
                columns.append(column)
                extractors.append(
                    lambda env, binding=binding, column=column: env.lookup(
                        binding, column
                    )
                )
        if wanted is not None and not matched:
            raise ExecutionError(f"Unknown relation {star.table!r} in star")
        if not schema:
            raise ExecutionError("SELECT * with no FROM clause")
        return columns, extractors

    def _output_name(self, item, position):
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if isinstance(item.expr, ast.FunctionCall):
            return to_sql(item.expr)
        return to_sql(item.expr)

    # -- ordering ----------------------------------------------------------

    def _order(self, order_items, columns, rows_with_envs):
        upper_columns = [column.upper() for column in columns]

        def order_value(item, row, env):
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < len(row):
                    raise ExecutionError(
                        f"ORDER BY position {expr.value} out of range"
                    )
                return row[position]
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                upper = expr.name.upper()
                if upper in upper_columns and not env.has_column(
                    None, expr.name
                ):
                    return row[upper_columns.index(upper)]
            return self._evaluator.evaluate(expr, env)

        decorated = []
        for row, env in rows_with_envs:
            keys = tuple(
                sort_key(
                    order_value(item, row, env),
                    item.ascending,
                    item.nulls_first,
                )
                for item in order_items
            )
            decorated.append((keys, row, env))
        decorated.sort(key=lambda entry: entry[0])
        return [(row, env) for _keys, row, env in decorated]


# ---------------------------------------------------------------------------
# helpers (frozen copies — the executor's may evolve independently)
# ---------------------------------------------------------------------------


def _null_bindings(schema):
    return {
        binding: {column.upper(): None for column in columns}
        for binding, columns in schema
    }


def _hashable(value):
    return comparable_cell(value)


def _row_key(row):
    return tuple(comparable_cell(value) for value in row)


def _dedupe(rows):
    seen = set()
    output = []
    for row in rows:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            output.append(row)
    return output


def _dedupe_pairs(rows_with_envs):
    seen = set()
    output = []
    for row, env in rows_with_envs:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            output.append((row, env))
    return output


def reference_execute_sql(database, sql):
    """Parse and execute ``sql`` on the frozen row-at-a-time reference path."""
    return ReferenceExecutor(database).execute(sql)

"""Aggregate function implementations.

Aggregates receive the list of evaluated argument values for every row in
the group (NULLs included — each aggregate applies SQL's skip-NULL rule
itself, since COUNT(*) and COUNT(expr) differ exactly there).
"""

from __future__ import annotations

from .errors import TypeMismatchError, UnknownFunctionError
from .values import compare

AGGREGATE_NAMES = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL", "GROUP_CONCAT"}
)


def is_aggregate_function(name):
    return name.upper() in AGGREGATE_NAMES


def compute_aggregate(name, values, distinct=False, count_star=False):
    """Compute aggregate ``name`` over ``values`` (one entry per row).

    ``count_star`` marks ``COUNT(*)``, which counts rows rather than
    non-NULL values. ``distinct`` deduplicates non-NULL values first.
    """
    upper = name.upper()
    if upper not in AGGREGATE_NAMES:
        raise UnknownFunctionError(f"Unknown aggregate {name!r}")
    if upper == "COUNT" and count_star:
        return len(values)
    present = [value for value in values if value is not None]
    if distinct:
        present = _distinct(present)
    if upper == "COUNT":
        return len(present)
    if upper == "SUM":
        return _sum(present)
    if upper == "TOTAL":
        total = _sum(present)
        return float(total) if total is not None else 0.0
    if upper == "AVG":
        total = _sum(present)
        if total is None:
            return None
        return total / len(present)
    if upper == "MIN":
        return _extreme(present, want_smaller=True)
    if upper == "MAX":
        return _extreme(present, want_smaller=False)
    if upper == "GROUP_CONCAT":
        return ",".join(str(value) for value in present) if present else None
    raise UnknownFunctionError(f"Unknown aggregate {name!r}")


def _distinct(values):
    seen = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return seen


def _sum(values):
    if not values:
        return None
    total = 0
    for value in values:
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            raise TypeMismatchError(f"SUM/AVG over non-numeric {value!r}")
        total += value
    return total


def _extreme(values, want_smaller):
    if not values:
        return None
    best = values[0]
    for value in values[1:]:
        ordering = compare(value, best)
        if ordering is None:
            continue
        if (ordering < 0) == want_smaller and ordering != 0:
            best = value
    return best

"""EXPLAIN: a logical plan description for a query.

:func:`explain` renders the steps the executor will take — CTE
materialisation, scans, joins, filters, grouping, windows, projection,
ordering — as an indented plan tree. The CLI exposes it as
``python -m repro ask ... --explain``; it is also handy in tests and when
debugging generated SQL.
"""

from __future__ import annotations

from ..sql import ast_nodes as ast
from ..sql.parser import parse_cached
from ..sql.printer import to_sql


def explain(query):
    """Return the logical plan of ``query`` (SQL text or parsed Query)."""
    if isinstance(query, str):
        query = parse_cached(query)
    lines = []
    for cte in query.ctes:
        lines.append(f"MATERIALIZE CTE {cte.name}")
        lines.extend(_indent(_explain_query(cte.query)))
    lines.extend(_explain_body(query.body))
    return "\n".join(lines)


def _explain_query(query):
    lines = []
    for cte in query.ctes:
        lines.append(f"MATERIALIZE CTE {cte.name}")
        lines.extend(_indent(_explain_query(cte.query)))
    lines.extend(_explain_body(query.body))
    return lines


def _explain_body(body):
    if isinstance(body, ast.SetOperation):
        keyword = body.op + (" ALL" if body.all else "")
        lines = [keyword]
        lines.extend(_indent(_explain_body(body.left)))
        lines.extend(_indent(_explain_body(body.right)))
        if body.order_by:
            lines.append(
                "SORT "
                + ", ".join(to_sql(item) for item in body.order_by)
            )
        if body.limit is not None:
            lines.append(f"LIMIT {body.limit}")
        return lines
    return _explain_select(body)


def _explain_select(select):
    # Build bottom-up then reverse into execution order.
    stages = []
    if select.from_clause is not None:
        stages.extend(_explain_from(select.from_clause))
    else:
        stages.append("CONSTANT ROW")
    if select.where is not None:
        stages.append(f"FILTER {to_sql(select.where)}")
    grouped = bool(select.group_by) or _has_aggregate_items(select)
    if grouped:
        if select.group_by:
            keys = ", ".join(to_sql(expr) for expr in select.group_by)
            stages.append(f"GROUP BY {keys}")
        else:
            stages.append("AGGREGATE (single group)")
    if select.having is not None:
        stages.append(f"FILTER GROUPS {to_sql(select.having)}")
    windows = _window_functions(select)
    for window in windows:
        stages.append(f"WINDOW {to_sql(window)}")
    items = ", ".join(to_sql(item) for item in select.items)
    stages.append(
        ("PROJECT DISTINCT " if select.distinct else "PROJECT ") + items
    )
    if select.order_by:
        stages.append(
            "SORT " + ", ".join(to_sql(item) for item in select.order_by)
        )
    if select.limit is not None:
        suffix = f" OFFSET {select.offset}" if select.offset else ""
        stages.append(f"LIMIT {select.limit}{suffix}")
    return stages


def _explain_from(node):
    if isinstance(node, ast.TableRef):
        alias = f" AS {node.alias}" if node.alias else ""
        return [f"SCAN {node.name}{alias}"]
    if isinstance(node, ast.SubqueryRef):
        lines = [f"DERIVED {node.alias}"]
        lines.extend(_indent(_explain_query(node.query)))
        return lines
    if isinstance(node, ast.Join):
        condition = (
            f" ON {to_sql(node.condition)}" if node.condition else ""
        )
        lines = [f"{node.kind} JOIN{condition}"]
        lines.extend(_indent(_explain_from(node.left)))
        lines.extend(_indent(_explain_from(node.right)))
        return lines
    return [f"<{type(node).__name__}>"]


def _has_aggregate_items(select):
    from .evaluator import contains_aggregate

    return any(
        not isinstance(item.expr, ast.Star)
        and contains_aggregate(item.expr)
        for item in select.items
    ) or (select.having is not None and contains_aggregate(select.having))


def _window_functions(select):
    from .evaluator import find_window_functions

    found = []
    for item in select.items:
        found.extend(find_window_functions(item.expr))
    for order_item in select.order_by:
        found.extend(find_window_functions(order_item.expr))
    return found


def _indent(lines, prefix="  "):
    return [prefix + line for line in lines]

"""In-memory table storage: columns, rows, and value profiling.

Tables store rows as tuples aligned with the column list. The GenEdit
pre-processing phase profiles every column for its most frequent values
(the paper augments schema information with the top-5 values per attribute,
§2.1); that profiling lives here next to the data it describes.
"""

from __future__ import annotations

import datetime
from collections import Counter
from dataclasses import dataclass, field

from .errors import TypeMismatchError, UnknownColumnError
from .values import canonical_type, type_of

#: Exact Python type expected per canonical column type. ``type(value) is
#: expected`` is the common-case insert check; anything else (bool-as-int,
#: datetime-as-date, widenings) goes through the full :func:`type_of` path
#: with identical semantics.
_EXACT_TYPE = {
    "INTEGER": int,
    "FLOAT": float,
    "TEXT": str,
    "BOOLEAN": bool,
    "DATE": datetime.date,
}


@dataclass(frozen=True)
class Column:
    """A column definition: name, canonical type, optional description.

    ``description`` carries catalog documentation; the schema-linking
    operator surfaces it to the generation prompt the same way data-catalog
    documents do in the paper's pre-processing inputs.
    """

    name: str
    type: str
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "type", canonical_type(self.type))


class Table:
    """A named table with typed columns and tuple rows."""

    def __init__(self, name, columns, rows=None, description=""):
        self.name = name
        self.columns = list(columns)
        self.description = description
        self._column_index = {
            column.name.upper(): position
            for position, column in enumerate(self.columns)
        }
        if len(self._column_index) != len(self.columns):
            raise TypeMismatchError(
                f"Duplicate column names in table {name!r}"
            )
        self.rows = []
        self.version = 0
        self._arrays_cache = None
        for row in rows or []:
            self.insert(row)

    @property
    def column_names(self):
        return [column.name for column in self.columns]

    def column_position(self, name):
        position = self._column_index.get(name.upper())
        if position is None:
            raise UnknownColumnError(
                f"Table {self.name!r} has no column {name!r}"
            )
        return position

    def column(self, name):
        return self.columns[self.column_position(name)]

    def has_column(self, name):
        return name.upper() in self._column_index

    def insert(self, row):
        """Insert one row, validating arity and (loosely) types.

        Values must match the declared column type or be NULL; integers are
        accepted into FLOAT columns and widened.
        """
        if isinstance(row, dict):
            row = tuple(row.get(column.name) for column in self.columns)
        else:
            row = tuple(row)
        if len(row) != len(self.columns):
            raise TypeMismatchError(
                f"Row arity {len(row)} does not match table "
                f"{self.name!r} with {len(self.columns)} columns"
            )
        converted = []
        for value, column in zip(row, self.columns):
            converted.append(self._check_value(value, column))
        self.rows.append(tuple(converted))
        self.version += 1

    def _check_value(self, value, column):
        if value is None:
            return None
        if type(value) is _EXACT_TYPE.get(column.type):
            return value
        actual = type_of(value)
        if actual == column.type:
            return value
        if column.type == "FLOAT" and actual == "INTEGER":
            return float(value)
        if column.type == "TEXT":
            # Permit numeric codes stored as text to be loaded from numbers.
            return str(value)
        raise TypeMismatchError(
            f"Column {self.name}.{column.name} is {column.type}, "
            f"got {actual} value {value!r}"
        )

    def column_arrays(self):
        """Per-column value arrays keyed by upper-case name, version-cached.

        The columnar executor reads tables through this transpose; caching
        it on the table version means the cost is paid once per mutation,
        not once per query — the bench loop executes the same handful of
        tables thousands of times. The row count rides along in the cache
        key so out-of-band appends to ``rows`` (which bypass ``insert`` and
        the version counter) are still seen; replacing a row tuple in place
        additionally needs a version bump to invalidate.
        """
        cached = self._arrays_cache
        if (
            cached is not None
            and cached[0] == self.version
            and cached[1] == len(self.rows)
        ):
            return cached[2]
        arrays = {
            column.name.upper(): [row[position] for row in self.rows]
            for position, column in enumerate(self.columns)
        }
        self._arrays_cache = (self.version, len(self.rows), arrays)
        return arrays

    def top_values(self, column_name, k=5):
        """Return the ``k`` most frequent non-NULL values of a column.

        Ties break deterministically by value text so profiling is stable
        across runs — the knowledge set snapshots these into schema elements.
        """
        position = self.column_position(column_name)
        counts = Counter(
            row[position] for row in self.rows if row[position] is not None
        )
        ranked = sorted(
            counts.items(), key=lambda item: (-item[1], str(item[0]))
        )
        return [value for value, _count in ranked[:k]]

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return f"Table({self.name!r}, {len(self.columns)} cols, {len(self.rows)} rows)"


@dataclass
class TableProfile:
    """Snapshot of one table's statistics used by pre-processing."""

    table_name: str
    row_count: int
    column_types: dict = field(default_factory=dict)
    top_values: dict = field(default_factory=dict)


def profile_table(table, k=5):
    """Profile a table: row count, types, and top-k values per column."""
    return TableProfile(
        table_name=table.name,
        row_count=len(table),
        column_types={column.name: column.type for column in table.columns},
        top_values={
            column.name: table.top_values(column.name, k)
            for column in table.columns
        },
    )

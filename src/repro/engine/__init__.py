"""In-memory SQL execution engine: catalog, typed values, and executor."""

from .database import Database
from .errors import (
    AmbiguousColumnError,
    ExecutionError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownFunctionError,
    UnknownTableError,
)
from .executor import Executor, Result, execute_sql
from .explain import explain
from .table import Column, Table, TableProfile, profile_table

__all__ = [
    "AmbiguousColumnError",
    "Column",
    "Database",
    "ExecutionError",
    "Executor",
    "Result",
    "Table",
    "TableProfile",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownFunctionError",
    "UnknownTableError",
    "execute_sql",
    "explain",
    "profile_table",
]

"""In-memory SQL execution engine: catalog, typed values, and executor."""

from .database import Database
from .errors import (
    AmbiguousColumnError,
    ExecutionError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownFunctionError,
    UnknownTableError,
)
from .executor import Executor, Result, execute_sql
from .explain import explain
from .stats import (
    ENGINE_STATS,
    engine_snapshot,
    publish_engine_gauges,
    reset_engine_stats,
)
from .table import Column, Table, TableProfile, profile_table

__all__ = [
    "AmbiguousColumnError",
    "Column",
    "Database",
    "ENGINE_STATS",
    "ExecutionError",
    "Executor",
    "Result",
    "Table",
    "TableProfile",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownFunctionError",
    "UnknownTableError",
    "engine_snapshot",
    "execute_sql",
    "explain",
    "profile_table",
    "publish_engine_gauges",
    "reset_engine_stats",
]

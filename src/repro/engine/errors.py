"""Errors raised by the execution engine.

Engine errors are *semantic* from the pipeline's point of view: a query that
parses but fails here (unknown column, type mismatch, bad aggregate use) is
fed to the self-correction operator with the error message as context, which
is exactly how the paper's inference phase handles "syntactic and semantic
errors" before regeneration.
"""

from __future__ import annotations

from ..sql.errors import SqlError


class ExecutionError(SqlError):
    """Base class for runtime errors during query execution."""


class UnknownTableError(ExecutionError):
    """Referenced table/CTE is not in the catalog or CTE scope."""


class UnknownColumnError(ExecutionError):
    """A column reference cannot be resolved against visible relations."""


class AmbiguousColumnError(ExecutionError):
    """An unqualified column name resolves against multiple relations."""


class TypeMismatchError(ExecutionError):
    """An operator or function received incompatible value types."""


class UnknownFunctionError(ExecutionError):
    """No scalar, aggregate, or window function with that name exists."""

"""Columnar relation representation for batched query execution.

A :class:`ColumnarRelation` holds the same logical rows the executor's
row-environment path works over, but stored as per-column arrays keyed by
``(binding, column)``. The columnar pipeline filters, joins, groups and
projects whole arrays at a time; only when a clause needs semantics the
vector compiler cannot express (window functions, correlated subqueries,
ambiguous resolution) does the relation materialise back into per-row
binding dicts / :class:`~repro.engine.evaluator.Environment` chains.

Columns are lazy: a relation derived by ``take`` (filter/sort gather) or by
a join only builds the arrays an expression actually touches. Arrays for
base tables come from :meth:`repro.engine.table.Table.column_arrays`, which
is cached per table version, so repeated executions of candidate SQL —
GenEdit's compounding-operator loop re-executes constantly — skip the
row→column transpose entirely.
"""

from __future__ import annotations


class ColumnarRelation:
    """An ordered bag of rows stored column-wise.

    ``schema`` mirrors the executor's: an ordered list of
    ``(binding_upper, [original column names])``. ``count`` is the number of
    rows. Column arrays are built on first access and memoized.
    """

    __slots__ = ("schema", "count", "_arrays", "_thunks")

    def __init__(self, schema, count, arrays=None, thunks=None):
        self.schema = schema
        self.count = count
        self._arrays = arrays if arrays is not None else {}
        self._thunks = thunks if thunks is not None else {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_table(cls, binding_name, table):
        """Wrap a base table; arrays are the table's version-cached columns."""
        binding = binding_name.upper()
        schema = [(binding, [column.name for column in table.columns])]
        source = table.column_arrays()
        arrays = {
            (binding, name): array for name, array in source.items()
        }
        return cls(schema, len(table.rows), arrays=arrays)

    @classmethod
    def from_result(cls, binding_name, result):
        """Wrap a materialised Result (CTE or derived table)."""
        binding = binding_name.upper()
        schema = [(binding, list(result.columns))]
        count = len(result.rows)
        columns = [[] for _ in result.columns]
        for row in result.rows:
            for position, value in enumerate(row):
                columns[position].append(value)
        arrays = {}
        for position, name in enumerate(result.columns):
            arrays[(binding, name.upper())] = columns[position]
        return cls(schema, count, arrays=arrays)

    # -- column access -------------------------------------------------------

    def array(self, binding, column):
        """The full value array for ``(binding, column)`` (both upper-case)."""
        key = (binding, column)
        array = self._arrays.get(key)
        if array is None:
            thunk = self._thunks.get(key)
            if thunk is None:
                raise KeyError(key)
            array = thunk()
            self._arrays[key] = array
        return array

    def has(self, binding, column):
        key = (binding, column)
        return key in self._arrays or key in self._thunks

    def column_keys(self):
        for binding, columns in self.schema:
            for column in columns:
                yield binding, column.upper()

    # -- derivations ---------------------------------------------------------

    def take(self, indices):
        """A relation of the rows at ``indices``, in that order (lazily)."""
        thunks = {}
        for key in self.column_keys():
            def gather(key=key):
                source = self.array(*key)
                return [source[index] for index in indices]
            thunks[key] = gather
        return ColumnarRelation(self.schema, len(indices), thunks=thunks)

    @classmethod
    def join(cls, left, right, pairs):
        """Combine two relations along aligned index ``pairs``.

        ``pairs`` is a list of ``(left_index, right_index)`` where either
        side may be None (the null-extended side of an outer join).
        """
        schema = left.schema + right.schema
        thunks = {}
        for source, side in ((left, 0), (right, 1)):
            for key in source.column_keys():
                def gather(key=key, source=source, side=side):
                    array = source.array(*key)
                    return [
                        array[pair[side]] if pair[side] is not None else None
                        for pair in pairs
                    ]
                thunks[key] = gather
        return cls(schema, len(pairs), thunks=thunks)

    # -- materialisation -----------------------------------------------------

    def binding_rows(self):
        """Per-row ``{binding: {column: value}}`` dicts (the legacy shape)."""
        per_binding = []
        for binding, columns in self.schema:
            uppers = [column.upper() for column in columns]
            arrays = [self.array(binding, upper) for upper in uppers]
            per_binding.append((binding, uppers, arrays))
        rows = []
        for index in range(self.count):
            rows.append({
                binding: {
                    upper: array[index]
                    for upper, array in zip(uppers, arrays)
                }
                for binding, uppers, arrays in per_binding
            })
        return rows

    def row_tuple(self, index, keys):
        """One row as a tuple over explicit ``(binding, column)`` keys."""
        return tuple(self.array(*key)[index] for key in keys)

    def __repr__(self):
        bindings = ", ".join(binding for binding, _cols in self.schema)
        return f"ColumnarRelation([{bindings}], {self.count} rows)"

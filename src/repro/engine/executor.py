"""Relational query execution.

:class:`Executor` runs a parsed :class:`~repro.sql.ast_nodes.Query` against a
:class:`~repro.engine.database.Database` and returns a :class:`Result`.

Execution is columnar-first: each SELECT is planned over
:class:`~repro.engine.columnar.ColumnarRelation` arrays — hash equi-joins,
vectorized WHERE/HAVING/projection closures (compiled once per schema and
expression, cached across executors), and hash grouping with batched
aggregates. Whatever the vector compiler cannot express (window functions,
correlated subqueries, ambiguous references) falls back per-stage to the
original row-at-a-time Environment path, which is kept in full below.

Error fidelity: the row path is definitive. If anything raises during
columnar execution of a statement, the whole statement is re-executed
row-at-a-time against the *unoptimized* AST, so error type, message, and
raise/no-raise behaviour are exactly the legacy engine's. A frozen copy of
that legacy engine lives in :mod:`repro.engine.reference` as the
differential-testing oracle.

Supported: CTEs (including references between CTEs), derived tables, all
join kinds, WHERE/GROUP BY/HAVING, aggregates (with DISTINCT), window
functions, correlated subqueries (scalar/IN/EXISTS), set operations,
DISTINCT, ORDER BY (expressions, output aliases, ordinals), LIMIT/OFFSET.
"""

from __future__ import annotations

import datetime
from operator import itemgetter

from ..sql import ast_nodes as ast
from ..sql.parser import parse_cached
from ..sql.printer import to_sql
from ..sql.rewriter import optimize_for_execution
from .aggregates import compute_aggregate, is_aggregate_function
from .columnar import ColumnarRelation
from .database import Database
from .errors import ExecutionError, UnknownTableError
from .evaluator import (
    Environment,
    Evaluator,
    VectorContext,
    VectorFallback,
    compiled_expression,
    contains_aggregate,
    find_window_functions,
)
from .stats import ENGINE_STATS, bump
from .values import comparable_cell, sort_key
from .window import evaluate_window, order_key_tuple


class Result:
    """A query result: ordered column names and tuple rows."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]

    def comparable(self):
        """Multiset of normalised rows, for Execution Accuracy comparison.

        Sort keys are precomputed once per row (decorate–sort–undecorate);
        the sort itself only ever compares key tuples.
        """
        normalised = [
            tuple(comparable_cell(value) for value in row)
            for row in self.rows
        ]
        decorated = [
            (tuple(map(_stable_key, row)), row) for row in normalised
        ]
        decorated.sort(key=itemgetter(0))
        return [row for _keys, row in decorated]

    def __repr__(self):
        return f"Result({self.columns!r}, {len(self.rows)} rows)"


def _stable_key(value):
    if value is None:
        return (0, "")
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))


class _CteScope:
    """Chained mapping of CTE name -> materialised Result."""

    def __init__(self, parent=None):
        self.parent = parent
        self._relations = {}

    def define(self, name, result):
        self._relations[name.upper()] = result

    def resolve(self, name):
        scope = self
        while scope is not None:
            result = scope._relations.get(name.upper())
            if result is not None:
                return result
            scope = scope.parent
        return None


_EMPTY_MATCHES = ()


class Executor:
    """Executes queries against one database."""

    def __init__(self, database: Database):
        self.database = database
        self._evaluator = Evaluator(self._run_subquery)
        self._scopes = [_CteScope()]
        self._rows_only = False

    # -- public API ----------------------------------------------------------

    def execute(self, query):
        """Execute ``query`` (SQL text or a parsed Query) and return a Result.

        Text goes through the shared parse cache — execution never mutates
        the AST, so the same tree can safely serve the self-correction loop,
        the final check, and the EX metric. The tree is logically rewritten
        (constant folding, predicate pushdown) before columnar execution;
        if execution raises, the statement re-runs row-at-a-time on the
        original tree so errors surface exactly as the legacy engine's.
        """
        if isinstance(query, str):
            query = parse_cached(query)
        if self._rows_only:
            return self._execute_query(query, outer_env=None)
        try:
            optimized = optimize_for_execution(query, self.database)
            return self._execute_query(optimized, outer_env=None)
        except ExecutionError:
            bump("error_reruns")
            self._rows_only = True
            try:
                return self._execute_query(query, outer_env=None)
            finally:
                self._rows_only = False

    # -- query / body ----------------------------------------------------------

    def _run_subquery(self, query, env):
        return self._execute_query(query, outer_env=env)

    def _execute_query(self, query, outer_env):
        scope = _CteScope(parent=self._scopes[-1])
        self._scopes.append(scope)
        try:
            for cte in query.ctes:
                result = self._execute_query(cte.query, outer_env)
                if cte.columns:
                    if len(cte.columns) != len(result.columns):
                        raise ExecutionError(
                            f"CTE {cte.name} declares {len(cte.columns)} "
                            f"columns but its query returns {len(result.columns)}"
                        )
                    result = Result(cte.columns, result.rows)
                scope.define(cte.name, result)
            return self._execute_body(query.body, outer_env)
        finally:
            self._scopes.pop()

    def _execute_body(self, body, outer_env):
        if isinstance(body, ast.SetOperation):
            return self._execute_set_operation(body, outer_env)
        return self._execute_select(body, outer_env)

    # -- set operations ----------------------------------------------------------

    def _execute_set_operation(self, node, outer_env):
        left = self._execute_body(node.left, outer_env)
        right = self._execute_body(node.right, outer_env)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                f"{node.op} operands have different column counts "
                f"({len(left.columns)} vs {len(right.columns)})"
            )
        left_keys = [_row_key(row) for row in left.rows]
        right_keys = [_row_key(row) for row in right.rows]
        if node.op == "UNION":
            if node.all:
                rows = left.rows + right.rows
            else:
                rows = _dedupe(left.rows + right.rows)
        elif node.op == "INTERSECT":
            right_set = set(right_keys)
            rows = _dedupe(
                row for row, key in zip(left.rows, left_keys)
                if key in right_set
            )
        elif node.op == "EXCEPT":
            right_set = set(right_keys)
            rows = _dedupe(
                row for row, key in zip(left.rows, left_keys)
                if key not in right_set
            )
        else:
            raise ExecutionError(f"Unknown set operation {node.op!r}")
        result = Result(left.columns, rows)
        if node.order_by:
            result = self._order_output_only(result, node.order_by)
        if node.limit is not None:
            result = Result(result.columns, result.rows[: node.limit])
        return result

    def _order_output_only(self, result, order_items):
        decorated = []
        for row in result.rows:
            keys = []
            for item in order_items:
                value = self._output_order_value(item.expr, result.columns, row)
                keys.append(sort_key(value, item.ascending, item.nulls_first))
            decorated.append((tuple(keys), row))
        decorated.sort(key=lambda pair: pair[0])
        return Result(result.columns, [row for _keys, row in decorated])

    def _output_order_value(self, expr, columns, row):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(columns):
                raise ExecutionError(f"ORDER BY position {expr.value} out of range")
            return row[position]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            upper = [column.upper() for column in columns]
            if expr.name.upper() in upper:
                return row[upper.index(expr.name.upper())]
        raise ExecutionError(
            "ORDER BY after a set operation must use output columns"
        )

    # -- SELECT ----------------------------------------------------------

    def _execute_select(self, select, outer_env):
        if not self._rows_only:
            try:
                return self._select_columnar(select, outer_env)
            except VectorFallback:  # pragma: no cover - staged internally
                bump("row_fallback_selects")
        schema, row_envs = self._resolve_from(select.from_clause, outer_env)
        return self._select_rows(
            select, schema, row_envs, outer_env, apply_where=True
        )

    # -- columnar pipeline -----------------------------------------------------

    def _select_columnar(self, select, outer_env):
        relation = self._from_columnar(select.from_clause, outer_env)
        has_outer = outer_env is not None
        if select.where is not None:
            try:
                closure = compiled_expression(
                    select.where, self.database, relation.schema, has_outer
                )
            except VectorFallback:
                bump("row_fallback_selects")
                return self._select_rows(
                    select, relation.schema,
                    self._relation_envs(relation, outer_env),
                    outer_env, apply_where=True,
                )
            if relation.count:
                selection = list(range(relation.count))
                values = closure(
                    VectorContext(relation, outer_env), selection
                )
                keep = [
                    index for index, value in zip(selection, values)
                    if value is True
                ]
                if len(keep) != relation.count:
                    relation = relation.take(keep)
        if self._window_nodes(select):
            bump("row_fallback_selects")
            return self._select_rows(
                select, relation.schema,
                self._relation_envs(relation, outer_env),
                outer_env, apply_where=False,
            )
        if self._needs_grouping(select):
            try:
                result = self._grouped_columnar(select, relation, outer_env)
            except VectorFallback:
                bump("row_fallback_selects")
                return self._select_rows(
                    select, relation.schema,
                    self._relation_envs(relation, outer_env),
                    outer_env, apply_where=False,
                )
            bump("columnar_selects")
            return result
        if select.having is not None:
            raise ExecutionError("HAVING without GROUP BY or aggregates")
        try:
            result = self._project_columnar(
                select, relation, outer_env, bound=None,
                bound_ids=frozenset(),
            )
        except VectorFallback:
            bump("row_fallback_selects")
            return self._select_rows(
                select, relation.schema,
                self._relation_envs(relation, outer_env),
                outer_env, apply_where=False,
            )
        bump("columnar_selects")
        return result

    def _window_nodes(self, select):
        nodes = []
        for item in select.items:
            nodes.extend(find_window_functions(item.expr))
        for order_item in select.order_by:
            nodes.extend(find_window_functions(order_item.expr))
        if select.having is not None:
            nodes.extend(find_window_functions(select.having))
        return nodes

    def _relation_envs(self, relation, outer_env):
        return [
            Environment(bindings, parent=outer_env)
            for bindings in relation.binding_rows()
        ]

    def _relation_has_column(self, relation, outer_env, name):
        """Mirror of ``Environment.has_column(None, name)`` over a relation."""
        upper = name.upper()
        matches = 0
        for _binding, columns in relation.schema:
            if any(column.upper() == upper for column in columns):
                matches += 1
        if matches == 1:
            return True
        if matches > 1:
            return False
        if outer_env is not None:
            return outer_env.has_column(None, name)
        return False

    # -- columnar FROM ---------------------------------------------------------

    def _from_columnar(self, node, outer_env):
        if node is None:
            return ColumnarRelation([], 1)
        if isinstance(node, ast.TableRef):
            materialised = self._scopes[-1].resolve(node.name)
            if materialised is not None:
                return ColumnarRelation.from_result(
                    node.binding_name, materialised
                )
            table = self.database.table(node.name)
            return ColumnarRelation.from_table(node.binding_name, table)
        if isinstance(node, ast.SubqueryRef):
            result = self._execute_query(node.query, outer_env)
            return ColumnarRelation.from_result(node.binding_name, result)
        if isinstance(node, ast.Join):
            return self._join_columnar(node, outer_env)
        raise ExecutionError(f"Unsupported FROM item {type(node).__name__}")

    def _join_columnar(self, node, outer_env):
        left = self._from_columnar(node.left, outer_env)
        right = self._from_columnar(node.right, outer_env)
        overlap = {name for name, _cols in left.schema} & {
            name for name, _cols in right.schema
        }
        if overlap:
            raise ExecutionError(
                f"Duplicate relation binding(s) in join: {sorted(overlap)}"
            )
        pairs = self._join_pairs(node, left, right, outer_env)
        return ColumnarRelation.join(left, right, pairs)

    def _join_pairs(self, node, left, right, outer_env):
        """Output (left_index, right_index) pairs in legacy join order."""
        kind = node.kind
        condition = node.condition
        if kind == "CROSS" or condition is None:
            all_right = list(range(right.count))
            matches_per_left = [all_right] * left.count
            return _assemble_pairs(
                kind, left.count, right.count, matches_per_left
            )
        conjuncts = _flatten_and(condition)
        keys = []
        for conjunct in conjuncts:
            pair = self._equi_key(conjunct, left, right)
            if pair is None:
                break
            keys.append(pair)
        if keys and not _hashable_key_columns(keys, left, right):
            keys = []
        residual = conjuncts[len(keys):]
        if keys:
            bump("hash_joins")
            left_arrays = [left.array(*left_key) for left_key, _ in keys]
            right_arrays = [right.array(*right_key) for _, right_key in keys]
            index = {}
            for right_index in range(right.count):
                key = tuple(array[right_index] for array in right_arrays)
                if any(value is None for value in key):
                    continue
                index.setdefault(key, []).append(right_index)
            matches_per_left = []
            for left_index in range(left.count):
                key = tuple(array[left_index] for array in left_arrays)
                if any(value is None for value in key):
                    matches_per_left.append(_EMPTY_MATCHES)
                else:
                    matches_per_left.append(
                        index.get(key, _EMPTY_MATCHES)
                    )
        else:
            bump("loop_joins")
            all_right = list(range(right.count))
            matches_per_left = [all_right] * left.count
        if residual:
            candidates = [
                (left_index, right_index)
                for left_index in range(left.count)
                for right_index in matches_per_left[left_index]
            ]
            if len(residual) == 1:
                residual_expr = residual[0]
            elif len(residual) == len(conjuncts):
                residual_expr = condition
            else:
                residual_expr = residual[0]
                for conjunct in residual[1:]:
                    residual_expr = ast.BinaryOp(
                        op="AND", left=residual_expr, right=conjunct
                    )
            surviving = self._filter_pairs(
                left, right, candidates, residual_expr, outer_env
            )
            matches_per_left = [[] for _ in range(left.count)]
            for left_index, right_index in surviving:
                matches_per_left[left_index].append(right_index)
        return _assemble_pairs(kind, left.count, right.count, matches_per_left)

    def _filter_pairs(self, left, right, candidates, residual_expr, outer_env):
        if not candidates:
            return []
        pair_relation = ColumnarRelation.join(left, right, candidates)
        try:
            closure = compiled_expression(
                residual_expr, self.database, pair_relation.schema,
                outer_env is not None,
            )
        except VectorFallback:
            evaluate = self._evaluator.evaluate_predicate
            return [
                pair for pair, bindings in zip(
                    candidates, pair_relation.binding_rows()
                )
                if evaluate(
                    residual_expr, Environment(bindings, parent=outer_env)
                )
            ]
        selection = list(range(len(candidates)))
        values = closure(
            VectorContext(pair_relation, outer_env), selection
        )
        return [
            pair for pair, value in zip(candidates, values) if value is True
        ]

    def _equi_key(self, conjunct, left, right):
        """``((left_binding, col), (right_binding, col))`` or None."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        first, second = conjunct.left, conjunct.right
        if not (
            isinstance(first, ast.ColumnRef)
            and isinstance(second, ast.ColumnRef)
        ):
            return None
        resolved_first = _resolve_join_ref(first, left, right)
        resolved_second = _resolve_join_ref(second, left, right)
        if resolved_first is None or resolved_second is None:
            return None
        side_first, key_first = resolved_first
        side_second, key_second = resolved_second
        if side_first == side_second:
            return None
        if side_first == "left":
            return key_first, key_second
        return key_second, key_first

    # -- columnar grouping -----------------------------------------------------

    def _grouped_columnar(self, select, relation, outer_env):
        has_outer = outer_env is not None
        group_exprs = [
            self._resolve_group_expr_columnar(expr, select, relation, outer_env)
            for expr in select.group_by
        ]
        aggregate_nodes = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                continue
            _collect_aggregates(item.expr, aggregate_nodes)
        if select.having is not None:
            _collect_aggregates(select.having, aggregate_nodes)
        for order_item in select.order_by:
            _collect_aggregates(order_item.expr, aggregate_nodes)
        specs = {}
        for node in aggregate_nodes:
            if id(node) in specs:
                continue
            if any(contains_aggregate(arg) for arg in node.args):
                raise VectorFallback("nested aggregate")
            count_star = bool(node.args) and isinstance(
                node.args[0], ast.Star
            )
            if count_star or not node.args:
                closure = None
            else:
                closure = compiled_expression(
                    node.args[0], self.database, relation.schema, has_outer
                )
            specs[id(node)] = (node, closure)
        key_closures = [
            compiled_expression(expr, self.database, relation.schema, has_outer)
            for expr in group_exprs
        ]
        context = VectorContext(relation, outer_env)
        selection = list(range(relation.count))
        if group_exprs:
            key_arrays = [closure(context, selection) for closure in key_closures]
            groups = {}
            order = []
            if len(key_arrays) == 1:
                # Single-key grouping is the dominant shape; skip the
                # per-row generator for it.
                array = key_arrays[0]
                for index in selection:
                    key = (comparable_cell(array[index]),)
                    members = groups.get(key)
                    if members is None:
                        groups[key] = [index]
                        order.append(key)
                    else:
                        members.append(index)
            else:
                for index in selection:
                    key = tuple([
                        comparable_cell(array[index]) for array in key_arrays
                    ])
                    members = groups.get(key)
                    if members is None:
                        groups[key] = [index]
                        order.append(key)
                    else:
                        members.append(index)
            member_lists = [groups[key] for key in order]
            grouped = relation.take([members[0] for members in member_lists])
        elif relation.count:
            member_lists = [selection]
            grouped = relation.take([0])
        else:
            member_lists = [[]]
            grouped = ColumnarRelation(
                relation.schema, 1,
                arrays={key: [None] for key in relation.column_keys()},
            )
        bound = {}
        for node_id, (node, closure) in specs.items():
            if closure is None:
                bound[node_id] = [
                    compute_aggregate(
                        node.name, [None] * len(members),
                        distinct=node.distinct, count_star=True,
                    )
                    for members in member_lists
                ]
            else:
                values = closure(context, selection)
                bound[node_id] = [
                    compute_aggregate(
                        node.name, [values[index] for index in members],
                        distinct=node.distinct, count_star=False,
                    )
                    for members in member_lists
                ]
        bound_ids = frozenset(specs)
        if select.having is not None:
            having_closure = compiled_expression(
                select.having, self.database, grouped.schema, has_outer,
                bound_ids,
            )
            group_selection = list(range(grouped.count))
            values = having_closure(
                VectorContext(grouped, outer_env, bound), group_selection
            )
            keep = [
                index for index, value in zip(group_selection, values)
                if value is True
            ]
            if len(keep) != grouped.count:
                grouped = grouped.take(keep)
                bound = {
                    node_id: [array[index] for index in keep]
                    for node_id, array in bound.items()
                }
        return self._project_columnar(
            select, grouped, outer_env, bound, bound_ids
        )

    def _resolve_group_expr_columnar(self, expr, select, relation, outer_env):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if 0 <= position < len(select.items):
                return select.items[position].expr
            raise ExecutionError(f"GROUP BY position {expr.value} out of range")
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if relation.count and self._relation_has_column(
                relation, outer_env, expr.name
            ):
                return expr
            for item in select.items:
                if item.alias and item.alias.upper() == expr.name.upper():
                    return item.expr
        return expr

    # -- columnar projection / ordering ---------------------------------------

    def _project_columnar(self, select, relation, outer_env, bound, bound_ids):
        has_outer = outer_env is not None
        schema = relation.schema
        columns = []
        plans = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                wanted = item.expr.table.upper() if item.expr.table else None
                matched = False
                for binding, relation_columns in schema:
                    if wanted is not None and binding != wanted:
                        continue
                    matched = True
                    for column in relation_columns:
                        columns.append(column)
                        plans.append(("array", (binding, column.upper())))
                if wanted is not None and not matched:
                    raise ExecutionError(
                        f"Unknown relation {item.expr.table!r} in star"
                    )
                if not schema:
                    raise ExecutionError("SELECT * with no FROM clause")
                continue
            columns.append(self._output_name(item, position))
            plans.append((
                "closure",
                compiled_expression(
                    item.expr, self.database, schema, has_outer, bound_ids
                ),
            ))
        upper_columns = [column.upper() for column in columns]
        order_plans = []
        for order_item in select.order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                order_plans.append(("ordinal", expr.value))
                continue
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name.upper() in upper_columns
                and not self._relation_has_column(
                    relation, outer_env, expr.name
                )
            ):
                order_plans.append(
                    ("output", upper_columns.index(expr.name.upper()))
                )
                continue
            order_plans.append((
                "closure",
                compiled_expression(
                    expr, self.database, schema, has_outer, bound_ids
                ),
            ))
        context = VectorContext(relation, outer_env, bound)
        selection = list(range(relation.count))
        value_arrays = []
        for kind, payload in plans:
            if kind == "array":
                value_arrays.append(relation.array(*payload))
            else:
                value_arrays.append(payload(context, selection))
        rows = [tuple(row) for row in zip(*value_arrays)]
        kept = selection
        if select.distinct:
            seen = set()
            deduped = []
            kept = []
            for index, row in zip(selection, rows):
                key = _row_key(row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
                    kept.append(index)
            rows = deduped
        if select.order_by:
            order_arrays = []
            for (kind, payload), order_item in zip(
                order_plans, select.order_by
            ):
                if kind == "ordinal":
                    position = payload - 1
                    if rows and not 0 <= position < len(rows[0]):
                        raise ExecutionError(
                            f"ORDER BY position {payload} out of range"
                        )
                    order_arrays.append([row[position] for row in rows])
                elif kind == "output":
                    order_arrays.append([row[payload] for row in rows])
                else:
                    order_arrays.append(payload(context, kept))
            decorated = []
            for position, row in enumerate(rows):
                keys = tuple(
                    sort_key(
                        array[position],
                        order_item.ascending,
                        order_item.nulls_first,
                    )
                    for array, order_item in zip(
                        order_arrays, select.order_by
                    )
                )
                decorated.append((keys, row))
            decorated.sort(key=itemgetter(0))
            rows = [row for _keys, row in decorated]
        if select.offset is not None:
            rows = rows[select.offset:]
        if select.limit is not None:
            rows = rows[: select.limit]
        return Result(columns, rows)

    # -- row-at-a-time pipeline (fallback and error oracle) --------------------

    def _select_rows(self, select, schema, row_envs, outer_env, apply_where):
        if apply_where and select.where is not None:
            row_envs = [
                env for env in row_envs
                if self._evaluator.evaluate_predicate(select.where, env)
            ]
        grouped = self._needs_grouping(select)
        if grouped:
            row_envs = self._group(select, schema, row_envs, outer_env)
            if select.having is not None:
                row_envs = [
                    env for env in row_envs
                    if self._evaluator.evaluate_predicate(select.having, env)
                ]
        elif select.having is not None:
            raise ExecutionError("HAVING without GROUP BY or aggregates")
        self._compute_windows(select, row_envs)
        columns, projected = self._project(select, schema, row_envs)
        rows_with_envs = list(zip(projected, row_envs))
        if select.distinct:
            rows_with_envs = _dedupe_pairs(rows_with_envs)
        if select.order_by:
            rows_with_envs = self._order(
                select.order_by, columns, rows_with_envs
            )
        rows = [row for row, _env in rows_with_envs]
        if select.offset is not None:
            rows = rows[select.offset:]
        if select.limit is not None:
            rows = rows[: select.limit]
        return Result(columns, rows)

    # -- FROM ----------------------------------------------------------

    def _resolve_from(self, node, outer_env):
        """Return (schema, row environments).

        ``schema`` is an ordered list of (binding, column names); each row
        environment binds every relation in scope for that row.
        """
        if node is None:
            return [], [Environment({}, parent=outer_env)]
        schema, rows = self._from_item(node, outer_env)
        envs = [Environment(bindings, parent=outer_env) for bindings in rows]
        return schema, envs

    def _from_item(self, node, outer_env):
        if isinstance(node, ast.TableRef):
            return self._table_rows(node)
        if isinstance(node, ast.SubqueryRef):
            result = self._execute_query(node.query, outer_env)
            return self._result_rows(node.binding_name, result)
        if isinstance(node, ast.Join):
            return self._join(node, outer_env)
        raise ExecutionError(f"Unsupported FROM item {type(node).__name__}")

    def _table_rows(self, ref):
        materialised = self._scopes[-1].resolve(ref.name)
        if materialised is not None:
            return self._result_rows(ref.binding_name, materialised)
        try:
            table = self.database.table(ref.name)
        except UnknownTableError:
            raise
        binding = ref.binding_name.upper()
        columns = [column.name.upper() for column in table.columns]
        schema = [(binding, [column.name for column in table.columns])]
        rows = [
            {binding: dict(zip(columns, row))} for row in table.rows
        ]
        return schema, rows

    def _result_rows(self, binding_name, result):
        binding = binding_name.upper()
        columns = [column.upper() for column in result.columns]
        schema = [(binding, list(result.columns))]
        rows = [
            {binding: dict(zip(columns, row))} for row in result.rows
        ]
        return schema, rows

    def _join(self, node, outer_env):
        left_schema, left_rows = self._from_item(node.left, outer_env)
        right_schema, right_rows = self._from_item(node.right, outer_env)
        overlap = {name for name, _cols in left_schema} & {
            name for name, _cols in right_schema
        }
        if overlap:
            raise ExecutionError(
                f"Duplicate relation binding(s) in join: {sorted(overlap)}"
            )
        schema = left_schema + right_schema
        null_right = _null_bindings(right_schema)
        null_left = _null_bindings(left_schema)

        def matches(left_bindings, right_bindings):
            if node.kind == "CROSS" or node.condition is None:
                return True
            env = Environment(
                {**left_bindings, **right_bindings}, parent=outer_env
            )
            return self._evaluator.evaluate_predicate(node.condition, env)

        joined = []
        matched_right = [False] * len(right_rows)
        for left_bindings in left_rows:
            found = False
            for position, right_bindings in enumerate(right_rows):
                if matches(left_bindings, right_bindings):
                    joined.append({**left_bindings, **right_bindings})
                    matched_right[position] = True
                    found = True
            if not found and node.kind in ("LEFT", "FULL"):
                joined.append({**left_bindings, **null_right})
        if node.kind in ("RIGHT", "FULL"):
            for position, right_bindings in enumerate(right_rows):
                if not matched_right[position]:
                    joined.append({**null_left, **right_bindings})
        return schema, joined

    # -- grouping ----------------------------------------------------------

    def _needs_grouping(self, select):
        if select.group_by:
            return True
        if any(contains_aggregate(item.expr) for item in select.items
               if not isinstance(item.expr, ast.Star)):
            return True
        if select.having is not None and contains_aggregate(select.having):
            return True
        return False

    def _group(self, select, schema, row_envs, outer_env):
        group_exprs = [
            self._resolve_group_expr(expr, select, row_envs)
            for expr in select.group_by
        ]
        if not group_exprs:
            representative = self._representative_env(
                schema, row_envs, outer_env
            )
            representative.group_rows = list(row_envs)
            return [representative]
        groups = {}
        order = []
        for env in row_envs:
            key = tuple(
                _hashable(self._evaluator.evaluate(expr, env))
                for expr in group_exprs
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)
        group_envs = []
        for key in order:
            members = groups[key]
            representative = members[0]
            representative.group_rows = members
            group_envs.append(representative)
        return group_envs

    def _resolve_group_expr(self, expr, select, row_envs):
        """Allow GROUP BY to reference select aliases and ordinals."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if 0 <= position < len(select.items):
                return select.items[position].expr
            raise ExecutionError(f"GROUP BY position {expr.value} out of range")
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            if row_envs and row_envs[0].has_column(None, expr.name):
                return expr
            for item in select.items:
                if item.alias and item.alias.upper() == expr.name.upper():
                    return item.expr
        return expr

    def _representative_env(self, schema, row_envs, outer_env):
        if row_envs:
            return row_envs[0]
        bindings = {
            binding: {column.upper(): None for column in columns}
            for binding, columns in schema
        }
        return Environment(bindings, parent=outer_env)

    # -- windows ----------------------------------------------------------

    def _compute_windows(self, select, row_envs):
        nodes = self._window_nodes(select)
        if not nodes:
            return
        for env in row_envs:
            if env.window_values is None:
                env.window_values = {}
        for node in nodes:
            self._compute_one_window(node, row_envs)

    def _compute_one_window(self, node, row_envs):
        partition_keys = []
        order_keys = []
        arg_values = []
        count_star = bool(node.function.args) and isinstance(
            node.function.args[0], ast.Star
        )
        for env in row_envs:
            partition_keys.append(
                tuple(
                    _hashable(self._evaluator.evaluate(expr, env))
                    for expr in node.window.partition_by
                )
            )
            order_keys.append(
                order_key_tuple(
                    [
                        (
                            self._evaluator.evaluate(item.expr, env),
                            item.ascending,
                            item.nulls_first,
                        )
                        for item in node.window.order_by
                    ]
                )
            )
            if count_star:
                arg_values.append([None])
            else:
                arg_values.append(
                    [
                        self._evaluator.evaluate(arg, env)
                        for arg in node.function.args
                    ]
                )
        results = evaluate_window(
            node.function.name,
            row_envs,
            partition_keys,
            order_keys,
            arg_values,
            distinct=node.function.distinct,
            count_star=count_star,
        )
        for env, value in zip(row_envs, results):
            env.window_values[id(node)] = value

    # -- projection ----------------------------------------------------------

    def _project(self, select, schema, row_envs):
        columns = []
        extractors = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                star_columns, star_extractors = self._expand_star(
                    item.expr, schema
                )
                columns.extend(star_columns)
                extractors.extend(star_extractors)
                continue
            columns.append(self._output_name(item, position))
            expr = item.expr
            extractors.append(
                lambda env, expr=expr: self._evaluator.evaluate(expr, env)
            )
        rows = [
            tuple(extract(env) for extract in extractors) for env in row_envs
        ]
        return columns, rows

    def _expand_star(self, star, schema):
        columns = []
        extractors = []
        wanted = star.table.upper() if star.table else None
        matched = False
        for binding, relation_columns in schema:
            if wanted is not None and binding != wanted:
                continue
            matched = True
            for column in relation_columns:
                columns.append(column)
                extractors.append(
                    lambda env, binding=binding, column=column: env.lookup(
                        binding, column
                    )
                )
        if wanted is not None and not matched:
            raise ExecutionError(f"Unknown relation {star.table!r} in star")
        if not schema:
            raise ExecutionError("SELECT * with no FROM clause")
        return columns, extractors

    def _output_name(self, item, position):
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if isinstance(item.expr, ast.FunctionCall):
            return to_sql(item.expr)
        return to_sql(item.expr)

    # -- ordering ----------------------------------------------------------

    def _order(self, order_items, columns, rows_with_envs):
        upper_columns = [column.upper() for column in columns]

        def order_value(item, row, env):
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < len(row):
                    raise ExecutionError(
                        f"ORDER BY position {expr.value} out of range"
                    )
                return row[position]
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                upper = expr.name.upper()
                if upper in upper_columns and not env.has_column(
                    None, expr.name
                ):
                    return row[upper_columns.index(upper)]
            return self._evaluator.evaluate(expr, env)

        decorated = []
        for row, env in rows_with_envs:
            keys = tuple(
                sort_key(
                    order_value(item, row, env),
                    item.ascending,
                    item.nulls_first,
                )
                for item in order_items
            )
            decorated.append((keys, row, env))
        decorated.sort(key=lambda entry: entry[0])
        return [(row, env) for _keys, row, env in decorated]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _null_bindings(schema):
    return {
        binding: {column.upper(): None for column in columns}
        for binding, columns in schema
    }


def _hashable(value):
    return comparable_cell(value)


def _row_key(row):
    return tuple(comparable_cell(value) for value in row)


def _dedupe(rows):
    seen = set()
    output = []
    for row in rows:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            output.append(row)
    return output


def _dedupe_pairs(rows_with_envs):
    seen = set()
    output = []
    for row, env in rows_with_envs:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            output.append((row, env))
    return output


def _flatten_and(expr):
    """Flatten an AND tree into conjuncts, in evaluation order."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _assemble_pairs(kind, left_count, right_count, matches_per_left):
    """Assemble join index pairs in the legacy nested-loop output order:
    left-major with matches in right order, LEFT/FULL null extensions
    inline, RIGHT/FULL unmatched right rows appended at the end."""
    pairs = []
    matched_right = [False] * right_count
    for left_index in range(left_count):
        matches = matches_per_left[left_index]
        if matches:
            for right_index in matches:
                pairs.append((left_index, right_index))
                matched_right[right_index] = True
        elif kind in ("LEFT", "FULL"):
            pairs.append((left_index, None))
    if kind in ("RIGHT", "FULL"):
        for right_index in range(right_count):
            if not matched_right[right_index]:
                pairs.append((None, right_index))
    return pairs


def _resolve_join_ref(ref, left, right):
    """Resolve a join-key ColumnRef to ('left'|'right', (binding, col))."""
    name = ref.name.upper()
    if ref.table is not None:
        table = ref.table.upper()
        for side, relation in (("left", left), ("right", right)):
            for binding, columns in relation.schema:
                if binding == table:
                    if any(column.upper() == name for column in columns):
                        return side, (binding, name)
                    return None
        return None
    matches = []
    for side, relation in (("left", left), ("right", right)):
        for binding, columns in relation.schema:
            if any(column.upper() == name for column in columns):
                matches.append((side, (binding, name)))
    if len(matches) == 1:
        return matches[0]
    return None


def _hashable_key_columns(keys, left, right):
    """True when every key column pair is homogeneous within one type class.

    Python dict key equality matches SQL equality for numbers (bool/int/
    float unify), text, and dates — but not across classes (SQL coerces
    ``'5' = 5`` to true, Python does not) and not for NaN (SQL's ``compare``
    treats NaN as equal to itself, Python does not). Mixed-class or NaN key
    columns send the join to the residual-predicate path instead.
    """
    for left_key, right_key in keys:
        classes = set()
        for array in (left.array(*left_key), right.array(*right_key)):
            if not _scan_key_class(array, classes):
                return False
        if len(classes) > 1:
            return False
    return True


def _scan_key_class(array, classes):
    for value in array:
        if value is None:
            continue
        if isinstance(value, bool) or isinstance(value, int):
            classes.add("n")
        elif isinstance(value, float):
            if value != value:
                return False
            classes.add("n")
        elif isinstance(value, str):
            classes.add("s")
        elif isinstance(value, datetime.date):
            classes.add("d")
        else:
            return False
    return True


def _collect_aggregates(node, out):
    """Aggregate FunctionCall nodes, mirroring contains_aggregate's walk."""
    if isinstance(node, ast.WindowFunction):
        raise VectorFallback("window function in grouped expression")
    if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return
    if isinstance(node, ast.FunctionCall) and is_aggregate_function(node.name):
        out.append(node)
        return
    for child in node.children():
        _collect_aggregates(child, out)


def execute_sql(database, sql):
    """Convenience helper: parse and execute ``sql`` against ``database``."""
    return Executor(database).execute(sql)

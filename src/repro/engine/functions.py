"""Scalar function registry.

The set covers what the reproduction's workloads (and the paper's Appendix A
query) need: warehouse date formatting (``TO_CHAR`` with Oracle/Snowflake
style masks, including the ``YYYY"Q"Q`` quarter mask), NULL handling
(``NULLIF``, ``COALESCE``, ``IFNULL``), string manipulation, rounding, and
date part extraction. New functions register with :func:`scalar_function`.
"""

from __future__ import annotations

import datetime
import math

from .errors import TypeMismatchError, UnknownFunctionError
from .values import cast_value, render_text

_REGISTRY = {}


def scalar_function(name, min_args, max_args=None):
    """Decorator registering a scalar function implementation.

    Implementations receive already-evaluated argument values. By SQL
    convention a NULL argument yields NULL unless the function opts into
    NULL handling (``coalesce``-family functions register with
    ``_NULL_AWARE``).
    """

    def register(func):
        _REGISTRY[name.upper()] = (func, min_args, max_args or min_args)
        return func

    return register


#: Functions that receive NULL arguments instead of short-circuiting.
_NULL_AWARE = {"COALESCE", "IFNULL", "NULLIF", "CONCAT", "IIF"}


def is_scalar_function(name):
    return name.upper() in _REGISTRY


def call_scalar(name, args):
    """Invoke scalar function ``name`` on evaluated ``args``."""
    upper = name.upper()
    entry = _REGISTRY.get(upper)
    if entry is None:
        raise UnknownFunctionError(f"Unknown function {name!r}")
    func, min_args, max_args = entry
    if not (min_args <= len(args) <= max_args):
        expected = (
            str(min_args) if min_args == max_args
            else f"{min_args}..{max_args}"
        )
        raise TypeMismatchError(
            f"{upper} expects {expected} arguments, got {len(args)}"
        )
    if upper not in _NULL_AWARE and any(arg is None for arg in args):
        return None
    return func(*args)


# ---------------------------------------------------------------------------
# NULL handling
# ---------------------------------------------------------------------------


@scalar_function("NULLIF", 2)
def _nullif(left, right):
    if left is None:
        return None
    if right is not None and left == right:
        return None
    return left


@scalar_function("COALESCE", 1, 8)
def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


@scalar_function("IFNULL", 2)
def _ifnull(value, default):
    return value if value is not None else default


@scalar_function("IIF", 3)
def _iif(condition, when_true, when_false):
    return when_true if condition is True else when_false


# ---------------------------------------------------------------------------
# Numeric
# ---------------------------------------------------------------------------


@scalar_function("ABS", 1)
def _abs(value):
    return abs(_require_number(value, "ABS"))


@scalar_function("ROUND", 1, 2)
def _round(value, places=0):
    number = _require_number(value, "ROUND")
    places = int(_require_number(places, "ROUND"))
    result = round(number + 0.0, places)
    return result if places > 0 else int(result) if float(result).is_integer() else result


@scalar_function("FLOOR", 1)
def _floor(value):
    return int(math.floor(_require_number(value, "FLOOR")))


@scalar_function("CEIL", 1)
@scalar_function("CEILING", 1)
def _ceil(value):
    return int(math.ceil(_require_number(value, "CEIL")))


@scalar_function("SQRT", 1)
def _sqrt(value):
    number = _require_number(value, "SQRT")
    if number < 0:
        return None
    return math.sqrt(number)


@scalar_function("POWER", 2)
def _power(base, exponent):
    return math.pow(
        _require_number(base, "POWER"), _require_number(exponent, "POWER")
    )


def _require_number(value, func_name):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    raise TypeMismatchError(f"{func_name} expects a number, got {value!r}")


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


@scalar_function("UPPER", 1)
def _upper(value):
    return _require_text(value, "UPPER").upper()


@scalar_function("LOWER", 1)
def _lower(value):
    return _require_text(value, "LOWER").lower()


@scalar_function("LENGTH", 1)
def _length(value):
    return len(_require_text(value, "LENGTH"))


@scalar_function("TRIM", 1)
def _trim(value):
    return _require_text(value, "TRIM").strip()


@scalar_function("SUBSTR", 2, 3)
@scalar_function("SUBSTRING", 2, 3)
def _substr(value, start, length=None):
    text = _require_text(value, "SUBSTR")
    start = int(_require_number(start, "SUBSTR"))
    begin = start - 1 if start > 0 else max(len(text) + start, 0)
    if length is None:
        return text[begin:]
    return text[begin:begin + int(_require_number(length, "SUBSTR"))]


@scalar_function("REPLACE", 3)
def _replace(value, old, new):
    return _require_text(value, "REPLACE").replace(
        _require_text(old, "REPLACE"), _require_text(new, "REPLACE")
    )


@scalar_function("CONCAT", 2, 8)
def _concat(*args):
    return "".join(render_text(arg) for arg in args if arg is not None)


@scalar_function("INSTR", 2)
def _instr(haystack, needle):
    return _require_text(haystack, "INSTR").find(
        _require_text(needle, "INSTR")
    ) + 1


def _require_text(value, func_name):
    if isinstance(value, str):
        return value
    raise TypeMismatchError(f"{func_name} expects text, got {value!r}")


# ---------------------------------------------------------------------------
# Dates
# ---------------------------------------------------------------------------


def _require_date(value, func_name):
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        date = cast_value(value, "DATE")
        return date
    raise TypeMismatchError(f"{func_name} expects a date, got {value!r}")


@scalar_function("YEAR", 1)
def _year(value):
    return _require_date(value, "YEAR").year


@scalar_function("MONTH", 1)
def _month(value):
    return _require_date(value, "MONTH").month


@scalar_function("DAY", 1)
def _day(value):
    return _require_date(value, "DAY").day


@scalar_function("QUARTER", 1)
def _quarter(value):
    return (_require_date(value, "QUARTER").month - 1) // 3 + 1


@scalar_function("DATE", 1)
def _date(value):
    return _require_date(value, "DATE")


#: TO_CHAR renders the same (date, mask) pair for every row of a period
#: grouping — the formatting loop is pure, so memoize it.
_TO_CHAR_CACHE = {}
_TO_CHAR_CACHE_CAP = 8192


@scalar_function("TO_CHAR", 2)
def _to_char(value, mask):
    """Oracle/Snowflake-style date formatting.

    Supports the masks the workloads use: ``YYYY``, ``MM``, ``DD``, ``Q``,
    ``MON``, and double-quoted literal sections (so ``YYYY"Q"Q`` renders
    ``2023Q2`` — the idiom in the paper's Appendix A query).
    """
    try:
        cached = _TO_CHAR_CACHE.get((value, mask))
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    date = _require_date(value, "TO_CHAR")
    original = (value, mask)
    mask = _require_text(mask, "TO_CHAR")
    output = []
    index = 0
    while index < len(mask):
        char = mask[index]
        if char == '"':  # quoted literal section
            end = mask.find('"', index + 1)
            if end == -1:
                raise TypeMismatchError("Unterminated quote in TO_CHAR mask")
            output.append(mask[index + 1:end])
            index = end + 1
            continue
        if mask.startswith("YYYY", index):
            output.append(f"{date.year:04d}")
            index += 4
        elif mask.startswith("MON", index):
            output.append(date.strftime("%b").upper())
            index += 3
        elif mask.startswith("MM", index):
            output.append(f"{date.month:02d}")
            index += 2
        elif mask.startswith("DD", index):
            output.append(f"{date.day:02d}")
            index += 2
        elif char == "Q":
            output.append(str((date.month - 1) // 3 + 1))
            index += 1
        else:
            output.append(char)
            index += 1
    rendered = "".join(output)
    if len(_TO_CHAR_CACHE) >= _TO_CHAR_CACHE_CAP:
        _TO_CHAR_CACHE.clear()
    _TO_CHAR_CACHE[original] = rendered
    return rendered


@scalar_function("STRFTIME", 2)
def _strftime(mask, value):
    """SQLite-style strftime — argument order (mask, date)."""
    date = _require_date(value, "STRFTIME")
    return date.strftime(_require_text(mask, "STRFTIME"))


@scalar_function("DATE_TRUNC", 2)
def _date_trunc(part, value):
    part = _require_text(part, "DATE_TRUNC").lower()
    date = _require_date(value, "DATE_TRUNC")
    if part == "year":
        return datetime.date(date.year, 1, 1)
    if part == "quarter":
        month = ((date.month - 1) // 3) * 3 + 1
        return datetime.date(date.year, month, 1)
    if part == "month":
        return datetime.date(date.year, date.month, 1)
    raise TypeMismatchError(f"DATE_TRUNC: unsupported part {part!r}")

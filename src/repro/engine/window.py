"""Window function evaluation.

Supports the ranking functions enterprise warehouse queries lean on
(``ROW_NUMBER``, ``RANK``, ``DENSE_RANK``, ``NTILE``) and whole-partition
aggregates (``SUM/AVG/MIN/MAX/COUNT ... OVER (PARTITION BY ...)``), plus
``LAG``/``LEAD``. Frames beyond the whole partition are not supported —
nothing in the reproduction's workloads requires them.
"""

from __future__ import annotations

from .aggregates import compute_aggregate, is_aggregate_function
from .errors import UnknownFunctionError
from .values import sort_key

RANKING_FUNCTIONS = frozenset(
    {"ROW_NUMBER", "RANK", "DENSE_RANK", "NTILE", "LAG", "LEAD"}
)


def is_window_capable(name):
    """True when ``name`` may appear with an OVER clause."""
    upper = name.upper()
    return upper in RANKING_FUNCTIONS or is_aggregate_function(upper)


def evaluate_window(name, rows, partition_keys, order_keys, arg_values,
                    distinct=False, count_star=False):
    """Evaluate one window function over ``rows``.

    ``partition_keys[i]`` / ``order_keys[i]`` / ``arg_values[i]`` are the
    pre-evaluated partition tuple, order tuple (already direction-encoded via
    :func:`sort_key`), and argument list for row ``i``. Returns a list of
    per-row results aligned with ``rows``.
    """
    upper = name.upper()
    if not is_window_capable(upper):
        raise UnknownFunctionError(f"{name!r} cannot be used as a window function")
    results = [None] * len(rows)
    partitions = {}
    for index in range(len(rows)):
        partitions.setdefault(partition_keys[index], []).append(index)
    for indices in partitions.values():
        ordered = sorted(indices, key=lambda i: order_keys[i])
        if upper == "ROW_NUMBER":
            for position, row_index in enumerate(ordered, start=1):
                results[row_index] = position
        elif upper in ("RANK", "DENSE_RANK"):
            _rank(upper, ordered, order_keys, results)
        elif upper == "NTILE":
            _ntile(ordered, arg_values, results)
        elif upper in ("LAG", "LEAD"):
            _shift(upper, ordered, arg_values, results)
        else:  # aggregate over the whole partition
            values = [
                arg_values[row_index][0] if arg_values[row_index] else None
                for row_index in ordered
            ]
            value = compute_aggregate(
                upper, values, distinct=distinct, count_star=count_star
            )
            for row_index in ordered:
                results[row_index] = value
    return results


def _rank(kind, ordered, order_keys, results):
    rank = 0
    dense_rank = 0
    previous_key = object()
    for position, row_index in enumerate(ordered, start=1):
        key = order_keys[row_index]
        if key != previous_key:
            rank = position
            dense_rank += 1
            previous_key = key
        results[row_index] = rank if kind == "RANK" else dense_rank


def _ntile(ordered, arg_values, results):
    if not ordered:
        return
    buckets = int(arg_values[ordered[0]][0])
    size = len(ordered)
    base, remainder = divmod(size, buckets)
    position = 0
    for bucket in range(1, buckets + 1):
        count = base + (1 if bucket <= remainder else 0)
        for _ in range(count):
            if position >= size:
                return
            results[ordered[position]] = bucket
            position += 1


def _shift(kind, ordered, arg_values, results):
    offset_direction = -1 if kind == "LAG" else 1
    for position, row_index in enumerate(ordered):
        args = arg_values[row_index]
        offset = int(args[1]) if len(args) > 1 and args[1] is not None else 1
        default = args[2] if len(args) > 2 else None
        source = position + offset * offset_direction
        if 0 <= source < len(ordered):
            results[row_index] = arg_values[ordered[source]][0]
        else:
            results[row_index] = default


def order_key_tuple(values_and_directions):
    """Build a composite ordering key from (value, ascending, nulls_first)."""
    return tuple(
        sort_key(value, ascending, nulls_first)
        for value, ascending, nulls_first in values_and_directions
    )

"""Expression evaluation over row environments.

The evaluator turns an expression AST into a value given an
:class:`Environment` — the set of relation bindings visible to the current
row, chained to outer environments so correlated subqueries resolve outer
columns. Aggregate context (a group of rows) and pre-computed window values
ride along on the environment.

Subquery execution is delegated back to the executor through a callback so
this module stays free of relational logic.
"""

from __future__ import annotations

import datetime
import re
import threading

from ..sql import ast_nodes as ast
from .aggregates import compute_aggregate, is_aggregate_function
from .errors import (
    AmbiguousColumnError,
    ExecutionError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownFunctionError,
)
from .functions import call_scalar, is_scalar_function
from .values import (
    arithmetic,
    cast_value,
    compare,
    equals,
    is_true,
    logical_and,
    logical_not,
    logical_or,
)


class Environment:
    """Visible relation bindings for one logical row.

    ``bindings`` maps binding name (upper-case) to a column→value dict.
    ``parent`` is the enclosing query's environment for correlated lookups.
    ``group_rows`` is set when this environment represents a whole group
    (aggregate evaluation); ``window_values`` maps a WindowFunction node id
    to that row's pre-computed window result.
    """

    __slots__ = ("bindings", "parent", "group_rows", "window_values")

    def __init__(self, bindings=None, parent=None):
        self.bindings = bindings or {}
        self.parent = parent
        self.group_rows = None
        self.window_values = None

    def child(self, bindings):
        return Environment(bindings, parent=self)

    def lookup(self, table, name):
        """Resolve a column reference; falls through to outer environments."""
        upper_name = name.upper()
        if table is not None:
            upper_table = table.upper()
            environment = self
            while environment is not None:
                row = environment.bindings.get(upper_table)
                if row is not None:
                    if upper_name in row:
                        return row[upper_name]
                    raise UnknownColumnError(
                        f"Relation {table!r} has no column {name!r}"
                    )
                environment = environment.parent
            raise UnknownColumnError(f"Unknown relation {table!r}")
        environment = self
        while environment is not None:
            matches = [
                row[upper_name]
                for row in environment.bindings.values()
                if upper_name in row
            ]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise AmbiguousColumnError(
                    f"Column reference {name!r} is ambiguous"
                )
            environment = environment.parent
        raise UnknownColumnError(f"Unknown column {name!r}")

    def has_column(self, table, name):
        try:
            self.lookup(table, name)
        except (UnknownColumnError, AmbiguousColumnError):
            return False
        return True


class Evaluator:
    """Evaluates expression ASTs. ``run_subquery(query, env)`` executes a
    nested query and returns a Result (injected by the executor)."""

    def __init__(self, run_subquery):
        self._run_subquery = run_subquery

    # -- public API ----------------------------------------------------------

    def evaluate(self, node, env):
        method = self._DISPATCH.get(type(node))
        if method is None:
            raise ExecutionError(
                f"Cannot evaluate node {type(node).__name__}"
            )
        return method(self, node, env)

    def evaluate_predicate(self, node, env):
        """Evaluate as a WHERE/HAVING predicate (NULL rejects the row)."""
        return is_true(self.evaluate(node, env))

    # -- leaves ----------------------------------------------------------------

    def _literal(self, node, env):
        return node.value

    def _column(self, node, env):
        return env.lookup(node.table, node.name)

    def _star(self, node, env):
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    # -- operators -------------------------------------------------------------

    def _unary(self, node, env):
        if node.op == "NOT":
            return logical_not(self.evaluate(node.operand, env))
        value = self.evaluate(node.operand, env)
        if value is None:
            return None
        if node.op == "-":
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, (int, float)):
                raise TypeMismatchError(f"Cannot negate {value!r}")
            return -value
        return value  # unary plus

    _COMPARISONS = {
        "=": lambda ordering: ordering == 0,
        "<>": lambda ordering: ordering != 0,
        "<": lambda ordering: ordering < 0,
        ">": lambda ordering: ordering > 0,
        "<=": lambda ordering: ordering <= 0,
        ">=": lambda ordering: ordering >= 0,
    }

    def _binary(self, node, env):
        if node.op == "AND":
            left = self.evaluate(node.left, env)
            if left is False:
                return False
            return logical_and(left, self.evaluate(node.right, env))
        if node.op == "OR":
            left = self.evaluate(node.left, env)
            if left is True:
                return True
            return logical_or(left, self.evaluate(node.right, env))
        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        check = self._COMPARISONS.get(node.op)
        if check is not None:
            ordering = compare(left, right)
            if ordering is None:
                return None
            return check(ordering)
        return arithmetic(node.op, left, right)

    # -- functions ----------------------------------------------------------------

    def _call(self, node, env):
        name = node.name.upper()
        if is_aggregate_function(name):
            return self._aggregate(node, env)
        if is_scalar_function(name):
            args = [self.evaluate(arg, env) for arg in node.args]
            return call_scalar(name, args)
        raise UnknownFunctionError(f"Unknown function {node.name!r}")

    def _aggregate(self, node, env):
        group_rows = env.group_rows
        if group_rows is None:
            raise ExecutionError(
                f"Aggregate {node.name} used outside GROUP BY context"
            )
        count_star = bool(node.args) and isinstance(node.args[0], ast.Star)
        if count_star or not node.args:
            values = [None] * len(group_rows)
            return compute_aggregate(
                node.name, values, distinct=node.distinct, count_star=True
            )
        values = [
            self.evaluate(node.args[0], row_env) for row_env in group_rows
        ]
        return compute_aggregate(
            node.name, values, distinct=node.distinct, count_star=False
        )

    def _window(self, node, env):
        if env.window_values is None or id(node) not in env.window_values:
            raise ExecutionError(
                "Window function evaluated without window context"
            )
        return env.window_values[id(node)]

    # -- compound expressions --------------------------------------------------

    def _case(self, node, env):
        if node.operand is not None:
            operand = self.evaluate(node.operand, env)
            for condition, result in node.whens:
                if is_true(equals(operand, self.evaluate(condition, env))):
                    return self.evaluate(result, env)
        else:
            for condition, result in node.whens:
                if self.evaluate_predicate(condition, env):
                    return self.evaluate(result, env)
        if node.default is not None:
            return self.evaluate(node.default, env)
        return None

    def _cast(self, node, env):
        return cast_value(self.evaluate(node.expr, env), node.target_type)

    def _in_list(self, node, env):
        needle = self.evaluate(node.expr, env)
        if needle is None:
            return None
        saw_null = False
        for item in node.items:
            value = self.evaluate(item, env)
            verdict = equals(needle, value)
            if verdict is True:
                return not node.negated if node.negated else True
            if verdict is None:
                saw_null = True
        if node.negated:
            return None if saw_null else True
        return None if saw_null else False

    def _in_subquery(self, node, env):
        needle = self.evaluate(node.expr, env)
        if needle is None:
            return None
        result = self._run_subquery(node.query, env)
        if result.columns and len(result.columns) != 1:
            raise ExecutionError("IN subquery must return one column")
        saw_null = False
        for row in result.rows:
            verdict = equals(needle, row[0])
            if verdict is True:
                return False if node.negated else True
            if verdict is None:
                saw_null = True
        if saw_null:
            return None
        return True if node.negated else False

    def _between(self, node, env):
        value = self.evaluate(node.expr, env)
        low = self.evaluate(node.low, env)
        high = self.evaluate(node.high, env)
        lower_check = compare(value, low)
        upper_check = compare(value, high)
        if lower_check is None or upper_check is None:
            return None
        inside = lower_check >= 0 and upper_check <= 0
        return not inside if node.negated else inside

    def _like(self, node, env):
        value = self.evaluate(node.expr, env)
        pattern = self.evaluate(node.pattern, env)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise TypeMismatchError("LIKE expects text operands")
        matched = _like_match(value, pattern)
        return not matched if node.negated else matched

    def _is_null(self, node, env):
        value = self.evaluate(node.expr, env)
        verdict = value is None
        return not verdict if node.negated else verdict

    def _exists(self, node, env):
        result = self._run_subquery(node.query, env)
        verdict = bool(result.rows)
        return not verdict if node.negated else verdict

    def _scalar_subquery(self, node, env):
        result = self._run_subquery(node.query, env)
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise ExecutionError("Scalar subquery returned more than one row")
        if len(result.rows[0]) != 1:
            raise ExecutionError("Scalar subquery must return one column")
        return result.rows[0][0]

    _DISPATCH = {
        ast.Literal: _literal,
        ast.ColumnRef: _column,
        ast.Star: _star,
        ast.UnaryOp: _unary,
        ast.BinaryOp: _binary,
        ast.FunctionCall: _call,
        ast.WindowFunction: _window,
        ast.CaseExpression: _case,
        ast.Cast: _cast,
        ast.InList: _in_list,
        ast.InSubquery: _in_subquery,
        ast.Between: _between,
        ast.Like: _like,
        ast.IsNull: _is_null,
        ast.Exists: _exists,
        ast.ScalarSubquery: _scalar_subquery,
    }


def _like_match(value, pattern):
    regex = "".join(
        ".*" if char == "%" else "." if char == "_" else re.escape(char)
        for char in pattern
    )
    return re.fullmatch(regex, value, flags=re.IGNORECASE) is not None


def contains_aggregate(node):
    """True when ``node`` contains an aggregate call outside any window."""
    if isinstance(node, ast.WindowFunction):
        # Aggregates inside the OVER() arguments are window-level, but the
        # partition/order expressions may still reference group aggregates.
        return any(
            contains_aggregate(child) for child in node.window.children()
        ) or any(contains_aggregate(arg) for arg in node.function.args)
    if isinstance(node, ast.FunctionCall) and is_aggregate_function(node.name):
        return True
    if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return False  # subqueries have their own aggregate scope
    return any(contains_aggregate(child) for child in node.children())


def find_window_functions(node):
    """Collect every WindowFunction node (without descending into subqueries)."""
    found = []
    if isinstance(node, ast.WindowFunction):
        found.append(node)
        return found
    if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
        return found
    for child in node.children():
        found.extend(find_window_functions(child))
    return found


# ---------------------------------------------------------------------------
# Vectorized evaluation
# ---------------------------------------------------------------------------
#
# The columnar executor compiles an expression once per (schema, expression)
# into a closure ``fn(ctx, sel) -> values`` that evaluates the expression for
# every row index in ``sel`` against a ColumnarRelation, instead of walking
# the AST per row through an Environment chain.
#
# Correctness contract: for any selection the closure performs exactly the
# same set of per-row sub-computations the row evaluator would (AND/OR/CASE/
# IN narrow their active rows the way short-circuiting does), so it produces
# the same values and raises on exactly the same inputs — possibly with a
# different message/first-row, which the executor papers over by re-running
# the row path whenever the vector path raises. Anything whose semantics
# cannot be batched (window functions, subqueries, ambiguous or unresolvable
# columns, aggregates outside a bound group context) raises
# :class:`VectorFallback` at compile time.


class VectorFallback(Exception):
    """Raised at compile time when an expression cannot be vectorized."""


class VectorContext:
    """Runtime inputs to a compiled closure.

    ``relation`` supplies column arrays; ``outer_env`` resolves correlated
    references (fixed for the whole batch); ``bound`` maps an aggregate
    node's id to its precomputed per-row array in grouped pipelines.
    """

    __slots__ = ("relation", "outer_env", "bound")

    def __init__(self, relation, outer_env=None, bound=None):
        self.relation = relation
        self.outer_env = outer_env
        self.bound = bound


def _vector_negate(value):
    if value is None:
        return None
    if isinstance(value, bool):
        value = int(value)
    if not isinstance(value, (int, float)):
        raise TypeMismatchError(f"Cannot negate {value!r}")
    return -value


class _VectorCompiler:
    """Compiles expression ASTs into batched closures over a fixed schema."""

    def __init__(self, schema, has_outer, bound_ids=frozenset()):
        self.bindings = [
            (binding, frozenset(column.upper() for column in columns))
            for binding, columns in schema
        ]
        self.has_outer = has_outer
        self.bound_ids = bound_ids
        self.cacheable = True

    def compile(self, node):
        method = self._DISPATCH.get(type(node))
        if method is None:
            raise VectorFallback(type(node).__name__)
        return method(self, node)

    # -- leaves --------------------------------------------------------------

    def _literal(self, node):
        value = node.value
        return lambda ctx, sel: [value] * len(sel)

    def _column(self, node):
        name = node.name.upper()
        if node.table is not None:
            table = node.table.upper()
            for binding, columns in self.bindings:
                if binding == table:
                    if name in columns:
                        return self._gather(binding, name)
                    # Legacy raises UnknownColumnError per row.
                    raise VectorFallback(node.qualified())
            return self._outer(node.table, node.name)
        matches = [
            binding for binding, columns in self.bindings if name in columns
        ]
        if len(matches) == 1:
            return self._gather(matches[0], name)
        if len(matches) > 1:
            raise VectorFallback(node.name)  # ambiguous — row path raises
        return self._outer(None, node.name)

    def _gather(self, binding, name):
        def run(ctx, sel):
            array = ctx.relation.array(binding, name)
            return [array[index] for index in sel]
        return run

    def _outer(self, table, name):
        """A reference resolved outside the relation: constant per batch."""
        if not self.has_outer:
            raise VectorFallback(name)  # unknown column — row path raises

        def run(ctx, sel):
            if not sel:
                return []
            value = ctx.outer_env.lookup(table, name)
            return [value] * len(sel)
        return run

    # -- operators -----------------------------------------------------------

    def _unary(self, node):
        operand = self.compile(node.operand)
        if node.op == "NOT":
            return lambda ctx, sel: [
                logical_not(value) for value in operand(ctx, sel)
            ]
        if node.op == "-":
            return lambda ctx, sel: [
                _vector_negate(value) for value in operand(ctx, sel)
            ]
        # Unary plus: NULL-checking identity, exactly like the row path.
        return operand

    def _binary(self, node):
        left = self.compile(node.left)
        right = self.compile(node.right)
        if node.op == "AND":
            def run_and(ctx, sel):
                left_values = left(ctx, sel)
                active = [
                    position for position, value in enumerate(left_values)
                    if value is not False
                ]
                output = [False] * len(sel)
                if active:
                    narrowed = [sel[position] for position in active]
                    right_values = right(ctx, narrowed)
                    for position, value in zip(active, right_values):
                        output[position] = logical_and(
                            left_values[position], value
                        )
                return output
            return run_and
        if node.op == "OR":
            def run_or(ctx, sel):
                left_values = left(ctx, sel)
                active = [
                    position for position, value in enumerate(left_values)
                    if value is not True
                ]
                output = [True] * len(sel)
                if active:
                    narrowed = [sel[position] for position in active]
                    right_values = right(ctx, narrowed)
                    for position, value in zip(active, right_values):
                        output[position] = logical_or(
                            left_values[position], value
                        )
                return output
            return run_or
        check = Evaluator._COMPARISONS.get(node.op)
        if check is not None:
            def run_compare(ctx, sel):
                output = []
                for left_value, right_value in zip(
                    left(ctx, sel), right(ctx, sel)
                ):
                    # Same-class pairs (the overwhelmingly common case)
                    # order exactly as compare()'s aligned comparison does;
                    # everything else — NULLs, bools, cross-type coercions —
                    # takes the general path. type() is an exact check, so
                    # bools never slip into the int fast path.
                    left_type = type(left_value)
                    right_type = type(right_value)
                    if (
                        (left_type is int or left_type is float)
                        and (right_type is int or right_type is float)
                    ) or (
                        left_type is right_type
                        and (left_type is str or left_type is datetime.date)
                    ):
                        if left_value < right_value:
                            ordering = -1
                        elif left_value > right_value:
                            ordering = 1
                        else:
                            ordering = 0
                        output.append(check(ordering))
                        continue
                    ordering = compare(left_value, right_value)
                    output.append(
                        None if ordering is None else check(ordering)
                    )
                return output
            return run_compare
        op = node.op

        def run_arith(ctx, sel):
            return [
                arithmetic(op, left_value, right_value)
                for left_value, right_value in zip(
                    left(ctx, sel), right(ctx, sel)
                )
            ]
        return run_arith

    # -- functions -----------------------------------------------------------

    def _call(self, node):
        if id(node) in self.bound_ids:
            self.cacheable = False
            node_id = id(node)

            def run_bound(ctx, sel):
                array = ctx.bound[node_id]
                return [array[index] for index in sel]
            return run_bound
        name = node.name.upper()
        if is_aggregate_function(name):
            raise VectorFallback(name)  # aggregate outside a bound group
        if not is_scalar_function(name):
            raise VectorFallback(name)  # unknown — row path raises
        arg_closures = [self.compile(arg) for arg in node.args]

        def run_call(ctx, sel):
            arg_values = [closure(ctx, sel) for closure in arg_closures]
            if not arg_closures:
                return [call_scalar(name, []) for _position in range(len(sel))]
            # Registered scalars are pure, and column values repeat heavily
            # (dates through TO_CHAR, codes through UPPER), so memoize per
            # batch on the argument tuple; unhashable arguments call through.
            memo = {}
            output = []
            for row_args in zip(*arg_values):
                try:
                    value = memo[row_args]
                except TypeError:
                    value = call_scalar(name, list(row_args))
                except KeyError:
                    value = call_scalar(name, list(row_args))
                    memo[row_args] = value
                output.append(value)
            return output
        return run_call

    # -- compound expressions --------------------------------------------------

    def _case(self, node):
        operand = (
            self.compile(node.operand) if node.operand is not None else None
        )
        whens = [
            (self.compile(condition), self.compile(result))
            for condition, result in node.whens
        ]
        default = (
            self.compile(node.default) if node.default is not None else None
        )

        def run(ctx, sel):
            output = [None] * len(sel)
            operand_values = operand(ctx, sel) if operand is not None else None
            undecided = list(range(len(sel)))
            for condition, result in whens:
                if not undecided:
                    break
                narrowed = [sel[position] for position in undecided]
                condition_values = condition(ctx, narrowed)
                taken = []
                remaining = []
                for position, value in zip(undecided, condition_values):
                    if operand_values is not None:
                        verdict = is_true(
                            equals(operand_values[position], value)
                        )
                    else:
                        verdict = is_true(value)
                    (taken if verdict else remaining).append(position)
                if taken:
                    result_values = result(
                        ctx, [sel[position] for position in taken]
                    )
                    for position, value in zip(taken, result_values):
                        output[position] = value
                undecided = remaining
            if default is not None and undecided:
                default_values = default(
                    ctx, [sel[position] for position in undecided]
                )
                for position, value in zip(undecided, default_values):
                    output[position] = value
            return output
        return run

    def _cast(self, node):
        expr = self.compile(node.expr)
        target = node.target_type
        return lambda ctx, sel: [
            cast_value(value, target) for value in expr(ctx, sel)
        ]

    def _in_list(self, node):
        expr = self.compile(node.expr)
        items = [self.compile(item) for item in node.items]
        negated = node.negated

        def run(ctx, sel):
            needles = expr(ctx, sel)
            output = [None] * len(sel)
            saw_null = [False] * len(sel)
            undecided = [
                position for position, needle in enumerate(needles)
                if needle is not None
            ]
            for item in items:
                if not undecided:
                    break
                narrowed = [sel[position] for position in undecided]
                item_values = item(ctx, narrowed)
                remaining = []
                for position, value in zip(undecided, item_values):
                    verdict = equals(needles[position], value)
                    if verdict is True:
                        output[position] = not negated if negated else True
                    else:
                        if verdict is None:
                            saw_null[position] = True
                        remaining.append(position)
                undecided = remaining
            for position in undecided:
                if negated:
                    output[position] = None if saw_null[position] else True
                else:
                    output[position] = None if saw_null[position] else False
            return output
        return run

    def _between(self, node):
        expr = self.compile(node.expr)
        low = self.compile(node.low)
        high = self.compile(node.high)
        negated = node.negated

        def run(ctx, sel):
            output = []
            for value, low_value, high_value in zip(
                expr(ctx, sel), low(ctx, sel), high(ctx, sel)
            ):
                lower_check = compare(value, low_value)
                upper_check = compare(value, high_value)
                if lower_check is None or upper_check is None:
                    output.append(None)
                    continue
                inside = lower_check >= 0 and upper_check <= 0
                output.append(not inside if negated else inside)
            return output
        return run

    def _like(self, node):
        expr = self.compile(node.expr)
        pattern = self.compile(node.pattern)
        negated = node.negated

        def run(ctx, sel):
            output = []
            for value, pattern_value in zip(
                expr(ctx, sel), pattern(ctx, sel)
            ):
                if value is None or pattern_value is None:
                    output.append(None)
                    continue
                if not isinstance(value, str) or not isinstance(
                    pattern_value, str
                ):
                    raise TypeMismatchError("LIKE expects text operands")
                matched = _like_match(value, pattern_value)
                output.append(not matched if negated else matched)
            return output
        return run

    def _is_null(self, node):
        expr = self.compile(node.expr)
        negated = node.negated
        return lambda ctx, sel: [
            (value is not None) if negated else (value is None)
            for value in expr(ctx, sel)
        ]

    _DISPATCH = {
        ast.Literal: _literal,
        ast.ColumnRef: _column,
        ast.UnaryOp: _unary,
        ast.BinaryOp: _binary,
        ast.FunctionCall: _call,
        ast.CaseExpression: _case,
        ast.Cast: _cast,
        ast.InList: _in_list,
        ast.Between: _between,
        ast.Like: _like,
        ast.IsNull: _is_null,
    }


def compile_vector(node, schema, has_outer, bound_ids=frozenset()):
    """Compile ``node`` for batched evaluation over ``schema``.

    Returns ``(closure, cacheable)``; raises :class:`VectorFallback` when
    the expression needs the row path. ``closure(ctx, sel)`` returns values
    aligned with the row indices in ``sel``.
    """
    compiler = _VectorCompiler(schema, has_outer, bound_ids)
    closure = compiler.compile(node)
    return closure, compiler.cacheable


# -- compiled-expression cache ----------------------------------------------
#
# GenEdit's loop executes the same (or near-identical) candidate SQL against
# the same database over and over — generation, self-correction, the final
# check, and the EX metric each pay an execution. Compiled closures are pure
# with respect to everything except the schema they were resolved against,
# so they are cached per (database name+version, FROM-schema signature,
# expression digest) and shared across executor instances.
#
# The serving layer executes on a thread pool, so cache lookups, counter
# updates, the cap-triggered clear, and reset_engine_stats() can all race.
# _CACHE_LOCK serialises every touch of _COMPILED_CACHE/_COMPILED_STATS;
# the compile itself (the expensive part) runs outside the lock, so at
# worst two threads compile the same key once each and the second insert
# wins — identical closures either way.

_CACHE_LOCK = threading.Lock()
_COMPILED_CACHE = {}
_COMPILED_CACHE_CAP = 4096
_COMPILED_STATS = {"hits": 0, "misses": 0, "fallbacks": 0}
_FALLBACK_SENTINEL = object()


def _expr_digest(node):
    digest = getattr(node, "_vector_digest", None)
    if digest is None:
        from ..sql.printer import to_sql

        digest = to_sql(node)
        try:
            node._vector_digest = digest
        except AttributeError:  # pragma: no cover - nodes are plain objects
            pass
    return digest


def _schema_signature(schema):
    return tuple(
        (binding, tuple(column.upper() for column in columns))
        for binding, columns in schema
    )


def compiled_expression(node, database, schema, has_outer,
                        bound_ids=frozenset()):
    """Cached vector closure for ``node`` against ``schema``.

    Closures that gather bound aggregate arrays are keyed by node identity
    and therefore never cached. Fallback verdicts are cached too, so an
    unvectorizable WHERE clause pays the compile attempt only once per
    database version.
    """
    if bound_ids:
        closure, _cacheable = compile_vector(
            node, schema, has_outer, bound_ids
        )
        return closure
    key = (
        database.name,
        database.version,
        _schema_signature(schema),
        has_outer,
        _expr_digest(node),
    )
    with _CACHE_LOCK:
        cached = _COMPILED_CACHE.get(key)
        if cached is not None:
            _COMPILED_STATS["hits"] += 1
        else:
            _COMPILED_STATS["misses"] += 1
            if len(_COMPILED_CACHE) >= _COMPILED_CACHE_CAP:
                _COMPILED_CACHE.clear()
    if cached is not None:
        if cached is _FALLBACK_SENTINEL:
            raise VectorFallback(key[-1])
        return cached
    from time import perf_counter

    from .stats import add_time

    started = perf_counter()
    try:
        closure, cacheable = compile_vector(node, schema, has_outer)
    except VectorFallback:
        with _CACHE_LOCK:
            _COMPILED_STATS["fallbacks"] += 1
            _COMPILED_CACHE[key] = _FALLBACK_SENTINEL
        raise
    finally:
        add_time("compile_s", perf_counter() - started)
    if cacheable:
        with _CACHE_LOCK:
            _COMPILED_CACHE[key] = closure
    return closure


def vector_cache_stats():
    """Hit/miss/fallback counters plus current entry count."""
    with _CACHE_LOCK:
        stats = dict(_COMPILED_STATS)
        stats["entries"] = len(_COMPILED_CACHE)
    return stats


def reset_vector_cache():
    """Clear the compiled cache and its counters (tests, benchmarks).

    Atomic with respect to a concurrent compile: a racing thread can land
    one fresh entry after the clear, but never observes a half-reset
    counter dict.
    """
    with _CACHE_LOCK:
        _COMPILED_CACHE.clear()
        for key in _COMPILED_STATS:
            _COMPILED_STATS[key] = 0
